#include "maps/perf_bounds.hpp"

#include <algorithm>

namespace rw::maps {
namespace {

std::size_t pe_of(const std::vector<std::size_t>& task_to_pe, std::size_t t,
                  std::size_t pe_count) {
  const std::size_t raw = t < task_to_pe.size() ? task_to_pe[t] : t;
  return pe_count == 0 ? 0 : raw % pe_count;
}

/// Shared accumulation: per-task execution times and per-edge charged
/// occupancies in, bound/work/comm/critical-path out. The critical
/// path uses the same costs with zero contention — the floor any
/// schedule could reach, reported for tightness only.
MakespanBound accumulate(const TaskGraph& g,
                         const std::vector<DurationPs>& exec,
                         const std::vector<DurationPs>& edge_cost,
                         const std::vector<bool>& edge_charged) {
  MakespanBound b;
  for (const auto e : exec) b.work += e;
  for (std::size_t i = 0; i < edge_cost.size(); ++i) {
    b.comm += edge_cost[i];
    if (edge_charged[i]) ++b.cross_edges;
  }
  b.bound = b.work + b.comm;

  const auto order = g.topological_order();
  if (order.size() == g.tasks().size()) {
    std::vector<std::vector<std::size_t>> in_edges(g.tasks().size());
    for (std::size_t i = 0; i < g.edges().size(); ++i)
      in_edges[g.edges()[i].dst.index()].push_back(i);
    std::vector<DurationPs> dist(g.tasks().size(), 0);
    for (const auto t : order) {
      DurationPs start = 0;
      for (const auto ei : in_edges[t.index()])
        start = std::max(start, dist[g.edges()[ei].src.index()] +
                                    edge_cost[ei]);
      dist[t.index()] = start + exec[t.index()];
      b.critical_path = std::max(b.critical_path, dist[t.index()]);
    }
  }
  return b;
}

}  // namespace

MakespanBound static_makespan_bound(
    const TaskGraph& g, const std::vector<PeDesc>& pes, const CommCost& comm,
    const std::vector<std::size_t>& task_to_pe) {
  std::vector<DurationPs> exec(g.tasks().size(), 0);
  for (std::size_t t = 0; t < g.tasks().size(); ++t) {
    const auto& pe = pes.at(pe_of(task_to_pe, t, pes.size()));
    exec[t] = cycles_to_ps(g.tasks()[t].cycles_on(pe.cls), pe.frequency);
  }
  std::vector<DurationPs> edge_cost(g.edges().size(), 0);
  std::vector<bool> edge_charged(g.edges().size(), false);
  for (std::size_t i = 0; i < g.edges().size(); ++i) {
    const auto& e = g.edges()[i];
    const std::size_t sp = pe_of(task_to_pe, e.src.index(), pes.size());
    const std::size_t dp = pe_of(task_to_pe, e.dst.index(), pes.size());
    if (sp == dp) continue;
    edge_cost[i] = comm(sp, dp, e.bytes);
    edge_charged[i] = true;
  }
  return accumulate(g, exec, edge_cost, edge_charged);
}

MakespanBound static_makespan_bound_any_gang(const TaskGraph& g,
                                             const PeDesc& pe,
                                             const CommCost& comm) {
  std::vector<DurationPs> exec(g.tasks().size(), 0);
  for (std::size_t t = 0; t < g.tasks().size(); ++t)
    exec[t] = cycles_to_ps(g.tasks()[t].cycles_on(pe.cls), pe.frequency);
  std::vector<DurationPs> edge_cost(g.edges().size(), 0);
  std::vector<bool> edge_charged(g.edges().size(), true);
  for (std::size_t i = 0; i < g.edges().size(); ++i)
    edge_cost[i] = comm(0, 1, g.edges()[i].bytes);
  return accumulate(g, exec, edge_cost, edge_charged);
}

std::vector<PeDesc> pes_from_platform(const sim::PlatformConfig& cfg) {
  std::vector<PeDesc> pes;
  pes.reserve(cfg.cores.size());
  for (const auto& c : cfg.cores) pes.push_back({c.cls, c.frequency});
  return pes;
}

CommCost comm_cost_from_platform(const sim::PlatformConfig& cfg) {
  if (cfg.interconnect == sim::PlatformConfig::Icn::kSharedBus) {
    const auto bus = cfg.bus;
    return [bus](std::size_t src, std::size_t dst,
                 std::uint64_t bytes) -> DurationPs {
      if (src == dst) return 0;
      const Cycles data =
          (bytes + bus.width_bytes - 1) / bus.width_bytes;
      return cycles_to_ps(bus.arbitration_cycles + data, bus.frequency);
    };
  }
  const auto mesh = cfg.mesh;
  return [mesh](std::size_t src, std::size_t dst,
                std::uint64_t bytes) -> DurationPs {
    if (src == dst) return 0;
    // Same coordinate math as MeshNoc::coord_of / hop_count: core index
    // wraps onto the w x h grid, XY route length is the Manhattan
    // distance. Distinct cores folding onto one node route zero hops.
    const std::uint64_t nodes =
        std::uint64_t{mesh.width} * std::uint64_t{mesh.height};
    const std::uint64_t si = src % nodes;
    const std::uint64_t di = dst % nodes;
    const auto dx = static_cast<std::int64_t>(si % mesh.width) -
                    static_cast<std::int64_t>(di % mesh.width);
    const auto dy = static_cast<std::int64_t>(si / mesh.width) -
                    static_cast<std::int64_t>(di / mesh.width);
    const std::uint64_t hops = static_cast<std::uint64_t>(dx < 0 ? -dx : dx) +
                               static_cast<std::uint64_t>(dy < 0 ? -dy : dy);
    const Cycles flits = std::max<std::uint64_t>(
        (bytes + mesh.link_width_bytes - 1) / mesh.link_width_bytes, 1);
    const DurationPs per_link =
        cycles_to_ps(flits, mesh.link_frequency) + mesh.hop_latency;
    return static_cast<DurationPs>(hops) * per_link;
  };
}

MappingVerdict verify_mapping(const TaskGraph& g,
                              const sim::PlatformConfig& cfg,
                              const std::vector<std::size_t>& task_to_pe) {
  MappingVerdict v;
  v.bound = static_makespan_bound(g, pes_from_platform(cfg),
                                  comm_cost_from_platform(cfg), task_to_pe);
  v.deadline = g.annotation.deadline;
  v.has_deadline = v.deadline > 0;
  v.provable = v.has_deadline && v.bound.bound <= v.deadline;
  return v;
}

}  // namespace rw::maps
