// Task-to-PE mapping and scheduling (Sec. IV: "Using optimization
// algorithms, the task graphs are mapped to the target architecture,
// taking into account real-time requirements and preferred PE classes").
//
// Three mappers are provided:
//   * heft_map        — HEFT list scheduling (static; used for hard-RT,
//                       whose schedule is fixed at design time),
//   * anneal_map      — simulated-annealing refinement of HEFT (ablation),
//   * dynamic_schedule— priority-driven best-effort dispatch at run time
//                       (soft / non-real-time applications).
// execute_on_platform replays a mapping on the rw::sim platform, with real
// interconnect contention, to validate the static estimate (the "MAPS
// Virtual Platform" role).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "maps/taskgraph.hpp"
#include "sim/platform.hpp"

namespace rw::maps {

struct PeDesc {
  sim::PeClass cls = sim::PeClass::kRisc;
  HertzT frequency = mhz(400);
};

/// Time to move `bytes` between two PEs (0 when same PE).
using CommCost =
    std::function<DurationPs(std::size_t src_pe, std::size_t dst_pe,
                             std::uint64_t bytes)>;

/// Uniform shared-bus style estimate: fixed latency + bytes/bandwidth.
CommCost simple_comm_cost(DurationPs latency, double bytes_per_ps);

struct ScheduleSlot {
  TaskNodeId task{};
  std::size_t pe = 0;
  TimePs start = 0;
  TimePs finish = 0;
};

struct MappingResult {
  std::vector<std::size_t> task_to_pe;
  std::vector<ScheduleSlot> slots;  // sorted by start
  TimePs makespan = 0;

  [[nodiscard]] double speedup_vs(TimePs sequential) const {
    return makespan == 0 ? 1.0
                         : static_cast<double>(sequential) /
                               static_cast<double>(makespan);
  }
};

/// HEFT: upward-rank priority list scheduling with earliest-finish-time
/// PE selection. Honours TaskNode::preferred_pe as a hard constraint when
/// a matching PE exists.
MappingResult heft_map(const TaskGraph& g, const std::vector<PeDesc>& pes,
                       const CommCost& comm);

/// Simulated-annealing refinement starting from HEFT's assignment;
/// deterministic given the seed.
MappingResult anneal_map(const TaskGraph& g, const std::vector<PeDesc>& pes,
                         const CommCost& comm, std::uint64_t seed = 1,
                         int iterations = 2000);

/// Run-time best-effort dispatch: ready tasks (priority = static upward
/// rank) grab the earliest-available compatible PE. This is the dynamic
/// path for soft/non-RT applications.
MappingResult dynamic_schedule(const TaskGraph& g,
                               const std::vector<PeDesc>& pes,
                               const CommCost& comm);

/// Fixed-assignment schedule evaluation: given task_to_pe, compute the
/// schedule by list order (topological, ties by upward rank).
TimePs evaluate_mapping(const TaskGraph& g, const std::vector<PeDesc>& pes,
                        const CommCost& comm,
                        const std::vector<std::size_t>& task_to_pe);

/// Time to run the whole graph sequentially on the single best PE.
TimePs best_sequential_time(const TaskGraph& g,
                            const std::vector<PeDesc>& pes);

/// Replay a mapping on a simulated platform (cores + interconnect with
/// contention). Returns the measured makespan.
TimePs execute_on_platform(const TaskGraph& g,
                           const std::vector<std::size_t>& task_to_pe,
                           sim::Platform& platform);

/// As execute_on_platform, but records the full dependence structure into
/// the platform tracer as segment metadata (enable the tracer first).
/// This is the trace rw::critpath consumes; the event encoding is the
/// contract perf::TraceView documents and parses:
///   * kTaskStart  time=start   core=pe      label=task  a=task  b=cycles
///   * kTaskEnd    time=finish  core=pe      label=task  a=task  b=ref_cycles
///   * kMsgSend    time=xstart  core=src_pe  label=edge  a=(src<<32)|dst
///                 b=bytes
///   * kMsgRecv    time=xfinish core=dst_pe  label=edge  a=(src<<32)|dst
///                 b=bytes
/// Same-PE dependences record a zero-duration send/recv pair at the
/// producer's finish time, so every happens-before edge — not just the
/// ones that touch the fabric — survives into the trace. Events appear in
/// reservation order (the executor's loop order), which is also the order
/// every platform resource serializes requests in; timestamps within one
/// core or one fabric are monotone but the global stream is not sorted.
/// Timing is bit-identical to execute_on_platform.
TimePs execute_on_platform_traced(const TaskGraph& g,
                                  const std::vector<std::size_t>& task_to_pe,
                                  sim::Platform& platform);

/// Graceful degradation after a PE death (rw::fault).
///
/// remap_on_failure keeps every surviving assignment in place and greedily
/// re-homes only the dead PE's tasks — the cheap online decision a runtime
/// can make. replan_survivors runs full HEFT on the survivor set — the
/// oracle a design-time tool would compute with perfect hindsight. The
/// report carries both makespans so E14 can state the price of the online
/// remap relative to the oracle and to the healthy platform.
struct DegradationReport {
  std::size_t dead_pe = 0;
  std::size_t moved_tasks = 0;
  TimePs healthy_makespan = 0;  // original assignment, all PEs up
  TimePs remap_makespan = 0;    // greedy survivor remap
  TimePs oracle_makespan = 0;   // HEFT replan restricted to survivors
  std::vector<std::size_t> remap_task_to_pe;
  std::vector<std::size_t> oracle_task_to_pe;

  [[nodiscard]] double remap_vs_oracle() const {
    return oracle_makespan == 0 ? 1.0
                                : static_cast<double>(remap_makespan) /
                                      static_cast<double>(oracle_makespan);
  }
  [[nodiscard]] double degradation_vs_healthy() const {
    return healthy_makespan == 0 ? 1.0
                                 : static_cast<double>(remap_makespan) /
                                       static_cast<double>(healthy_makespan);
  }
};

DegradationReport remap_on_failure(const TaskGraph& g,
                                   const std::vector<PeDesc>& pes,
                                   const CommCost& comm,
                                   const std::vector<std::size_t>& task_to_pe,
                                   std::size_t dead_pe);

/// Oracle replan: HEFT over the survivors; task_to_pe/slots are expressed
/// in the ORIGINAL PE index space (the dead PE simply never appears).
MappingResult replan_survivors(const TaskGraph& g,
                               const std::vector<PeDesc>& pes,
                               const CommCost& comm, std::size_t dead_pe);

}  // namespace rw::maps
