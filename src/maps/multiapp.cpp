#include "maps/multiapp.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rw::maps {
namespace {

/// Per-PE timeline of reservations, kept sorted by start time.
class Timeline {
 public:
  /// Earliest start >= ready such that [start, start+dur) is free.
  [[nodiscard]] TimePs earliest_gap(TimePs ready, DurationPs dur) const {
    TimePs t = ready;
    for (const auto& [s, e] : busy_) {
      if (e <= t) continue;          // already past this reservation
      if (s >= t + dur) break;       // gap before this reservation fits
      t = e;                         // bump past it
    }
    return t;
  }

  void reserve(TimePs start, TimePs end) {
    const auto it = std::lower_bound(
        busy_.begin(), busy_.end(), start,
        [](const auto& iv, TimePs v) { return iv.first < v; });
    busy_.insert(it, {start, end});
    total_ += end - start;
  }

  [[nodiscard]] DurationPs total_busy() const { return total_; }

 private:
  std::vector<std::pair<TimePs, TimePs>> busy_;
  DurationPs total_ = 0;
};

struct JobInstance {
  std::size_t app = 0;
  std::uint64_t index = 0;
  TimePs release = 0;
  TimePs abs_deadline = 0;
};

DurationPs exec_time_on(const TaskNode& t, const PeDesc& pe) {
  return cycles_to_ps(t.cycles_on(pe.cls), pe.frequency);
}

/// Gap-aware list scheduling of one job of `g` released at `release`.
/// Returns the completion time of the whole graph.
TimePs schedule_job(const TaskGraph& g, const MultiAppConfig& cfg,
                    std::vector<Timeline>& pes, TimePs release) {
  const auto order = g.topological_order();
  if (order.empty()) throw std::invalid_argument("cyclic task graph");
  std::vector<TimePs> finish(g.tasks().size(), 0);
  std::vector<std::size_t> placed(g.tasks().size(), 0);
  TimePs makespan = release;

  for (const TaskNodeId t : order) {
    TimePs best_finish = std::numeric_limits<TimePs>::max();
    std::size_t best_pe = 0;
    TimePs best_start = 0;
    for (std::size_t pe = 0; pe < cfg.pes.size(); ++pe) {
      const auto& desc = cfg.pes[pe];
      if (g.task(t).preferred_pe && desc.cls != *g.task(t).preferred_pe)
        continue;
      TimePs ready = release;
      for (const auto& e : g.edges()) {
        if (e.dst != t) continue;
        ready = std::max(ready, finish[e.src.index()] +
                                    cfg.comm(placed[e.src.index()], pe,
                                             e.bytes));
      }
      const DurationPs dur = exec_time_on(g.task(t), desc);
      const TimePs start = pes[pe].earliest_gap(ready, dur);
      if (start + dur < best_finish) {
        best_finish = start + dur;
        best_pe = pe;
        best_start = start;
      }
    }
    if (best_finish == std::numeric_limits<TimePs>::max()) {
      // Preference unsatisfiable on this platform: allow any PE.
      for (std::size_t pe = 0; pe < cfg.pes.size(); ++pe) {
        TimePs ready = release;
        for (const auto& e : g.edges()) {
          if (e.dst != t) continue;
          ready = std::max(ready, finish[e.src.index()] +
                                      cfg.comm(placed[e.src.index()], pe,
                                               e.bytes));
        }
        const DurationPs dur = exec_time_on(g.task(t), cfg.pes[pe]);
        const TimePs start = pes[pe].earliest_gap(ready, dur);
        if (start + dur < best_finish) {
          best_finish = start + dur;
          best_pe = pe;
          best_start = start;
        }
      }
    }
    const DurationPs dur = exec_time_on(g.task(t), cfg.pes[best_pe]);
    pes[best_pe].reserve(best_start, best_start + dur);
    finish[t.index()] = best_start + dur;
    placed[t.index()] = best_pe;
    makespan = std::max(makespan, finish[t.index()]);
  }
  return makespan;
}

}  // namespace

MultiAppResult simulate_multiapp(const std::vector<TaskGraph>& apps,
                                 const MultiAppConfig& cfg) {
  if (cfg.pes.empty()) throw std::invalid_argument("no PEs");
  for (const auto& g : apps)
    if (g.annotation.period == 0)
      throw std::invalid_argument("app '" + g.name + "' needs a period");

  DurationPs horizon = cfg.horizon;
  if (horizon == 0) {
    DurationPs longest = 0;
    for (const auto& g : apps)
      longest = std::max(longest, g.annotation.period);
    horizon = 16 * longest;
  }

  MultiAppResult res;
  res.apps.resize(apps.size());
  std::vector<Timeline> pes(cfg.pes.size());
  std::vector<double> latency_sum(apps.size(), 0);

  // Collect job instances; hard first (static reservation), then soft,
  // then best-effort; within a class, by release time then app order.
  std::vector<JobInstance> jobs;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const auto& g = apps[a];
    res.apps[a].name = g.name;
    res.apps[a].criticality = g.annotation.criticality;
    const DurationPs deadline = g.annotation.deadline == 0
                                    ? g.annotation.period
                                    : g.annotation.deadline;
    for (TimePs rel = 0; rel + g.annotation.period <= horizon;
         rel += g.annotation.period) {
      jobs.push_back(JobInstance{a, res.apps[a].jobs_released++, rel,
                                 rel + deadline});
    }
  }
  auto rank = [&](const JobInstance& j) {
    return static_cast<int>(apps[j.app].annotation.criticality);
  };
  std::stable_sort(jobs.begin(), jobs.end(),
                   [&](const JobInstance& x, const JobInstance& y) {
                     if (rank(x) != rank(y)) return rank(x) < rank(y);
                     if (x.release != y.release)
                       return x.release < y.release;
                     return x.app < y.app;
                   });

  TimePs latest_finish = 0;
  for (const auto& job : jobs) {
    const TimePs done = schedule_job(apps[job.app], cfg, pes, job.release);
    latest_finish = std::max(latest_finish, done);
    auto& pa = res.apps[job.app];
    ++pa.jobs_completed;
    const DurationPs lat = done - job.release;
    pa.worst_latency = std::max(pa.worst_latency, lat);
    latency_sum[job.app] += static_cast<double>(lat);
    if (done > job.abs_deadline) ++pa.deadline_misses;
  }

  for (std::size_t a = 0; a < apps.size(); ++a)
    if (res.apps[a].jobs_completed > 0)
      res.apps[a].mean_latency =
          latency_sum[a] / static_cast<double>(res.apps[a].jobs_completed);

  DurationPs busy = 0;
  for (const auto& t : pes) busy += t.total_busy();
  // Overloaded scenarios run past the release horizon; normalize over the
  // span actually used so utilization stays a fraction.
  const double span =
      static_cast<double>(std::max<TimePs>(horizon, latest_finish));
  res.pe_utilization = static_cast<double>(busy) /
                       (span * static_cast<double>(cfg.pes.size()));
  return res;
}

}  // namespace rw::maps
