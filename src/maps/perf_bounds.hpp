// Static performance bounds over mapped task graphs (ISSUE 7).
//
// The paper's complaint (Sec. I) is that programmers discover mapping
// infeasibility only after simulating it. These helpers answer the
// feasibility question *statically*: a serialized cost bound — every
// task's execution plus every cross-PE transfer's uncontended fabric
// occupancy — that provably upper-bounds both the list-scheduler
// estimates (heft_map / evaluate_mapping / dynamic_schedule) and the
// contended virtual-platform replay (execute_on_platform on an
// un-faulted fabric). The argument is an induction over scheduler /
// simulator steps: each task occupies its PE for exactly its execution
// time, each transfer occupies fabric resources for at most its
// uncontended occupancy, and every wait is a wait *for* one of those
// occupancies — so the sum of all occupancies bounds the makespan.
//
// Consumers: lint::pass_makespan (per-mapping Diagnostic evidence),
// maps::verify_mapping (deadline precheck), sched (gang admission) and
// ert (submit-time rejection of statically-infeasible realtime jobs).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "maps/mapping.hpp"
#include "maps/taskgraph.hpp"
#include "sim/platform.hpp"

namespace rw::maps {

/// A conservative static makespan bound plus the evidence needed to
/// judge its tightness. `bound = work + comm` is the guarantee;
/// `critical_path` (contention-free longest path, same cost model) is
/// the optimistic floor reported alongside for tightness ratios.
struct MakespanBound {
  DurationPs bound = 0;          // conservative upper bound (work + comm)
  DurationPs work = 0;           // sum of task execution times
  DurationPs comm = 0;           // sum of charged transfer occupancies
  DurationPs critical_path = 0;  // longest path, no contention (evidence)
  std::size_t cross_edges = 0;   // edges charged as cross-PE transfers
};

/// Serialized bound for `g` under a fixed assignment. Missing
/// `task_to_pe` entries default to the task index; PE indices wrap
/// modulo `pes.size()` (the same convention execute_on_platform uses).
/// Only cross-PE edges are charged: same-PE communication is free in
/// both the list schedulers and the platform replay.
[[nodiscard]] MakespanBound static_makespan_bound(
    const TaskGraph& g, const std::vector<PeDesc>& pes, const CommCost& comm,
    const std::vector<std::size_t>& task_to_pe);

/// Gang-size-independent bound: every task priced on `pe`, EVERY edge
/// charged at `comm(0, 1, bytes)` as if it crossed PEs. For a
/// homogeneous pool and a distance-independent CommCost this dominates
/// the fixed-assignment bound of every possible gang (same-PE edges
/// cost 0 there), so an admission controller can reject before the
/// gang size is even chosen.
[[nodiscard]] MakespanBound static_makespan_bound_any_gang(
    const TaskGraph& g, const PeDesc& pe, const CommCost& comm);

/// The planner's view of a sim::PlatformConfig: one PeDesc per core.
[[nodiscard]] std::vector<PeDesc> pes_from_platform(
    const sim::PlatformConfig& cfg);

/// Uncontended per-transfer fabric occupancy of `cfg`'s interconnect,
/// as a CommCost. Mirrors the simulator's occupancy formulas exactly:
/// shared bus = arbitration + ceil(bytes/width) bus cycles; mesh NoC =
/// XY hops x (per-link serialization + hop latency), store-and-forward.
/// Same-PE transfers are free (the replay never issues them). This is
/// the un-faulted fabric: set_degrade / packet drops are run-time
/// faults, outside the static contract (same stance as
/// Interconnect::nominal_latency).
[[nodiscard]] CommCost comm_cost_from_platform(const sim::PlatformConfig& cfg);

/// Outcome of the static deadline precheck for one mapped graph.
struct MappingVerdict {
  bool has_deadline = false;  // annotation carries a deadline
  bool provable = false;      // has_deadline && bound.bound <= deadline
  DurationPs deadline = 0;
  MakespanBound bound;
};

/// Deadline precheck: static bound of `g` mapped by `task_to_pe` onto
/// `cfg`, judged against g.annotation.deadline. `provable` means the
/// deadline is met on EVERY schedule the platform can produce — the
/// static half of the paper's static/dynamic split. Not provable does
/// not mean infeasible; it means simulation is still required.
[[nodiscard]] MappingVerdict verify_mapping(
    const TaskGraph& g, const sim::PlatformConfig& cfg,
    const std::vector<std::size_t>& task_to_pe);

}  // namespace rw::maps
