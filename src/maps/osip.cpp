#include "maps/osip.hpp"

#include <algorithm>
#include <vector>

namespace rw::maps {

DispatcherModel risc_dispatcher() {
  // A scheduling tick on a general-purpose core: queue locking, priority
  // scan, bookkeeping — roughly a thousand cycles in a lean RTOS — plus a
  // full software context switch on the worker.
  return DispatcherModel{"RISC", 1200, mhz(400), 400};
}

DispatcherModel osip_dispatcher() {
  // The OSIP ASIP resolves a dispatch in tens of specialized-instruction
  // cycles and triggers a hardware-assisted context switch.
  return DispatcherModel{"OSIP", 40, mhz(400), 40};
}

DispatchResult simulate_dispatch(std::uint64_t num_tasks,
                                 Cycles grain_cycles, std::size_t num_pes,
                                 HertzT pe_frequency,
                                 const DispatcherModel& model) {
  DispatchResult res;
  if (num_tasks == 0 || num_pes == 0) return res;

  const DurationPs decision = cycles_to_ps(model.dispatch_cycles,
                                           model.frequency);
  const DurationPs switch_in = cycles_to_ps(model.pe_switch_cycles,
                                            pe_frequency);
  const DurationPs work = cycles_to_ps(grain_cycles, pe_frequency);

  // Scheduler is serial: decision n completes at n-th multiple of the
  // decision latency (it can always look ahead since tasks are ready).
  // A worker starts a task after (its own availability) and (the decision
  // for that task), then pays the switch-in cost before the work.
  std::vector<TimePs> pe_free(num_pes, 0);
  TimePs scheduler_free = 0;
  DurationPs total_switch = 0;

  for (std::uint64_t t = 0; t < num_tasks; ++t) {
    // Earliest-available worker takes the next task (deterministic).
    const auto it = std::min_element(pe_free.begin(), pe_free.end());
    const TimePs decision_done = scheduler_free + decision;
    scheduler_free = decision_done;
    const TimePs start = std::max(*it, decision_done);
    const TimePs finish = start + switch_in + work;
    total_switch += switch_in;
    *it = finish;
    ++res.dispatches;
    res.makespan = std::max(res.makespan, finish);
  }

  const double useful =
      static_cast<double>(work) * static_cast<double>(num_tasks);
  const double capacity = static_cast<double>(res.makespan) *
                          static_cast<double>(num_pes);
  res.pe_utilization = capacity > 0 ? useful / capacity : 0;
  const double overhead_time =
      static_cast<double>(decision) * static_cast<double>(num_tasks) +
      static_cast<double>(total_switch);
  res.dispatch_overhead =
      overhead_time / (useful + overhead_time);
  return res;
}

}  // namespace rw::maps
