// Multi-application concurrency graph (Sec. IV).
//
// "a concurrency graph is used to capture potential parallelism between
// applications, in order to derive the worst case computational loads."
// Nodes are applications; an edge says the two may be active at the same
// time (e.g. a phone call while MP3 playback runs). The worst-case load is
// the heaviest clique — the most demanding set of applications that can
// legally coexist — which sizes the platform / drives admission.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "sched/task.hpp"

namespace rw::maps {

struct AppNode {
  std::string name;
  double load = 0;  // utilization demand (e.g. GHz-equivalents or U)
  sched::Criticality criticality = sched::Criticality::kSoft;
};

class ConcurrencyGraph {
 public:
  std::size_t add_app(std::string name, double load,
                      sched::Criticality crit = sched::Criticality::kSoft);

  /// Declare that apps a and b may run concurrently.
  void add_conflict(std::size_t a, std::size_t b);

  [[nodiscard]] const std::vector<AppNode>& apps() const { return apps_; }
  [[nodiscard]] bool may_overlap(std::size_t a, std::size_t b) const;

  struct WorstCase {
    double load = 0;
    std::vector<std::size_t> clique;  // the apps realizing it
  };

  /// Heaviest clique by total load (exact branch-and-bound; app counts in
  /// a terminal are small). Every app alone is a clique, so the result is
  /// never empty when apps exist.
  [[nodiscard]] WorstCase worst_case_load() const;

  /// Minimum number of cores of `per_core_capacity` covering the worst
  /// case (the provisioning answer).
  [[nodiscard]] std::size_t cores_needed(double per_core_capacity) const;

 private:
  std::vector<AppNode> apps_;
  std::vector<std::vector<bool>> adj_;
};

}  // namespace rw::maps
