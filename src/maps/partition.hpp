// Semi-automatic code partitioning (the MAPS core, Sec. IV / [1]).
//
// Turns a SeqProgram's dependence DAG into a task graph with at most
// `max_tasks` tasks. The clustering heuristic walks statements in program
// order and places each where it (a) keeps load balanced and (b) avoids
// cutting heavy flow dependences; strongly-connected clusters are merged
// afterwards so the resulting task graph is always acyclic. Anti/output
// dependences crossing clusters are resolved by privatization (they cost
// nothing), exactly as a parallelizing compiler would.
#pragma once

#include "maps/ir.hpp"
#include "maps/taskgraph.hpp"

namespace rw::maps {

struct PartitionConfig {
  std::size_t max_tasks = 4;
  /// Relative weight of communication avoidance vs load balance in the
  /// placement cost; 0 = pure load balancing.
  double comm_weight = 8.0;
};

struct PartitionResult {
  TaskGraph graph;
  std::vector<std::size_t> stmt_to_task;  // statement index -> task index
  Cycles total_cycles = 0;
  Cycles critical_path = 0;
  std::uint64_t cut_bytes = 0;  // flow-dep bytes crossing tasks

  /// Speedup bound for this partition on p identical PEs (ignores
  /// communication): total / max(critical path, total/p, max task).
  [[nodiscard]] double bound_speedup(std::size_t pes) const;
};

PartitionResult partition_program(const SeqProgram& prog,
                                  const PartitionConfig& cfg);

/// Degenerate partition: everything in one task (the sequential baseline).
PartitionResult sequential_partition(const SeqProgram& prog);

}  // namespace rw::maps
