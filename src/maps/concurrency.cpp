#include "maps/concurrency.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace rw::maps {

std::size_t ConcurrencyGraph::add_app(std::string name, double load,
                                      sched::Criticality crit) {
  apps_.push_back(AppNode{std::move(name), load, crit});
  const std::size_t n = apps_.size();
  adj_.resize(n);
  for (auto& row : adj_) row.resize(n, false);
  return n - 1;
}

void ConcurrencyGraph::add_conflict(std::size_t a, std::size_t b) {
  if (a >= apps_.size() || b >= apps_.size())
    throw std::out_of_range("concurrency edge endpoint");
  if (a == b) return;
  adj_[a][b] = adj_[b][a] = true;
}

bool ConcurrencyGraph::may_overlap(std::size_t a, std::size_t b) const {
  return adj_.at(a).at(b);
}

ConcurrencyGraph::WorstCase ConcurrencyGraph::worst_case_load() const {
  WorstCase best;
  std::vector<std::size_t> current;
  double current_load = 0;

  // Branch and bound over vertices in index order.
  std::vector<double> suffix_load(apps_.size() + 1, 0);
  for (std::size_t i = apps_.size(); i-- > 0;)
    suffix_load[i] = suffix_load[i + 1] + apps_[i].load;

  std::function<void(std::size_t)> go = [&](std::size_t next) {
    if (current_load > best.load) {
      best.load = current_load;
      best.clique = current;
    }
    if (next >= apps_.size()) return;
    if (current_load + suffix_load[next] <= best.load) return;  // bound
    for (std::size_t v = next; v < apps_.size(); ++v) {
      bool compatible = true;
      for (const std::size_t u : current)
        if (!adj_[u][v]) {
          compatible = false;
          break;
        }
      if (!compatible) continue;
      current.push_back(v);
      current_load += apps_[v].load;
      go(v + 1);
      current_load -= apps_[v].load;
      current.pop_back();
    }
  };
  go(0);
  return best;
}

std::size_t ConcurrencyGraph::cores_needed(double per_core_capacity) const {
  if (per_core_capacity <= 0)
    throw std::invalid_argument("core capacity must be positive");
  const double load = worst_case_load().load;
  return static_cast<std::size_t>(std::ceil(load / per_core_capacity));
}

}  // namespace rw::maps
