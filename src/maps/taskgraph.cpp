#include "maps/taskgraph.hpp"

#include <algorithm>
#include <deque>

namespace rw::maps {

TaskNodeId TaskGraph::add_task(std::string name, Cycles ref_cycles) {
  TaskNode t;
  t.id = TaskNodeId{static_cast<std::uint32_t>(tasks_.size())};
  t.name = std::move(name);
  t.ref_cycles = ref_cycles;
  tasks_.push_back(std::move(t));
  return tasks_.back().id;
}

void TaskGraph::add_edge(TaskNodeId src, TaskNodeId dst,
                         std::uint64_t bytes) {
  edges_.push_back(TaskEdge{src, dst, bytes});
}

std::vector<TaskNodeId> TaskGraph::predecessors(TaskNodeId t) const {
  std::vector<TaskNodeId> out;
  for (const auto& e : edges_)
    if (e.dst == t) out.push_back(e.src);
  return out;
}

std::vector<TaskNodeId> TaskGraph::successors(TaskNodeId t) const {
  std::vector<TaskNodeId> out;
  for (const auto& e : edges_)
    if (e.src == t) out.push_back(e.dst);
  return out;
}

std::vector<TaskNodeId> TaskGraph::topological_order() const {
  std::vector<std::size_t> indeg(tasks_.size(), 0);
  for (const auto& e : edges_) ++indeg[e.dst.index()];
  std::deque<TaskNodeId> ready;
  for (const auto& t : tasks_)
    if (indeg[t.id.index()] == 0) ready.push_back(t.id);
  std::vector<TaskNodeId> order;
  while (!ready.empty()) {
    const TaskNodeId t = ready.front();
    ready.pop_front();
    order.push_back(t);
    for (const auto& e : edges_) {
      if (e.src != t) continue;
      if (--indeg[e.dst.index()] == 0) ready.push_back(e.dst);
    }
  }
  if (order.size() != tasks_.size()) return {};
  return order;
}

Cycles TaskGraph::total_ref_cycles() const {
  Cycles t = 0;
  for (const auto& n : tasks_) t += n.ref_cycles;
  return t;
}

Cycles TaskGraph::critical_path_cycles() const {
  const auto order = topological_order();
  if (order.empty()) return total_ref_cycles();  // cyclic: no better bound
  std::vector<Cycles> finish(tasks_.size(), 0);
  Cycles best = 0;
  for (const TaskNodeId t : order) {
    Cycles start = 0;
    for (const TaskNodeId p : predecessors(t))
      start = std::max(start, finish[p.index()]);
    finish[t.index()] = start + tasks_[t.index()].ref_cycles;
    best = std::max(best, finish[t.index()]);
  }
  return best;
}

}  // namespace rw::maps
