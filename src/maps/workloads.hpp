// Reference workloads for experiments and examples.
//
// Sec. IV's case study partitions a JPEG encoder; Sec. V's retargets an
// H.264 encoder. These builders produce statement-IR models of those
// applications with realistic stage weights and data volumes (profiled
// shapes, not the codecs themselves — the partitioning/mapping problem
// only sees weights and dependences, which is what we reproduce).
#pragma once

#include <cstdint>

#include "maps/ir.hpp"
#include "maps/taskgraph.hpp"

namespace rw::maps {

/// JPEG-encoder-like sequential program over `blocks` 8x8 macroblocks:
/// per block: color convert -> DCT -> quantize -> zigzag, then a serial
/// Huffman/bitstream stage folding everything together. Block pipelines
/// are mutually independent (data parallelism); the entropy tail is the
/// serial bottleneck.
SeqProgram jpeg_encoder_program(std::uint32_t blocks = 16);

/// H.264-encoder-like task graph (coarse grain, the CIC granularity):
/// per-slice motion estimation / intra prediction / transform+quant /
/// deblock, feeding a serial entropy coder. `slices` controls available
/// parallelism.
TaskGraph h264_encoder_taskgraph(std::uint32_t slices = 4);

/// Small control-plus-DSP filter app used in heterogeneity tests: control
/// statements prefer the RISC, kernels the DSP.
SeqProgram mixed_kind_program(std::uint32_t kernels = 6);

/// Canonical 3-stage rx -> proc -> tx pipeline with RT annotations — the
/// terminal app shape the multi-application benches sweep. Replaces the
/// bench-local duplicates (bench_a4's pipeline_app); new callers should
/// describe work as an ert::JobSpec and convert via the ert adapters.
TaskGraph pipeline_taskgraph(const std::string& name, Cycles stage_cycles,
                             DurationPs period, sched::Criticality crit);

}  // namespace rw::maps
