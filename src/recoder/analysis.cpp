#include "recoder/analysis.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "common/strings.hpp"

namespace rw::recoder {
namespace {

void collect_expr_reads(const Expr& e, std::set<std::string>& reads) {
  switch (e.kind) {
    case ExprKind::kIdent:
      reads.insert(e.name);
      return;
    default:
      for (const auto& k : e.kids) collect_expr_reads(*k, reads);
      return;
  }
}

void collect_lhs(const Expr& lhs, VarUse& use) {
  switch (lhs.kind) {
    case ExprKind::kIdent:
      use.writes.insert(lhs.name);
      return;
    case ExprKind::kIndex:
      // a[i] = ... writes a, reads i (and whatever the base expr reads).
      if (lhs.kids[0]->kind == ExprKind::kIdent) {
        use.writes.insert(lhs.kids[0]->name);
      } else {
        collect_expr_reads(*lhs.kids[0], use.reads);
      }
      collect_expr_reads(*lhs.kids[1], use.reads);
      return;
    case ExprKind::kDeref:
      // *p = ... reads p, writes through it (target unknown -> record p).
      collect_expr_reads(*lhs.kids[0], use.reads);
      if (lhs.kids[0]->kind == ExprKind::kIdent)
        use.writes.insert(lhs.kids[0]->name);
      return;
    default:
      collect_expr_reads(lhs, use.reads);
      return;
  }
}

void collect_stmt(const Stmt& s, VarUse& use) {
  switch (s.kind) {
    case StmtKind::kDecl:
      use.writes.insert(s.name);
      if (s.expr) collect_expr_reads(*s.expr, use.reads);
      return;
    case StmtKind::kAssign:
      collect_lhs(*s.lhs, use);
      collect_expr_reads(*s.expr, use.reads);
      return;
    case StmtKind::kExprStmt:
    case StmtKind::kReturn:
      if (s.expr) collect_expr_reads(*s.expr, use.reads);
      return;
    case StmtKind::kIf:
      collect_expr_reads(*s.expr, use.reads);
      for (const auto& c : s.body) collect_stmt(*c, use);
      for (const auto& c : s.orelse) collect_stmt(*c, use);
      return;
    case StmtKind::kFor:
      collect_stmt(*s.init, use);
      collect_expr_reads(*s.expr, use.reads);
      collect_stmt(*s.step, use);
      for (const auto& c : s.body) collect_stmt(*c, use);
      return;
    case StmtKind::kWhile:
      collect_expr_reads(*s.expr, use.reads);
      for (const auto& c : s.body) collect_stmt(*c, use);
      return;
    case StmtKind::kBlock:
      for (const auto& c : s.body) collect_stmt(*c, use);
      return;
  }
}

}  // namespace

VarUse stmt_uses(const Stmt& s) {
  VarUse use;
  collect_stmt(s, use);
  return use;
}

VarUse body_uses(const std::vector<StmtPtr>& body) {
  VarUse use;
  for (const auto& s : body) collect_stmt(*s, use);
  return use;
}

std::optional<CanonicalLoop> canonical_loop(const Stmt& s) {
  if (s.kind != StmtKind::kFor) return std::nullopt;
  // init: i = <lit> or int i = <lit>
  const Stmt& init = *s.init;
  std::string var;
  if (init.kind == StmtKind::kAssign &&
      init.lhs->kind == ExprKind::kIdent) {
    var = init.lhs->name;
  } else if (init.kind == StmtKind::kDecl && !init.is_array &&
             !init.is_pointer) {
    var = init.name;
  } else {
    return std::nullopt;
  }
  const Expr* init_val = init.expr.get();
  if (!init_val || init_val->kind != ExprKind::kIntLit) return std::nullopt;

  // cond: i < <lit>
  const Expr& cond = *s.expr;
  if (cond.kind != ExprKind::kBinary || cond.op != "<" ||
      cond.kids[0]->kind != ExprKind::kIdent ||
      cond.kids[0]->name != var ||
      cond.kids[1]->kind != ExprKind::kIntLit)
    return std::nullopt;

  // step: i = i + 1
  const Stmt& step = *s.step;
  if (step.kind != StmtKind::kAssign ||
      step.lhs->kind != ExprKind::kIdent || step.lhs->name != var)
    return std::nullopt;
  const Expr& se = *step.expr;
  if (se.kind != ExprKind::kBinary || se.op != "+" ||
      se.kids[0]->kind != ExprKind::kIdent || se.kids[0]->name != var ||
      se.kids[1]->kind != ExprKind::kIntLit || se.kids[1]->value != 1)
    return std::nullopt;

  CanonicalLoop cl;
  cl.var = var;
  cl.lower = init_val->value;
  cl.upper = cond.kids[1]->value;
  return cl;
}

namespace {

bool expr_array_ok(const Expr& e, const std::string& name,
                   const std::string& loop_var) {
  if (e.kind == ExprKind::kIndex && e.kids[0]->kind == ExprKind::kIdent &&
      e.kids[0]->name == name) {
    const Expr& idx = *e.kids[1];
    if (!(idx.kind == ExprKind::kIdent && idx.name == loop_var))
      return false;
    return true;  // base checked; index is exactly the loop var
  }
  if (e.kind == ExprKind::kIdent && e.name == name)
    return false;  // bare use (aliasing, pointer decay): not analyzable
  for (const auto& k : e.kids)
    if (!expr_array_ok(*k, name, loop_var)) return false;
  return true;
}

bool stmt_array_ok(const Stmt& s, const std::string& name,
                   const std::string& loop_var) {
  if (s.expr && !expr_array_ok(*s.expr, name, loop_var)) return false;
  if (s.lhs && !expr_array_ok(*s.lhs, name, loop_var)) return false;
  if (s.init && !stmt_array_ok(*s.init, name, loop_var)) return false;
  if (s.step && !stmt_array_ok(*s.step, name, loop_var)) return false;
  for (const auto& c : s.body)
    if (!stmt_array_ok(*c, name, loop_var)) return false;
  for (const auto& c : s.orelse)
    if (!stmt_array_ok(*c, name, loop_var)) return false;
  return true;
}

}  // namespace

bool array_accessed_only_at(const std::vector<StmtPtr>& body,
                            const std::string& name,
                            const std::string& loop_var) {
  for (const auto& s : body)
    if (!stmt_array_ok(*s, name, loop_var)) return false;
  return true;
}

bool loop_is_data_parallel(const Stmt& for_stmt) {
  const auto cl = canonical_loop(for_stmt);
  if (!cl) return false;
  const VarUse use = body_uses(for_stmt.body);

  // Loop-local declarations.
  std::set<std::string> locals;
  for (const auto& s : for_stmt.body)
    if (s->kind == StmtKind::kDecl) locals.insert(s->name);

  for (const auto& w : use.writes) {
    if (w == cl->var) return false;  // body mutates the induction variable
    if (locals.count(w)) continue;
    // A non-local write must be an array accessed only at the loop var.
    if (!array_accessed_only_at(for_stmt.body, w, cl->var)) return false;
  }
  // Arrays that are also read must be index-disciplined too, unless they
  // are read-only (read-only arrays at any index are fine).
  return true;
}

std::set<std::string> pointer_variables(const Function& f) {
  std::set<std::string> out;
  for (const auto& p : f.params)
    if (p.is_pointer) out.insert(p.name);
  std::function<void(const Stmt&)> visit = [&](const Stmt& s) {
    if (s.kind == StmtKind::kDecl && s.is_pointer) out.insert(s.name);
    if (s.init) visit(*s.init);
    if (s.step) visit(*s.step);
    for (const auto& c : s.body) visit(*c);
    for (const auto& c : s.orelse) visit(*c);
  };
  for (const auto& s : f.body) visit(*s);
  return out;
}

bool uses_pointers(const Function& f) {
  if (!pointer_variables(f).empty()) return true;
  bool found = false;
  std::function<void(const Expr&)> visit_e = [&](const Expr& e) {
    if (e.kind == ExprKind::kDeref || e.kind == ExprKind::kAddrOf)
      found = true;
    for (const auto& k : e.kids) visit_e(*k);
  };
  std::function<void(const Stmt&)> visit = [&](const Stmt& s) {
    if (s.expr) visit_e(*s.expr);
    if (s.lhs) visit_e(*s.lhs);
    if (s.init) visit(*s.init);
    if (s.step) visit(*s.step);
    for (const auto& c : s.body) visit(*c);
    for (const auto& c : s.orelse) visit(*c);
  };
  for (const auto& s : f.body) visit(*s);
  return found;
}

std::size_t count_nodes(const Program& p) {
  std::size_t n = 0;
  std::function<void(const Expr&)> ce = [&](const Expr& e) {
    ++n;
    for (const auto& k : e.kids) ce(*k);
  };
  std::function<void(const Stmt&)> cs = [&](const Stmt& s) {
    ++n;
    if (s.expr) ce(*s.expr);
    if (s.lhs) ce(*s.lhs);
    if (s.init) cs(*s.init);
    if (s.step) cs(*s.step);
    for (const auto& c : s.body) cs(*c);
    for (const auto& c : s.orelse) cs(*c);
  };
  for (const auto& g : p.globals) cs(*g);
  for (const auto& f : p.functions)
    for (const auto& s : f.body) cs(*s);
  return n;
}

std::size_t line_diff(const std::string& before, const std::string& after) {
  const auto a = split(before, '\n');
  const auto b = split(after, '\n');
  // Longest common subsequence -> minimal line add/remove count.
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::vector<std::size_t>> lcs(n + 1,
                                            std::vector<std::size_t>(m + 1));
  for (std::size_t i = 1; i <= n; ++i)
    for (std::size_t j = 1; j <= m; ++j)
      lcs[i][j] = a[i - 1] == b[j - 1]
                      ? lcs[i - 1][j - 1] + 1
                      : std::max(lcs[i - 1][j], lcs[i][j - 1]);
  return (n - lcs[n][m]) + (m - lcs[n][m]);
}

}  // namespace rw::recoder
