// Mini-C code generator (the recoder's Code Generator box, Fig. 3:
// "a Code Generator synchronizes changes in the AST to the document").
#pragma once

#include <string>

#include "recoder/ast.hpp"

namespace rw::recoder {

std::string print_expr(const Expr& e);
std::string print_stmt(const Stmt& s, int indent = 0);
std::string print_function(const Function& f);
std::string print_program(const Program& p);

}  // namespace rw::recoder
