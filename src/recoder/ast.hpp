// Mini-C abstract syntax tree.
//
// The Source Recoder (Sec. VI) operates on "applications written in a
// C-based SLDL": it keeps an AST in sync with the text and applies
// designer-invoked transformations to it. This AST covers the C subset
// the recoding transformations need — scalars, fixed-size int arrays,
// pointers, functions, for/while/if control flow — and is value-cloneable
// so the transformation journal can snapshot cheaply.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace rw::recoder {

// ----------------------------------------------------------- expressions

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kIntLit,   // value
  kIdent,    // name
  kBinary,   // op, kids[0] op kids[1]
  kUnary,    // op, kids[0] (ops: -, !)
  kIndex,    // kids[0] [ kids[1] ]
  kDeref,    // * kids[0]
  kAddrOf,   // & kids[0]
  kCall,     // name(kids...)
};

struct Expr {
  ExprKind kind = ExprKind::kIntLit;
  std::int64_t value = 0;   // kIntLit
  std::string name;         // kIdent, kCall
  std::string op;           // kBinary, kUnary
  std::vector<ExprPtr> kids;

  [[nodiscard]] ExprPtr clone() const;
  [[nodiscard]] bool equals(const Expr& other) const;
};

ExprPtr make_int(std::int64_t v);
ExprPtr make_ident(std::string name);
ExprPtr make_binary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr make_unary(std::string op, ExprPtr operand);
ExprPtr make_index(ExprPtr base, ExprPtr index);
ExprPtr make_deref(ExprPtr ptr);
ExprPtr make_addrof(ExprPtr lv);
ExprPtr make_call(std::string name, std::vector<ExprPtr> args);

// ------------------------------------------------------------ statements

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  kDecl,      // int name; / int name = init; / int name[size]; / int *name;
  kAssign,    // lhs = rhs;  (lhs: ident, index, deref)
  kExprStmt,  // expr; (typically a call)
  kIf,        // cond, then_block, else_block (optional)
  kFor,       // init (assign/decl), cond, step (assign), body
  kWhile,     // cond, body
  kReturn,    // expr (optional)
  kBlock,     // body
};

struct Stmt {
  StmtKind kind = StmtKind::kBlock;
  // kDecl
  std::string name;
  bool is_array = false;
  std::int64_t array_size = 0;
  bool is_pointer = false;
  // kDecl init / kAssign rhs / kExprStmt expr / kReturn expr /
  // kIf & kWhile & kFor cond:
  ExprPtr expr;
  ExprPtr lhs;  // kAssign target
  // Control-flow children:
  StmtPtr init;                 // kFor
  StmtPtr step;                 // kFor
  std::vector<StmtPtr> body;    // kBlock, kIf then, kFor, kWhile
  std::vector<StmtPtr> orelse;  // kIf else

  [[nodiscard]] StmtPtr clone() const;
};

StmtPtr make_decl(std::string name, ExprPtr init = nullptr);
StmtPtr make_array_decl(std::string name, std::int64_t size);
StmtPtr make_pointer_decl(std::string name, ExprPtr init = nullptr);
StmtPtr make_assign(ExprPtr lhs, ExprPtr rhs);
StmtPtr make_expr_stmt(ExprPtr e);
StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body = {});
StmtPtr make_for(StmtPtr init, ExprPtr cond, StmtPtr step,
                 std::vector<StmtPtr> body);
StmtPtr make_while(ExprPtr cond, std::vector<StmtPtr> body);
StmtPtr make_return(ExprPtr e);
StmtPtr make_block(std::vector<StmtPtr> body);

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body);

// ------------------------------------------------------------- functions

struct Param {
  std::string name;
  bool is_array = false;    // int name[] — passed by reference
  bool is_pointer = false;  // int *name
};

struct Function {
  std::string name;
  bool returns_value = true;  // int f() vs void f()
  std::vector<Param> params;
  std::vector<StmtPtr> body;

  [[nodiscard]] Function clone() const;
};

struct Program {
  std::vector<StmtPtr> globals;  // kDecl only
  std::vector<Function> functions;

  [[nodiscard]] Program clone() const;
  [[nodiscard]] Function* find_function(const std::string& name);
  [[nodiscard]] const Function* find_function(const std::string& name) const;
};

/// Visit every statement in a body tree, pre-order. The callback receives
/// the owning vector and index so it can splice (visitation restarts after
/// structural edits are the caller's concern).
void for_each_stmt(std::vector<StmtPtr>& body,
                   const std::function<void(Stmt&)>& fn);
void for_each_expr(Stmt& s, const std::function<void(Expr&)>& fn);
void for_each_expr_in_expr(Expr& e, const std::function<void(Expr&)>& fn);

}  // namespace rw::recoder
