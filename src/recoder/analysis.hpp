// Static analyses backing the recoder's transformations.
//
// Sec. VI: the recoder is "an intelligent union of editor, compiler, and
// transformation and analysis tools" whose results the designer can
// "concur, augment or overrule". These analyses are deliberately
// conservative: when a pattern is not provably safe the transformation
// refuses and reports why, and the designer decides.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "recoder/ast.hpp"

namespace rw::recoder {

/// Variables read / written by a statement tree (arrays count as whole
/// objects; reads through pointers count the pointer name).
struct VarUse {
  std::set<std::string> reads;
  std::set<std::string> writes;
};
VarUse stmt_uses(const Stmt& s);
VarUse body_uses(const std::vector<StmtPtr>& body);

/// Canonical loop shape: for (i = <lo>; i < <hi>; i = i + 1) with literal
/// bounds. Most recoding transformations require it.
struct CanonicalLoop {
  std::string var;
  std::int64_t lower = 0;
  std::int64_t upper = 0;  // exclusive
};
std::optional<CanonicalLoop> canonical_loop(const Stmt& for_stmt);

/// True when every access to array `name` inside `body` is exactly
/// `name[<loop_var>]` (the pattern data-parallel loop splitting needs).
bool array_accessed_only_at(const std::vector<StmtPtr>& body,
                            const std::string& name,
                            const std::string& loop_var);

/// True when the loop body carries no dependence between iterations:
/// every array indexed only at the loop variable, every scalar written in
/// the body also declared in the body (loop-local).
bool loop_is_data_parallel(const Stmt& for_stmt);

/// Names of pointer-typed declarations in the function.
std::set<std::string> pointer_variables(const Function& f);

/// Does the function use any pointer expression (deref/addr-of/pointer
/// decl)? Drives the "analyzability" metric.
bool uses_pointers(const Function& f);

/// Count AST nodes (statements + expressions) — the size metric used for
/// effort accounting.
std::size_t count_nodes(const Program& p);

/// Line-level difference between two printed sources: lines added +
/// removed (a proxy for manual editing effort).
std::size_t line_diff(const std::string& before, const std::string& after);

}  // namespace rw::recoder
