#include "recoder/printer.hpp"

#include "common/strings.hpp"

namespace rw::recoder {
namespace {

int precedence_of(const std::string& op) {
  if (op == "||") return 1;
  if (op == "&&") return 2;
  if (op == "==" || op == "!=") return 3;
  if (op == "<" || op == "<=" || op == ">" || op == ">=") return 4;
  if (op == "+" || op == "-") return 5;
  return 6;
}

std::string print_expr_prec(const Expr& e, int parent_prec) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return std::to_string(e.value);
    case ExprKind::kIdent:
      return e.name;
    case ExprKind::kBinary: {
      const int prec = precedence_of(e.op);
      std::string s = print_expr_prec(*e.kids[0], prec) + " " + e.op + " " +
                      print_expr_prec(*e.kids[1], prec + 1);
      if (prec < parent_prec) return "(" + s + ")";
      return s;
    }
    case ExprKind::kUnary:
      return e.op + print_expr_prec(*e.kids[0], 7);
    case ExprKind::kIndex:
      return print_expr_prec(*e.kids[0], 7) + "[" +
             print_expr_prec(*e.kids[1], 0) + "]";
    case ExprKind::kDeref:
      return "*" + print_expr_prec(*e.kids[0], 7);
    case ExprKind::kAddrOf:
      return "&" + print_expr_prec(*e.kids[0], 7);
    case ExprKind::kCall: {
      std::string s = e.name + "(";
      for (std::size_t i = 0; i < e.kids.size(); ++i) {
        if (i) s += ", ";
        s += print_expr_prec(*e.kids[i], 0);
      }
      return s + ")";
    }
  }
  return "?";
}

std::string pad(int indent) {
  return std::string(static_cast<std::size_t>(indent) * 2, ' ');
}

std::string print_body(const std::vector<StmtPtr>& body, int indent) {
  std::string s;
  for (const auto& st : body) s += print_stmt(*st, indent);
  return s;
}

/// Print an assign/expr statement without trailing ";\n" (for for-headers).
std::string print_inline(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kAssign:
      return print_expr(*s.lhs) + " = " + print_expr(*s.expr);
    case StmtKind::kExprStmt:
      return print_expr(*s.expr);
    case StmtKind::kDecl:
      return "int " + s.name +
             (s.expr ? " = " + print_expr(*s.expr) : std::string{});
    default:
      return "/*?*/";
  }
}

}  // namespace

std::string print_expr(const Expr& e) { return print_expr_prec(e, 0); }

std::string print_stmt(const Stmt& s, int indent) {
  const std::string p = pad(indent);
  switch (s.kind) {
    case StmtKind::kDecl: {
      std::string out = p + "int ";
      if (s.is_pointer) out += "*";
      out += s.name;
      if (s.is_array) out += "[" + std::to_string(s.array_size) + "]";
      if (s.expr) out += " = " + print_expr(*s.expr);
      return out + ";\n";
    }
    case StmtKind::kAssign:
      return p + print_expr(*s.lhs) + " = " + print_expr(*s.expr) + ";\n";
    case StmtKind::kExprStmt:
      return p + print_expr(*s.expr) + ";\n";
    case StmtKind::kIf: {
      std::string out = p + "if (" + print_expr(*s.expr) + ") {\n" +
                        print_body(s.body, indent + 1) + p + "}";
      if (!s.orelse.empty()) {
        out += " else {\n" + print_body(s.orelse, indent + 1) + p + "}";
      }
      return out + "\n";
    }
    case StmtKind::kFor:
      return p + "for (" + print_inline(*s.init) + "; " +
             print_expr(*s.expr) + "; " + print_inline(*s.step) + ") {\n" +
             print_body(s.body, indent + 1) + p + "}\n";
    case StmtKind::kWhile:
      return p + "while (" + print_expr(*s.expr) + ") {\n" +
             print_body(s.body, indent + 1) + p + "}\n";
    case StmtKind::kReturn:
      return p + "return" + (s.expr ? " " + print_expr(*s.expr) : "") +
             ";\n";
    case StmtKind::kBlock:
      return p + "{\n" + print_body(s.body, indent + 1) + p + "}\n";
  }
  return p + "/*?*/\n";
}

std::string print_function(const Function& f) {
  std::string s = (f.returns_value ? "int " : "void ") + f.name + "(";
  for (std::size_t i = 0; i < f.params.size(); ++i) {
    if (i) s += ", ";
    s += "int ";
    if (f.params[i].is_pointer) s += "*";
    s += f.params[i].name;
    if (f.params[i].is_array) s += "[]";
  }
  s += ") {\n" + print_body(f.body, 1) + "}\n";
  return s;
}

std::string print_program(const Program& p) {
  std::string s;
  for (const auto& g : p.globals) s += print_stmt(*g, 0);
  if (!p.globals.empty()) s += "\n";
  for (std::size_t i = 0; i < p.functions.size(); ++i) {
    if (i) s += "\n";
    s += print_function(p.functions[i]);
  }
  return s;
}

}  // namespace rw::recoder
