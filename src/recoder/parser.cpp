#include "recoder/parser.hpp"

#include <cctype>
#include <map>

namespace rw::recoder {
namespace {

// ------------------------------------------------------------------ lexer

enum class Tok : std::uint8_t {
  kEof, kInt, kIdent, kNumber, kVoid, kIf, kElse, kFor, kWhile, kReturn,
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kAssign, kPunct,  // kPunct: operators, in `text`
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  std::int64_t number = 0;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  [[nodiscard]] const Token& peek() const { return cur_; }
  Token take() {
    Token t = cur_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_ws_comments();
    cur_ = Token{};
    cur_.line = line_;
    cur_.col = col_;
    if (pos_ >= src_.size()) {
      cur_.kind = Tok::kEof;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_'))
        word += get();
      static const std::map<std::string, Tok> kw{
          {"int", Tok::kInt},     {"void", Tok::kVoid},
          {"if", Tok::kIf},       {"else", Tok::kElse},
          {"for", Tok::kFor},     {"while", Tok::kWhile},
          {"return", Tok::kReturn}};
      const auto it = kw.find(word);
      cur_.kind = it != kw.end() ? it->second : Tok::kIdent;
      cur_.text = std::move(word);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_])))
        v = v * 10 + (get() - '0');
      cur_.kind = Tok::kNumber;
      cur_.number = v;
      return;
    }
    // Two-char operators first.
    if (pos_ + 1 < src_.size()) {
      const std::string two{src_[pos_], src_[pos_ + 1]};
      if (two == "==" || two == "!=" || two == "<=" || two == ">=" ||
          two == "&&" || two == "||") {
        get();
        get();
        cur_.kind = Tok::kPunct;
        cur_.text = two;
        return;
      }
    }
    get();
    switch (c) {
      case '(': cur_.kind = Tok::kLParen; return;
      case ')': cur_.kind = Tok::kRParen; return;
      case '{': cur_.kind = Tok::kLBrace; return;
      case '}': cur_.kind = Tok::kRBrace; return;
      case '[': cur_.kind = Tok::kLBracket; return;
      case ']': cur_.kind = Tok::kRBracket; return;
      case ';': cur_.kind = Tok::kSemi; return;
      case ',': cur_.kind = Tok::kComma; return;
      case '=': cur_.kind = Tok::kAssign; cur_.text = "="; return;
      default:
        cur_.kind = Tok::kPunct;
        cur_.text = std::string(1, c);
        return;
    }
  }

  char get() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws_comments() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_])))
        get();
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
          src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') get();
        continue;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
          src_[pos_ + 1] == '*') {
        get();
        get();
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/'))
          get();
        if (pos_ + 1 < src_.size()) {
          get();
          get();
        }
        continue;
      }
      return;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1, col_ = 1;
  Token cur_;
};

// ----------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  Result<Program> parse() {
    Program prog;
    while (lex_.peek().kind != Tok::kEof) {
      const Token head = lex_.peek();
      if (head.kind != Tok::kInt && head.kind != Tok::kVoid)
        return err("expected 'int' or 'void' at top level");
      // Lookahead: int name ( => function; otherwise global decl.
      auto saved = lex_;
      lex_.take();  // type
      bool pointer = false;
      if (is_punct("*")) {
        lex_.take();
        pointer = true;
      }
      if (lex_.peek().kind != Tok::kIdent) return err("expected identifier");
      lex_.take();  // name
      const bool is_fn = lex_.peek().kind == Tok::kLParen;
      lex_ = saved;  // rewind
      (void)pointer;
      if (is_fn) {
        prog.functions.push_back(RW_TRY(parse_function()));
      } else {
        prog.globals.push_back(RW_TRY(parse_decl()));
      }
    }
    return prog;
  }

  Result<ExprPtr> parse_single_expression() {
    ExprPtr e = RW_TRY(parse_expr());
    if (lex_.peek().kind != Tok::kEof) return err("trailing tokens");
    return e;
  }

 private:
  Error err(std::string msg) {
    return make_error(std::move(msg), lex_.peek().line, lex_.peek().col);
  }

  [[nodiscard]] bool is_punct(std::string_view p) {
    return lex_.peek().kind == Tok::kPunct && lex_.peek().text == p;
  }

  Status expect(Tok k, const char* what) {
    if (lex_.peek().kind != k) return err(std::string("expected ") + what);
    lex_.take();
    return Status::ok_status();
  }

  Result<Function> parse_function() {
    Function f;
    f.returns_value = lex_.take().kind == Tok::kInt;
    f.name = lex_.take().text;
    RW_TRY_STATUS(expect(Tok::kLParen, "'('"));
    if (lex_.peek().kind != Tok::kRParen) {
      for (;;) {
        RW_TRY_STATUS(expect(Tok::kInt, "'int' in parameter"));
        Param p;
        if (is_punct("*")) {
          lex_.take();
          p.is_pointer = true;
        }
        if (lex_.peek().kind != Tok::kIdent)
          return err("expected parameter name");
        p.name = lex_.take().text;
        if (lex_.peek().kind == Tok::kLBracket) {
          lex_.take();
          RW_TRY_STATUS(expect(Tok::kRBracket, "']'"));
          p.is_array = true;
        }
        f.params.push_back(std::move(p));
        if (lex_.peek().kind != Tok::kComma) break;
        lex_.take();
      }
    }
    RW_TRY_STATUS(expect(Tok::kRParen, "')'"));
    f.body = RW_TRY(parse_block());
    return f;
  }

  Result<std::vector<StmtPtr>> parse_block() {
    RW_TRY_STATUS(expect(Tok::kLBrace, "'{'"));
    std::vector<StmtPtr> body;
    while (lex_.peek().kind != Tok::kRBrace) {
      if (lex_.peek().kind == Tok::kEof) return err("unterminated block");
      body.push_back(RW_TRY(parse_stmt()));
    }
    lex_.take();
    return body;
  }

  Result<StmtPtr> parse_decl() {
    lex_.take();  // int
    bool pointer = false;
    if (is_punct("*")) {
      lex_.take();
      pointer = true;
    }
    if (lex_.peek().kind != Tok::kIdent) return err("expected name in decl");
    const std::string name = lex_.take().text;
    if (lex_.peek().kind == Tok::kLBracket) {
      lex_.take();
      if (lex_.peek().kind != Tok::kNumber)
        return err("array size must be a literal");
      const std::int64_t size = lex_.take().number;
      RW_TRY_STATUS(expect(Tok::kRBracket, "']'"));
      RW_TRY_STATUS(expect(Tok::kSemi, "';'"));
      return make_array_decl(name, size);
    }
    ExprPtr init;
    if (lex_.peek().kind == Tok::kAssign) {
      lex_.take();
      init = RW_TRY(parse_expr());
    }
    RW_TRY_STATUS(expect(Tok::kSemi, "';'"));
    return pointer ? make_pointer_decl(name, std::move(init))
                   : make_decl(name, std::move(init));
  }

  Result<StmtPtr> parse_stmt() {
    switch (lex_.peek().kind) {
      case Tok::kInt: return parse_decl();
      case Tok::kLBrace: {
        return make_block(RW_TRY(parse_block()));
      }
      case Tok::kIf: return parse_if();
      case Tok::kFor: return parse_for();
      case Tok::kWhile: return parse_while();
      case Tok::kReturn: {
        lex_.take();
        ExprPtr e;
        if (lex_.peek().kind != Tok::kSemi) e = RW_TRY(parse_expr());
        RW_TRY_STATUS(expect(Tok::kSemi, "';'"));
        return make_return(std::move(e));
      }
      default: {
        StmtPtr st = RW_TRY(parse_assign_or_expr());
        RW_TRY_STATUS(expect(Tok::kSemi, "';'"));
        return st;
      }
    }
  }

  /// assignment or bare expression (no trailing ';').
  Result<StmtPtr> parse_assign_or_expr() {
    ExprPtr target = RW_TRY(parse_expr());
    if (lex_.peek().kind == Tok::kAssign) {
      lex_.take();
      ExprPtr rhs = RW_TRY(parse_expr());
      if (target->kind != ExprKind::kIdent &&
          target->kind != ExprKind::kIndex &&
          target->kind != ExprKind::kDeref)
        return err("invalid assignment target");
      return make_assign(std::move(target), std::move(rhs));
    }
    return make_expr_stmt(std::move(target));
  }

  Result<StmtPtr> parse_if() {
    lex_.take();
    RW_TRY_STATUS(expect(Tok::kLParen, "'('"));
    ExprPtr cond = RW_TRY(parse_expr());
    RW_TRY_STATUS(expect(Tok::kRParen, "')'"));
    std::vector<StmtPtr> then_body = RW_TRY(parse_block());
    std::vector<StmtPtr> else_body;
    if (lex_.peek().kind == Tok::kElse) {
      lex_.take();
      else_body = RW_TRY(parse_block());
    }
    return make_if(std::move(cond), std::move(then_body),
                   std::move(else_body));
  }

  Result<StmtPtr> parse_for() {
    lex_.take();
    RW_TRY_STATUS(expect(Tok::kLParen, "'('"));
    StmtPtr init = RW_TRY(lex_.peek().kind == Tok::kInt
                              ? parse_decl()  // consumes ';'
                              : [&]() -> Result<StmtPtr> {
                                  StmtPtr a = RW_TRY(parse_assign_or_expr());
                                  RW_TRY_STATUS(expect(Tok::kSemi, "';'"));
                                  return a;
                                }());
    ExprPtr cond = RW_TRY(parse_expr());
    RW_TRY_STATUS(expect(Tok::kSemi, "';'"));
    StmtPtr step = RW_TRY(parse_assign_or_expr());
    RW_TRY_STATUS(expect(Tok::kRParen, "')'"));
    std::vector<StmtPtr> body = RW_TRY(parse_block());
    return make_for(std::move(init), std::move(cond), std::move(step),
                    std::move(body));
  }

  Result<StmtPtr> parse_while() {
    lex_.take();
    RW_TRY_STATUS(expect(Tok::kLParen, "'('"));
    ExprPtr cond = RW_TRY(parse_expr());
    RW_TRY_STATUS(expect(Tok::kRParen, "')'"));
    std::vector<StmtPtr> body = RW_TRY(parse_block());
    return make_while(std::move(cond), std::move(body));
  }

  // Precedence-climbing expression parsing.
  static int precedence(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "==" || op == "!=") return 3;
    if (op == "<" || op == "<=" || op == ">" || op == ">=") return 4;
    if (op == "+" || op == "-") return 5;
    if (op == "*" || op == "/" || op == "%") return 6;
    return 0;
  }

  Result<ExprPtr> parse_expr(int min_prec = 1) {
    ExprPtr e = RW_TRY(parse_unary());
    while (lex_.peek().kind == Tok::kPunct) {
      const int prec = precedence(lex_.peek().text);
      if (prec < min_prec || prec == 0) break;
      const std::string op = lex_.take().text;
      ExprPtr rhs = RW_TRY(parse_expr(prec + 1));
      e = make_binary(op, std::move(e), std::move(rhs));
    }
    return e;
  }

  Result<ExprPtr> parse_unary() {
    if (is_punct("-") || is_punct("!")) {
      const std::string op = lex_.take().text;
      return make_unary(op, RW_TRY(parse_unary()));
    }
    if (is_punct("*")) {
      lex_.take();
      return make_deref(RW_TRY(parse_unary()));
    }
    if (is_punct("&")) {
      lex_.take();
      return make_addrof(RW_TRY(parse_unary()));
    }
    return parse_postfix();
  }

  Result<ExprPtr> parse_postfix() {
    ExprPtr e = RW_TRY(parse_primary());
    while (lex_.peek().kind == Tok::kLBracket) {
      lex_.take();
      ExprPtr idx = RW_TRY(parse_expr());
      RW_TRY_STATUS(expect(Tok::kRBracket, "']'"));
      e = make_index(std::move(e), std::move(idx));
    }
    return e;
  }

  Result<ExprPtr> parse_primary() {
    const Token t = lex_.peek();
    if (t.kind == Tok::kNumber) {
      lex_.take();
      return make_int(t.number);
    }
    if (t.kind == Tok::kIdent) {
      lex_.take();
      if (lex_.peek().kind == Tok::kLParen) {
        lex_.take();
        std::vector<ExprPtr> args;
        if (lex_.peek().kind != Tok::kRParen) {
          for (;;) {
            args.push_back(RW_TRY(parse_expr()));
            if (lex_.peek().kind != Tok::kComma) break;
            lex_.take();
          }
        }
        RW_TRY_STATUS(expect(Tok::kRParen, "')'"));
        return make_call(t.text, std::move(args));
      }
      return make_ident(t.text);
    }
    if (t.kind == Tok::kLParen) {
      lex_.take();
      ExprPtr e = RW_TRY(parse_expr());
      RW_TRY_STATUS(expect(Tok::kRParen, "')'"));
      return e;
    }
    return err("expected expression");
  }

  Lexer lex_;
};

}  // namespace

Result<Program> parse_program(std::string_view source) {
  return Parser(source).parse();
}

Result<ExprPtr> parse_expression(std::string_view source) {
  return Parser(source).parse_single_expression();
}

}  // namespace rw::recoder
