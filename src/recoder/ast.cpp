#include "recoder/ast.hpp"

namespace rw::recoder {

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->value = value;
  e->name = name;
  e->op = op;
  e->kids.reserve(kids.size());
  for (const auto& k : kids) e->kids.push_back(k->clone());
  return e;
}

bool Expr::equals(const Expr& other) const {
  if (kind != other.kind || value != other.value || name != other.name ||
      op != other.op || kids.size() != other.kids.size())
    return false;
  for (std::size_t i = 0; i < kids.size(); ++i)
    if (!kids[i]->equals(*other.kids[i])) return false;
  return true;
}

ExprPtr make_int(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->value = v;
  return e;
}

ExprPtr make_ident(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIdent;
  e->name = std::move(name);
  return e;
}

ExprPtr make_binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->kids.push_back(std::move(lhs));
  e->kids.push_back(std::move(rhs));
  return e;
}

ExprPtr make_unary(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->op = std::move(op);
  e->kids.push_back(std::move(operand));
  return e;
}

ExprPtr make_index(ExprPtr base, ExprPtr index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIndex;
  e->kids.push_back(std::move(base));
  e->kids.push_back(std::move(index));
  return e;
}

ExprPtr make_deref(ExprPtr ptr) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kDeref;
  e->kids.push_back(std::move(ptr));
  return e;
}

ExprPtr make_addrof(ExprPtr lv) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAddrOf;
  e->kids.push_back(std::move(lv));
  return e;
}

ExprPtr make_call(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->name = std::move(name);
  e->kids = std::move(args);
  return e;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->name = name;
  s->is_array = is_array;
  s->array_size = array_size;
  s->is_pointer = is_pointer;
  if (expr) s->expr = expr->clone();
  if (lhs) s->lhs = lhs->clone();
  if (init) s->init = init->clone();
  if (step) s->step = step->clone();
  s->body = clone_body(body);
  s->orelse = clone_body(orelse);
  return s;
}

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body) {
  std::vector<StmtPtr> out;
  out.reserve(body.size());
  for (const auto& s : body) out.push_back(s->clone());
  return out;
}

StmtPtr make_decl(std::string name, ExprPtr init) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kDecl;
  s->name = std::move(name);
  s->expr = std::move(init);
  return s;
}

StmtPtr make_array_decl(std::string name, std::int64_t size) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kDecl;
  s->name = std::move(name);
  s->is_array = true;
  s->array_size = size;
  return s;
}

StmtPtr make_pointer_decl(std::string name, ExprPtr init) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kDecl;
  s->name = std::move(name);
  s->is_pointer = true;
  s->expr = std::move(init);
  return s;
}

StmtPtr make_assign(ExprPtr lhs, ExprPtr rhs) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kAssign;
  s->lhs = std::move(lhs);
  s->expr = std::move(rhs);
  return s;
}

StmtPtr make_expr_stmt(ExprPtr e) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kExprStmt;
  s->expr = std::move(e);
  return s;
}

StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kIf;
  s->expr = std::move(cond);
  s->body = std::move(then_body);
  s->orelse = std::move(else_body);
  return s;
}

StmtPtr make_for(StmtPtr init, ExprPtr cond, StmtPtr step,
                 std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kFor;
  s->init = std::move(init);
  s->expr = std::move(cond);
  s->step = std::move(step);
  s->body = std::move(body);
  return s;
}

StmtPtr make_while(ExprPtr cond, std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kWhile;
  s->expr = std::move(cond);
  s->body = std::move(body);
  return s;
}

StmtPtr make_return(ExprPtr e) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kReturn;
  s->expr = std::move(e);
  return s;
}

StmtPtr make_block(std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kBlock;
  s->body = std::move(body);
  return s;
}

Function Function::clone() const {
  Function f;
  f.name = name;
  f.returns_value = returns_value;
  f.params = params;
  f.body = clone_body(body);
  return f;
}

Program Program::clone() const {
  Program p;
  p.globals = clone_body(globals);
  p.functions.reserve(functions.size());
  for (const auto& f : functions) p.functions.push_back(f.clone());
  return p;
}

Function* Program::find_function(const std::string& name) {
  for (auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

const Function* Program::find_function(const std::string& name) const {
  for (const auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

void for_each_stmt(std::vector<StmtPtr>& body,
                   const std::function<void(Stmt&)>& fn) {
  for (auto& sp : body) {
    Stmt& s = *sp;
    fn(s);
    if (s.init) fn(*s.init);
    if (s.step) fn(*s.step);
    for_each_stmt(s.body, fn);
    for_each_stmt(s.orelse, fn);
  }
}

void for_each_expr_in_expr(Expr& e, const std::function<void(Expr&)>& fn) {
  fn(e);
  for (auto& k : e.kids) for_each_expr_in_expr(*k, fn);
}

void for_each_expr(Stmt& s, const std::function<void(Expr&)>& fn) {
  if (s.expr) for_each_expr_in_expr(*s.expr, fn);
  if (s.lhs) for_each_expr_in_expr(*s.lhs, fn);
}

}  // namespace rw::recoder
