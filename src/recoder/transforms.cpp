#include "recoder/transforms.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "recoder/analysis.hpp"

namespace rw::recoder {
namespace {

/// Indices of top-level for-loops in a function body.
std::vector<std::size_t> top_level_loops(const Function& f) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < f.body.size(); ++i)
    if (f.body[i]->kind == StmtKind::kFor) out.push_back(i);
  return out;
}

ExprPtr make_loop_index(const std::string& var, std::int64_t offset) {
  if (offset == 0) return make_ident(var);
  return make_binary("-", make_ident(var), make_int(offset));
}

/// Replace, in-place, every subexpression matching `match` with the result
/// of `build` (applied bottom-up).
void rewrite_exprs(ExprPtr& e,
                   const std::function<bool(const Expr&)>& match,
                   const std::function<ExprPtr(const Expr&)>& build) {
  for (auto& k : e->kids) rewrite_exprs(k, match, build);
  if (match(*e)) e = build(*e);
}

void rewrite_stmt_exprs(Stmt& s,
                        const std::function<bool(const Expr&)>& match,
                        const std::function<ExprPtr(const Expr&)>& build) {
  if (s.expr) rewrite_exprs(s.expr, match, build);
  if (s.lhs) rewrite_exprs(s.lhs, match, build);
  if (s.init) rewrite_stmt_exprs(*s.init, match, build);
  if (s.step) rewrite_stmt_exprs(*s.step, match, build);
  for (auto& c : s.body) rewrite_stmt_exprs(*c, match, build);
  for (auto& c : s.orelse) rewrite_stmt_exprs(*c, match, build);
}

bool body_mentions(const std::vector<StmtPtr>& body,
                   const std::string& name) {
  const VarUse u = body_uses(body);
  return u.reads.count(name) || u.writes.count(name);
}

StmtPtr make_canonical_for(const std::string& var, std::int64_t lo,
                           std::int64_t hi, std::vector<StmtPtr> body) {
  return make_for(make_decl(var, make_int(lo)),
                  make_binary("<", make_ident(var), make_int(hi)),
                  make_assign(make_ident(var),
                              make_binary("+", make_ident(var), make_int(1))),
                  std::move(body));
}

}  // namespace

// ------------------------------------------------------------- split_loop

Status split_loop(Function& f, std::size_t loop_index, std::size_t parts) {
  if (parts < 2) return make_error("split_loop: parts must be >= 2");
  const auto loops = top_level_loops(f);
  if (loop_index >= loops.size())
    return make_error("split_loop: function '" + f.name + "' has only " +
                      std::to_string(loops.size()) + " top-level loops");
  const std::size_t pos = loops[loop_index];
  Stmt& loop = *f.body[pos];
  const auto cl = canonical_loop(loop);
  if (!cl)
    return make_error("split_loop: loop is not canonical "
                      "(for (i = lit; i < lit; i = i + 1))");
  if (!loop_is_data_parallel(loop))
    return make_error("split_loop: loop carries a dependence between "
                      "iterations; designer must restructure first");
  const std::int64_t n = cl->upper - cl->lower;
  if (n < static_cast<std::int64_t>(parts))
    return make_error("split_loop: fewer iterations than parts");

  const std::int64_t chunk =
      (n + static_cast<std::int64_t>(parts) - 1) /
      static_cast<std::int64_t>(parts);
  std::vector<StmtPtr> replacement;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::int64_t lo = cl->lower + static_cast<std::int64_t>(p) * chunk;
    const std::int64_t hi = std::min<std::int64_t>(lo + chunk, cl->upper);
    if (lo >= hi) break;
    replacement.push_back(
        make_canonical_for(cl->var, lo, hi, clone_body(loop.body)));
  }
  f.body.erase(f.body.begin() + static_cast<std::ptrdiff_t>(pos));
  for (std::size_t i = 0; i < replacement.size(); ++i)
    f.body.insert(f.body.begin() + static_cast<std::ptrdiff_t>(pos + i),
                  std::move(replacement[i]));
  return Status::ok_status();
}

// ----------------------------------------------------------- split_vector

Status split_vector(Program& prog, Function& f, const std::string& name,
                    std::size_t parts) {
  if (parts < 2) return make_error("split_vector: parts must be >= 2");
  // Locate the global array declaration.
  std::size_t decl_pos = SIZE_MAX;
  for (std::size_t i = 0; i < prog.globals.size(); ++i)
    if (prog.globals[i]->name == name && prog.globals[i]->is_array)
      decl_pos = i;
  if (decl_pos == SIZE_MAX)
    return make_error("split_vector: no global array '" + name + "'");
  const std::int64_t n = prog.globals[decl_pos]->array_size;
  const std::int64_t chunk = (n + static_cast<std::int64_t>(parts) - 1) /
                             static_cast<std::int64_t>(parts);

  // The array must be used only inside this function.
  for (const auto& fn : prog.functions) {
    if (fn.name == f.name) continue;
    if (body_mentions(fn.body, name))
      return make_error("split_vector: '" + name + "' is also used in '" +
                        fn.name + "'");
  }

  // Every top-level statement of f that touches the array must be a
  // canonical loop confined to one partition, accessing name[loop_var].
  struct LoopPlan {
    Stmt* loop;
    std::string var;
    std::int64_t partition;
  };
  std::vector<LoopPlan> plans;
  for (auto& sp : f.body) {
    Stmt& s = *sp;
    const VarUse u = stmt_uses(s);
    if (!u.reads.count(name) && !u.writes.count(name)) continue;
    const auto cl = canonical_loop(s);
    if (!cl)
      return make_error("split_vector: a non-canonical statement uses '" +
                        name + "'; split the loop first");
    if (!array_accessed_only_at(s.body, name, cl->var))
      return make_error("split_vector: '" + name +
                        "' is indexed by something other than the loop "
                        "variable");
    const std::int64_t p_lo = cl->lower / chunk;
    const std::int64_t p_hi = (cl->upper - 1) / chunk;
    if (p_lo != p_hi)
      return make_error("split_vector: loop range [" +
                        std::to_string(cl->lower) + "," +
                        std::to_string(cl->upper) +
                        ") spans multiple partitions; split_loop into "
                        "matching parts first");
    plans.push_back(LoopPlan{&s, cl->var, p_lo});
  }
  if (plans.empty())
    return make_error("split_vector: '" + name + "' is never accessed in '" +
                      f.name + "'");

  // Rewrite accesses per plan.
  for (const auto& plan : plans) {
    const std::string part_name =
        name + "_" + std::to_string(plan.partition);
    const std::int64_t offset = plan.partition * chunk;
    rewrite_stmt_exprs(
        *plan.loop,
        [&](const Expr& e) {
          return e.kind == ExprKind::kIndex &&
                 e.kids[0]->kind == ExprKind::kIdent &&
                 e.kids[0]->name == name;
        },
        [&](const Expr& e) {
          (void)e;
          return make_index(make_ident(part_name),
                            make_loop_index(plan.var, offset));
        });
  }

  // Replace the declaration with the partition declarations.
  prog.globals.erase(prog.globals.begin() +
                     static_cast<std::ptrdiff_t>(decl_pos));
  for (std::size_t p = 0; p < parts; ++p) {
    const std::int64_t lo = static_cast<std::int64_t>(p) * chunk;
    const std::int64_t size = std::min<std::int64_t>(chunk, n - lo);
    if (size <= 0) break;
    prog.globals.insert(
        prog.globals.begin() + static_cast<std::ptrdiff_t>(decl_pos + p),
        make_array_decl(name + "_" + std::to_string(p), size));
  }
  return Status::ok_status();
}

// ------------------------------------------------------ localize_variable

Status localize_variable(Function& f, const std::string& name) {
  // Find the function-level scalar declaration.
  std::size_t decl_pos = SIZE_MAX;
  for (std::size_t i = 0; i < f.body.size(); ++i) {
    const Stmt& s = *f.body[i];
    if (s.kind == StmtKind::kDecl && s.name == name) {
      if (s.is_array || s.is_pointer)
        return make_error("localize_variable: '" + name +
                          "' is not a scalar");
      decl_pos = i;
      break;
    }
  }
  if (decl_pos == SIZE_MAX)
    return make_error("localize_variable: no function-level declaration "
                      "of '" + name + "'");

  // Every other top-level use must be a loop where the variable is written
  // before it is read (no value flows in or across iterations).
  std::vector<Stmt*> users;
  for (std::size_t i = 0; i < f.body.size(); ++i) {
    if (i == decl_pos) continue;
    Stmt& s = *f.body[i];
    const VarUse u = stmt_uses(s);
    if (!u.reads.count(name) && !u.writes.count(name)) continue;
    if (s.kind != StmtKind::kFor)
      return make_error("localize_variable: '" + name +
                        "' is used outside a loop");
    // First body statement touching the variable must be a plain write
    // whose right-hand side does not read it.
    bool write_first = false;
    for (const auto& bs : s.body) {
      const VarUse bu = stmt_uses(*bs);
      const bool reads = bu.reads.count(name) > 0;
      const bool writes = bu.writes.count(name) > 0;
      if (!reads && !writes) continue;
      write_first = writes && !reads &&
                    bs->kind == StmtKind::kAssign &&
                    bs->lhs->kind == ExprKind::kIdent;
      break;
    }
    if (!write_first)
      return make_error("localize_variable: '" + name +
                        "' may carry a value into the loop; cannot "
                        "localize safely");
    users.push_back(&s);
  }
  if (f.body[decl_pos]->expr)
    return make_error("localize_variable: declaration has an initializer "
                      "whose value might be used");

  // Do it: drop the outer decl, declare at the top of each using loop.
  f.body.erase(f.body.begin() + static_cast<std::ptrdiff_t>(decl_pos));
  for (Stmt* loop : users)
    loop->body.insert(loop->body.begin(), make_decl(name));
  return Status::ok_status();
}

// --------------------------------------------------------- insert_channel

Status insert_channel(Program& prog, Function& f, const std::string& name,
                      std::int64_t channel_id) {
  // Find the array declaration (global or function top-level).
  auto find_decl = [&]() -> std::pair<std::vector<StmtPtr>*, std::size_t> {
    for (std::size_t i = 0; i < prog.globals.size(); ++i)
      if (prog.globals[i]->name == name && prog.globals[i]->is_array)
        return {&prog.globals, i};
    for (std::size_t i = 0; i < f.body.size(); ++i)
      if (f.body[i]->kind == StmtKind::kDecl && f.body[i]->name == name &&
          f.body[i]->is_array)
        return {&f.body, i};
    return {nullptr, 0};
  };
  const auto [decl_vec, decl_pos] = find_decl();
  if (!decl_vec)
    return make_error("insert_channel: no array declaration '" + name +
                      "'");

  // Producer: the unique top-level loop writing name[...]; consumer: the
  // unique later loop reading it.
  Stmt* producer = nullptr;
  Stmt* consumer = nullptr;
  std::size_t producer_pos = 0;
  for (std::size_t i = 0; i < f.body.size(); ++i) {
    Stmt& s = *f.body[i];
    if (s.kind != StmtKind::kFor) {
      const VarUse u = stmt_uses(s);
      if (u.reads.count(name) || u.writes.count(name))
        return make_error("insert_channel: '" + name +
                          "' used outside a loop");
      continue;
    }
    const VarUse u = body_uses(s.body);
    const bool writes = u.writes.count(name) > 0;
    const bool reads = u.reads.count(name) > 0;
    if (writes && reads)
      return make_error("insert_channel: a loop both reads and writes '" +
                        name + "'");
    if (writes) {
      if (producer)
        return make_error("insert_channel: multiple producer loops");
      producer = &s;
      producer_pos = i;
    } else if (reads) {
      if (consumer)
        return make_error("insert_channel: multiple consumer loops");
      if (!producer || i < producer_pos)
        return make_error("insert_channel: consumer precedes producer");
      consumer = &s;
    }
  }
  if (!producer || !consumer)
    return make_error("insert_channel: need one producer and one consumer "
                      "loop for '" + name + "'");

  const auto pcl = canonical_loop(*producer);
  const auto ccl = canonical_loop(*consumer);
  if (!pcl || !ccl)
    return make_error("insert_channel: loops must be canonical");
  if (pcl->lower != ccl->lower || pcl->upper != ccl->upper)
    return make_error("insert_channel: producer and consumer ranges differ");
  if (!array_accessed_only_at(producer->body, name, pcl->var) ||
      !array_accessed_only_at(consumer->body, name, ccl->var))
    return make_error("insert_channel: '" + name +
                      "' must be accessed exactly at the loop variable");

  // Producer: exactly one `name[i] = rhs;` statement, and `name` must not
  // appear in the rhs (already excluded by the read/write split above).
  Stmt* write_stmt = nullptr;
  for (auto& bs : producer->body) {
    if (bs->kind == StmtKind::kAssign && bs->lhs->kind == ExprKind::kIndex &&
        bs->lhs->kids[0]->kind == ExprKind::kIdent &&
        bs->lhs->kids[0]->name == name) {
      if (write_stmt)
        return make_error("insert_channel: multiple writes per iteration");
      write_stmt = bs.get();
    }
  }
  if (!write_stmt)
    return make_error("insert_channel: producer write is not a top-level "
                      "statement of the loop body");

  // Transform the producer write into a send.
  {
    std::vector<ExprPtr> args;
    args.push_back(make_int(channel_id));
    args.push_back(std::move(write_stmt->expr));
    write_stmt->kind = StmtKind::kExprStmt;
    write_stmt->lhs.reset();
    write_stmt->expr = make_call("chan_send", std::move(args));
  }

  // Transform the consumer: one recv into a temp, all reads become the
  // temp.
  const std::string temp = "__" + name + "_tok";
  consumer->body.insert(
      consumer->body.begin(),
      make_decl(temp, make_call("chan_recv", [&] {
                  std::vector<ExprPtr> a;
                  a.push_back(make_int(channel_id));
                  return a;
                }())));
  rewrite_stmt_exprs(
      *consumer,
      [&](const Expr& e) {
        return e.kind == ExprKind::kIndex &&
               e.kids[0]->kind == ExprKind::kIdent &&
               e.kids[0]->name == name;
      },
      [&](const Expr&) { return make_ident(temp); });

  // Drop the array.
  decl_vec->erase(decl_vec->begin() +
                  static_cast<std::ptrdiff_t>(decl_pos));
  return Status::ok_status();
}

// ------------------------------------------------------- pointer_to_index

Status pointer_to_index(Function& f) {
  // Collect rewritable pointers: declared with init `&arr[expr]` or `arr`,
  // never reassigned, never address-taken, never passed to a call.
  struct PtrInfo {
    std::string base;
    ExprPtr offset;  // may be null (offset 0)
    std::vector<StmtPtr>* owner = nullptr;
    std::size_t pos = 0;
  };
  std::map<std::string, PtrInfo> ptrs;

  std::function<void(std::vector<StmtPtr>&)> collect =
      [&](std::vector<StmtPtr>& body) {
        for (std::size_t i = 0; i < body.size(); ++i) {
          Stmt& s = *body[i];
          if (s.kind == StmtKind::kDecl && s.is_pointer && s.expr) {
            const Expr& init = *s.expr;
            if (init.kind == ExprKind::kAddrOf &&
                init.kids[0]->kind == ExprKind::kIndex &&
                init.kids[0]->kids[0]->kind == ExprKind::kIdent) {
              PtrInfo info;
              info.base = init.kids[0]->kids[0]->name;
              info.offset = init.kids[0]->kids[1]->clone();
              info.owner = &body;
              info.pos = i;
              ptrs[s.name] = std::move(info);
            } else if (init.kind == ExprKind::kIdent) {
              PtrInfo info;
              info.base = init.name;
              info.owner = &body;
              info.pos = i;
              ptrs[s.name] = std::move(info);
            }
          }
          collect(s.body);
          collect(s.orelse);
        }
      };
  collect(f.body);

  if (ptrs.empty()) {
    if (uses_pointers(f))
      return make_error("pointer_to_index: pointers present but none match "
                        "the recodable pattern (int *p = &a[c] / = a)");
    return Status::ok_status();  // nothing to do
  }

  // Reject pointers that are reassigned, address-taken or escape.
  std::set<std::string> bad;
  std::function<void(const Stmt&)> verify = [&](const Stmt& s) {
    if (s.kind == StmtKind::kAssign && s.lhs->kind == ExprKind::kIdent &&
        ptrs.count(s.lhs->name))
      bad.insert(s.lhs->name);
    auto check_expr = [&](const Expr& root) {
      std::function<void(const Expr&)> ve = [&](const Expr& e) {
        if (e.kind == ExprKind::kAddrOf &&
            e.kids[0]->kind == ExprKind::kIdent &&
            ptrs.count(e.kids[0]->name))
          bad.insert(e.kids[0]->name);
        if (e.kind == ExprKind::kCall)
          for (const auto& a : e.kids)
            if (a->kind == ExprKind::kIdent && ptrs.count(a->name))
              bad.insert(a->name);
        for (const auto& k : e.kids) ve(*k);
      };
      ve(root);
    };
    if (s.expr) check_expr(*s.expr);
    if (s.lhs) check_expr(*s.lhs);
    if (s.init) verify(*s.init);
    if (s.step) verify(*s.step);
    for (const auto& c : s.body) verify(*c);
    for (const auto& c : s.orelse) verify(*c);
  };
  for (const auto& s : f.body) verify(*s);
  for (const auto& b : bad) ptrs.erase(b);
  if (ptrs.empty())
    return make_error("pointer_to_index: every candidate pointer is "
                      "reassigned or escapes; designer must recode "
                      "manually");

  auto base_index = [&](const PtrInfo& info, ExprPtr extra) -> ExprPtr {
    ExprPtr off = info.offset ? info.offset->clone() : nullptr;
    // A literal zero offset contributes nothing; dropping it keeps the
    // rewritten index in the canonical a[i] shape other transformations
    // (split_vector, split_loop) recognize.
    if (off && off->kind == ExprKind::kIntLit && off->value == 0)
      off = nullptr;
    if (extra && extra->kind == ExprKind::kIntLit && extra->value == 0)
      extra = nullptr;
    ExprPtr idx;
    if (off && extra) {
      idx = make_binary("+", std::move(off), std::move(extra));
    } else if (off) {
      idx = std::move(off);
    } else if (extra) {
      idx = std::move(extra);
    } else {
      idx = make_int(0);
    }
    return make_index(make_ident(info.base), std::move(idx));
  };

  // Rewrite all uses: *(p), *(p+e), *(p-e), p[e].
  auto match = [&](const Expr& e) {
    if (e.kind == ExprKind::kDeref) {
      const Expr& t = *e.kids[0];
      if (t.kind == ExprKind::kIdent && ptrs.count(t.name)) return true;
      if (t.kind == ExprKind::kBinary && (t.op == "+" || t.op == "-") &&
          t.kids[0]->kind == ExprKind::kIdent &&
          ptrs.count(t.kids[0]->name))
        return true;
      return false;
    }
    if (e.kind == ExprKind::kIndex && e.kids[0]->kind == ExprKind::kIdent &&
        ptrs.count(e.kids[0]->name))
      return true;
    return false;
  };
  auto build = [&](const Expr& e) -> ExprPtr {
    if (e.kind == ExprKind::kDeref) {
      const Expr& t = *e.kids[0];
      if (t.kind == ExprKind::kIdent)
        return base_index(ptrs.at(t.name), nullptr);
      ExprPtr extra = t.kids[1]->clone();
      if (t.op == "-") extra = make_unary("-", std::move(extra));
      return base_index(ptrs.at(t.kids[0]->name), std::move(extra));
    }
    return base_index(ptrs.at(e.kids[0]->name), e.kids[1]->clone());
  };
  std::function<void(Stmt&)> rw = [&](Stmt& s) {
    rewrite_stmt_exprs(s, match, build);
  };
  for (auto& s : f.body) rw(*s);

  // Remove the now-dead pointer declarations (walk again, erase by name).
  std::function<void(std::vector<StmtPtr>&)> erase_decls =
      [&](std::vector<StmtPtr>& body) {
        for (std::size_t i = 0; i < body.size();) {
          Stmt& s = *body[i];
          if (s.kind == StmtKind::kDecl && s.is_pointer &&
              ptrs.count(s.name)) {
            body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
            continue;
          }
          erase_decls(s.body);
          erase_decls(s.orelse);
          ++i;
        }
      };
  erase_decls(f.body);
  return Status::ok_status();
}

// ---------------------------------------------------------- prune_control

namespace {

bool expr_has_call(const Expr& e) {
  if (e.kind == ExprKind::kCall) return true;
  for (const auto& k : e.kids)
    if (expr_has_call(*k)) return true;
  return false;
}

void fold_expr(ExprPtr& e) {
  for (auto& k : e->kids) fold_expr(k);
  if (e->kind == ExprKind::kBinary &&
      e->kids[0]->kind == ExprKind::kIntLit &&
      e->kids[1]->kind == ExprKind::kIntLit) {
    const std::int64_t a = e->kids[0]->value;
    const std::int64_t b = e->kids[1]->value;
    std::int64_t v = 0;
    bool ok = true;
    if (e->op == "+") v = a + b;
    else if (e->op == "-") v = a - b;
    else if (e->op == "*") v = a * b;
    else if (e->op == "/" && b != 0) v = a / b;
    else if (e->op == "%" && b != 0) v = a % b;
    else if (e->op == "==") v = a == b;
    else if (e->op == "!=") v = a != b;
    else if (e->op == "<") v = a < b;
    else if (e->op == "<=") v = a <= b;
    else if (e->op == ">") v = a > b;
    else if (e->op == ">=") v = a >= b;
    else if (e->op == "&&") v = a != 0 && b != 0;
    else if (e->op == "||") v = a != 0 || b != 0;
    else ok = false;
    if (ok) e = make_int(v);
  } else if (e->kind == ExprKind::kUnary &&
             e->kids[0]->kind == ExprKind::kIntLit) {
    if (e->op == "-") e = make_int(-e->kids[0]->value);
    else if (e->op == "!") e = make_int(e->kids[0]->value == 0);
  }
}

void prune_body(std::vector<StmtPtr>& body) {
  for (std::size_t i = 0; i < body.size();) {
    Stmt& s = *body[i];
    if (s.expr) fold_expr(s.expr);
    if (s.lhs) fold_expr(s.lhs);
    prune_body(s.body);
    prune_body(s.orelse);
    if (s.init && s.init->expr) fold_expr(s.init->expr);
    if (s.step && s.step->expr) fold_expr(s.step->expr);

    if (s.kind == StmtKind::kIf && s.expr->kind == ExprKind::kIntLit) {
      // Constant condition: splice the live branch.
      std::vector<StmtPtr> live =
          s.expr->value != 0 ? std::move(s.body) : std::move(s.orelse);
      body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
      for (std::size_t j = 0; j < live.size(); ++j)
        body.insert(body.begin() + static_cast<std::ptrdiff_t>(i + j),
                    std::move(live[j]));
      continue;  // revisit position i
    }
    if (s.kind == StmtKind::kIf && s.body.empty() && s.orelse.empty() &&
        !expr_has_call(*s.expr)) {
      body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (s.kind == StmtKind::kWhile && s.expr->kind == ExprKind::kIntLit &&
        s.expr->value == 0) {
      body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (s.kind == StmtKind::kBlock) {
      // Flatten blocks that declare nothing (no scoping consequence).
      bool has_decl = false;
      for (const auto& c : s.body)
        if (c->kind == StmtKind::kDecl) has_decl = true;
      if (!has_decl) {
        std::vector<StmtPtr> inner = std::move(s.body);
        body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
        for (std::size_t j = 0; j < inner.size(); ++j)
          body.insert(body.begin() + static_cast<std::ptrdiff_t>(i + j),
                      std::move(inner[j]));
        continue;
      }
    }
    ++i;
  }
}

std::size_t count_fn_nodes(const Function& f) {
  Program tmp;
  tmp.functions.push_back(f.clone());
  return count_nodes(tmp);
}

}  // namespace

Status prune_control(Function& f, std::size_t* removed) {
  const std::size_t before = count_fn_nodes(f);
  prune_body(f.body);
  if (removed) {
    const std::size_t after = count_fn_nodes(f);
    *removed = before > after ? before - after : 0;
  }
  return Status::ok_status();
}

// ----------------------------------------------------- outline_statements

Status outline_statements(Program& prog, Function& f, std::size_t from,
                          std::size_t to, const std::string& new_name) {
  if (from >= to || to > f.body.size())
    return make_error("outline_statements: bad range");
  if (prog.find_function(new_name))
    return make_error("outline_statements: function '" + new_name +
                      "' already exists");

  // Region analysis.
  std::vector<StmtPtr> region;
  VarUse use;
  std::set<std::string> region_decls;
  std::function<void(const Stmt&)> collect_decls = [&](const Stmt& s) {
    if (s.kind == StmtKind::kDecl) region_decls.insert(s.name);
    if (s.init) collect_decls(*s.init);
    if (s.step) collect_decls(*s.step);
    for (const auto& c : s.body) collect_decls(*c);
    for (const auto& c : s.orelse) collect_decls(*c);
  };
  for (std::size_t i = from; i < to; ++i) {
    const VarUse u = stmt_uses(*f.body[i]);
    use.reads.insert(u.reads.begin(), u.reads.end());
    use.writes.insert(u.writes.begin(), u.writes.end());
    collect_decls(*f.body[i]);
  }

  std::set<std::string> globals;
  for (const auto& g : prog.globals) globals.insert(g->name);

  // Kind lookup for names declared before the region / as parameters.
  auto classify = [&](const std::string& name)
      -> std::optional<Param> {
    for (const auto& p : f.params)
      if (p.name == name) return p;
    for (std::size_t i = 0; i < from; ++i) {
      const Stmt& s = *f.body[i];
      if (s.kind == StmtKind::kDecl && s.name == name) {
        Param p;
        p.name = name;
        p.is_array = s.is_array;
        p.is_pointer = s.is_pointer;
        return p;
      }
    }
    return std::nullopt;
  };

  std::vector<Param> params;
  for (const auto& name : use.reads) {
    if (region_decls.count(name) || globals.count(name)) continue;
    if (prog.find_function(name)) continue;  // function name in a call
    const auto p = classify(name);
    if (!p)
      return make_error("outline_statements: cannot classify '" + name +
                        "' (declared after the region?)");
    params.push_back(*p);
  }
  // Written non-local scalars cannot be outlined (no out-params in mini-C).
  for (const auto& name : use.writes) {
    if (region_decls.count(name) || globals.count(name)) continue;
    const auto p = classify(name);
    if (p && !p->is_array && !p->is_pointer)
      return make_error("outline_statements: region writes scalar '" + name +
                        "' living outside it; localize it first");
    if (p && std::none_of(params.begin(), params.end(),
                          [&](const Param& q) { return q.name == name; }))
      params.push_back(*p);
  }
  std::sort(params.begin(), params.end(),
            [](const Param& a, const Param& b) { return a.name < b.name; });

  // Build the new function.
  Function out;
  out.name = new_name;
  out.returns_value = false;
  out.params = params;
  for (std::size_t i = from; i < to; ++i)
    out.body.push_back(std::move(f.body[i]));
  f.body.erase(f.body.begin() + static_cast<std::ptrdiff_t>(from),
               f.body.begin() + static_cast<std::ptrdiff_t>(to));

  std::vector<ExprPtr> args;
  for (const auto& p : params) args.push_back(make_ident(p.name));
  f.body.insert(f.body.begin() + static_cast<std::ptrdiff_t>(from),
                make_expr_stmt(make_call(new_name, std::move(args))));
  prog.functions.push_back(std::move(out));
  return Status::ok_status();
}

// -------------------------------------------------------- distribute_loop

Status distribute_loop(Function& f, std::size_t loop_index) {
  const auto loops = top_level_loops(f);
  if (loop_index >= loops.size())
    return make_error("distribute_loop: no such loop");
  const std::size_t pos = loops[loop_index];
  Stmt& loop = *f.body[pos];
  const auto cl = canonical_loop(loop);
  if (!cl) return make_error("distribute_loop: loop is not canonical");

  // Body must be declarations (all leading) followed by assignments, so
  // that hoisting the declaration initializers ahead of the assignments
  // preserves order.
  std::vector<const Stmt*> decls;
  std::vector<const Stmt*> assigns;
  for (const auto& bs : loop.body) {
    if (bs->kind == StmtKind::kDecl && !bs->is_array && !bs->is_pointer) {
      if (!assigns.empty())
        return make_error("distribute_loop: declarations must precede all "
                          "assignments in the loop body");
      decls.push_back(bs.get());
    } else if (bs->kind == StmtKind::kAssign) {
      assigns.push_back(bs.get());
    } else {
      return make_error("distribute_loop: body must contain only scalar "
                        "declarations and assignments");
    }
  }
  if (assigns.size() < 2)
    return make_error("distribute_loop: nothing to distribute");

  // No backward dependences: a statement may only read names written by
  // earlier statements (or loop-local scalars after their write).
  std::set<std::string> local;
  for (const auto* d : decls) local.insert(d->name);
  std::set<std::string> written_so_far;
  // Declaration initializers run (as hoisted stages) before every assign.
  for (const auto* d : decls)
    if (d->expr) written_so_far.insert(d->name);
  for (const auto* a : assigns) {
    const VarUse u = stmt_uses(*a);
    for (const auto& r : u.reads) {
      if (!local.count(r)) continue;
      if (!written_so_far.count(r))
        return make_error("distribute_loop: '" + r +
                          "' is read before it is written in the "
                          "iteration (loop-carried)");
    }
    for (const auto& w : u.writes) written_so_far.insert(w);
    // Arrays must be disciplined for legality of distribution.
    for (const auto& w : u.writes) {
      if (local.count(w)) continue;
      if (!array_accessed_only_at(loop.body, w, cl->var))
        return make_error("distribute_loop: array '" + w +
                          "' indexed beyond the loop variable");
    }
  }

  const std::int64_t n = cl->upper - cl->lower;

  // Scalar expansion: each loop-local scalar becomes an array indexed by
  // the (shifted) loop variable.
  std::vector<StmtPtr> expansion_decls;
  for (const auto* d : decls) {
    const std::string arr = d->name + "_x";
    expansion_decls.push_back(make_array_decl(arr, n));
  }

  auto expand = [&](StmtPtr stmt) {
    for (const auto* d : decls) {
      const std::string scalar = d->name;
      const std::string arr = scalar + "_x";
      rewrite_stmt_exprs(
          *stmt,
          [&](const Expr& e) {
            return e.kind == ExprKind::kIdent && e.name == scalar;
          },
          [&](const Expr&) {
            return make_index(make_ident(arr),
                              make_loop_index(cl->var, cl->lower));
          });
      if (stmt->lhs && stmt->lhs->kind == ExprKind::kIdent &&
          stmt->lhs->name == scalar)
        stmt->lhs = make_index(make_ident(arr),
                               make_loop_index(cl->var, cl->lower));
    }
    return stmt;
  };

  // Handle declaration initializers: they become the first assignments.
  std::vector<StmtPtr> stage_stmts;
  for (const auto* d : decls) {
    if (!d->expr) continue;
    stage_stmts.push_back(expand(
        make_assign(make_ident(d->name), d->expr->clone())));
  }
  for (const auto* a : assigns) stage_stmts.push_back(expand(a->clone()));

  // Build the distributed loops.
  std::vector<StmtPtr> replacement = std::move(expansion_decls);
  for (auto& st : stage_stmts) {
    std::vector<StmtPtr> body;
    body.push_back(std::move(st));
    replacement.push_back(
        make_canonical_for(cl->var, cl->lower, cl->upper, std::move(body)));
  }

  f.body.erase(f.body.begin() + static_cast<std::ptrdiff_t>(pos));
  for (std::size_t i = 0; i < replacement.size(); ++i)
    f.body.insert(f.body.begin() + static_cast<std::ptrdiff_t>(pos + i),
                  std::move(replacement[i]));
  return Status::ok_status();
}

// --------------------------------------------------------- rename_variable

Status rename_variable(Program& prog, Function& f,
                       const std::string& old_name,
                       const std::string& new_name) {
  if (old_name == new_name)
    return make_error("rename_variable: names are identical");
  for (const auto& g : prog.globals)
    if (g->name == new_name)
      return make_error("rename_variable: '" + new_name +
                        "' is a global");
  const VarUse all = body_uses(f.body);
  if (all.reads.count(new_name) || all.writes.count(new_name))
    return make_error("rename_variable: '" + new_name +
                      "' already in use in '" + f.name + "'");
  for (const auto& p : f.params)
    if (p.name == new_name)
      return make_error("rename_variable: '" + new_name +
                        "' is a parameter");
  if (!all.reads.count(old_name) && !all.writes.count(old_name))
    return make_error("rename_variable: no variable '" + old_name + "'");

  std::function<void(Stmt&)> rw = [&](Stmt& s) {
    if (s.kind == StmtKind::kDecl && s.name == old_name) s.name = new_name;
    rewrite_stmt_exprs(
        s,
        [&](const Expr& e) {
          return e.kind == ExprKind::kIdent && e.name == old_name;
        },
        [&](const Expr&) { return make_ident(new_name); });
    if (s.init) rw(*s.init);
    if (s.step) rw(*s.step);
    for (auto& c : s.body) rw(*c);
    for (auto& c : s.orelse) rw(*c);
  };
  for (auto& p : f.params)
    if (p.name == old_name) p.name = new_name;
  for (auto& s : f.body) rw(*s);
  return Status::ok_status();
}

// -------------------------------------------------------------- unroll_loop

Status unroll_loop(Function& f, std::size_t loop_index,
                   std::int64_t max_trips) {
  const auto loops = top_level_loops(f);
  if (loop_index >= loops.size())
    return make_error("unroll_loop: no such loop");
  const std::size_t pos = loops[loop_index];
  Stmt& loop = *f.body[pos];
  const auto cl = canonical_loop(loop);
  if (!cl) return make_error("unroll_loop: loop is not canonical");
  const std::int64_t trips = cl->upper - cl->lower;
  if (trips <= 0) {
    f.body.erase(f.body.begin() + static_cast<std::ptrdiff_t>(pos));
    return Status::ok_status();  // zero-trip loop: just delete it
  }
  if (trips > max_trips)
    return make_error("unroll_loop: " + std::to_string(trips) +
                      " iterations exceed the limit of " +
                      std::to_string(max_trips));
  // Bodies declaring locals would collide when replicated; wrap each copy
  // in a block so scoping stays correct.
  std::vector<StmtPtr> replacement;
  for (std::int64_t i = cl->lower; i < cl->upper; ++i) {
    std::vector<StmtPtr> copy = clone_body(loop.body);
    for (auto& st : copy) {
      rewrite_stmt_exprs(
          *st,
          [&](const Expr& e) {
            return e.kind == ExprKind::kIdent && e.name == cl->var;
          },
          [&](const Expr&) { return make_int(i); });
    }
    bool has_decl = false;
    for (const auto& st : copy)
      if (st->kind == StmtKind::kDecl) has_decl = true;
    if (has_decl) {
      replacement.push_back(make_block(std::move(copy)));
    } else {
      for (auto& st : copy) replacement.push_back(std::move(st));
    }
  }
  f.body.erase(f.body.begin() + static_cast<std::ptrdiff_t>(pos));
  for (std::size_t i = 0; i < replacement.size(); ++i)
    f.body.insert(f.body.begin() + static_cast<std::ptrdiff_t>(pos + i),
                  std::move(replacement[i]));
  return Status::ok_status();
}

// -------------------------------------------------------------- fuse_loops

Status fuse_loops(Function& f, std::size_t first_loop_index) {
  const auto loops = top_level_loops(f);
  if (first_loop_index + 1 >= loops.size())
    return make_error("fuse_loops: need two consecutive loops");
  const std::size_t pos1 = loops[first_loop_index];
  const std::size_t pos2 = loops[first_loop_index + 1];
  if (pos2 != pos1 + 1)
    return make_error("fuse_loops: loops are not lexically adjacent");

  Stmt& l1 = *f.body[pos1];
  Stmt& l2 = *f.body[pos2];
  const auto c1 = canonical_loop(l1);
  const auto c2 = canonical_loop(l2);
  if (!c1 || !c2)
    return make_error("fuse_loops: both loops must be canonical");
  if (c1->lower != c2->lower || c1->upper != c2->upper)
    return make_error("fuse_loops: ranges differ ([" +
                      std::to_string(c1->lower) + "," +
                      std::to_string(c1->upper) + ") vs [" +
                      std::to_string(c2->lower) + "," +
                      std::to_string(c2->upper) + "))");

  // Every array either loop touches must be indexed exactly at its loop
  // variable; then fusing preserves the value each iteration of loop 2
  // observes (loop 1's iteration i completes before it).
  const VarUse u1 = body_uses(l1.body);
  const VarUse u2 = body_uses(l2.body);
  std::set<std::string> locals1, locals2;
  for (const auto& s : l1.body)
    if (s->kind == StmtKind::kDecl) locals1.insert(s->name);
  for (const auto& s : l2.body)
    if (s->kind == StmtKind::kDecl) locals2.insert(s->name);

  auto check_arrays = [&](const Stmt& loop, const VarUse& u,
                          const std::set<std::string>& locals,
                          const std::string& var) -> Status {
    std::set<std::string> names;
    names.insert(u.reads.begin(), u.reads.end());
    names.insert(u.writes.begin(), u.writes.end());
    for (const auto& n : names) {
      if (n == var || locals.count(n)) continue;
      // Names read-only in both loops cannot carry a reordering hazard.
      if (!u1.writes.count(n) && !u2.writes.count(n)) continue;
      // Otherwise fusion is only safe when the *other* loop also touches
      // the name and every access is index-disciplined (arrays at the
      // loop variable); anything else is conservatively refused.
      const bool other_touches = (&loop == &l1)
                                     ? (u2.reads.count(n) ||
                                        u2.writes.count(n))
                                     : (u1.reads.count(n) ||
                                        u1.writes.count(n));
      if (!other_touches) continue;
      if (!array_accessed_only_at(loop.body, n, var))
        return make_error("fuse_loops: '" + n +
                          "' is not accessed exactly at the loop variable");
    }
    return Status::ok_status();
  };
  if (auto s = check_arrays(l1, u1, locals1, c1->var); !s.ok()) return s;
  if (auto s = check_arrays(l2, u2, locals2, c2->var); !s.ok()) return s;

  // Local-name collisions are resolved by the second loop shadowing; to
  // stay conservative, refuse when both declare the same local.
  for (const auto& n : locals2)
    if (locals1.count(n))
      return make_error("fuse_loops: both loops declare local '" + n +
                        "'; rename first");

  // Rename loop 2's induction variable to loop 1's and splice bodies.
  std::vector<StmtPtr> body2 = std::move(l2.body);
  if (c2->var != c1->var) {
    for (auto& st : body2) {
      rewrite_stmt_exprs(
          *st,
          [&](const Expr& e) {
            return e.kind == ExprKind::kIdent && e.name == c2->var;
          },
          [&](const Expr&) { return make_ident(c1->var); });
      if (st->lhs && st->lhs->kind == ExprKind::kIdent &&
          st->lhs->name == c2->var)
        st->lhs = make_ident(c1->var);
    }
  }
  for (auto& st : body2) l1.body.push_back(std::move(st));
  f.body.erase(f.body.begin() + static_cast<std::ptrdiff_t>(pos2));
  return Status::ok_status();
}

}  // namespace rw::recoder
