// The interactive recoding session (Fig. 3 of the paper as code).
//
// The Source Recoder is "an intelligent union of editor, compiler, and
// transformation and analysis tools": the session holds the AST (the
// Document Object), exposes the transformation commands, regenerates
// source text after every change (Code Generator), accepts direct text
// edits (Text Editor + Parser path) and keeps a journal with undo/redo —
// the designer-controlled workflow of Sec. VI. The journal records, per
// command, the number of source lines the transformation changed: that is
// the manual-editing effort the designer was spared, which experiment E8
// aggregates into the paper's "up to two orders of magnitude" claim.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "recoder/analysis.hpp"
#include "recoder/ast.hpp"
#include "recoder/interp.hpp"
#include "recoder/parser.hpp"
#include "recoder/printer.hpp"
#include "recoder/transforms.hpp"

namespace rw::recoder {

class RecoderSession {
 public:
  explicit RecoderSession(Program p) : prog_(std::move(p)) {}

  /// Open a session from source text (the Parser path of Fig. 3).
  static Result<RecoderSession> from_source(std::string_view source);

  [[nodiscard]] const Program& program() const { return prog_; }
  /// Current source text (the Code Generator path of Fig. 3).
  [[nodiscard]] std::string source() const { return print_program(prog_); }

  // --- transformation commands (each journaled, undoable) ---
  Status cmd_split_loop(const std::string& fn, std::size_t loop,
                        std::size_t parts);
  Status cmd_split_vector(const std::string& fn, const std::string& array,
                          std::size_t parts);
  Status cmd_localize(const std::string& fn, const std::string& var);
  Status cmd_insert_channel(const std::string& fn, const std::string& array,
                            std::int64_t channel_id);
  Status cmd_pointer_to_index(const std::string& fn);
  Status cmd_prune_control(const std::string& fn);
  Status cmd_outline(const std::string& fn, std::size_t from, std::size_t to,
                     const std::string& new_name);
  Status cmd_distribute_loop(const std::string& fn, std::size_t loop);
  Status cmd_fuse_loops(const std::string& fn, std::size_t first_loop);
  Status cmd_rename(const std::string& fn, const std::string& old_name,
                    const std::string& new_name);
  Status cmd_unroll_loop(const std::string& fn, std::size_t loop);

  /// Direct text edit: replace the whole document (the designer typing);
  /// parse errors leave the session unchanged.
  Status cmd_edit_text(std::string_view new_source);

  // --- journal / undo ---
  struct JournalEntry {
    std::string command;
    bool ok = false;
    std::string message;       // error text when !ok
    std::size_t lines_changed = 0;  // manual-equivalent effort
  };
  [[nodiscard]] const std::vector<JournalEntry>& journal() const {
    return journal_;
  }
  bool undo();
  bool redo();

  /// Sum of lines_changed over successful commands — what the designer
  /// would have edited by hand.
  [[nodiscard]] std::size_t total_lines_changed() const;
  /// Number of successful designer commands.
  [[nodiscard]] std::size_t commands_applied() const;

  /// Run the current program and compare against a reference result
  /// (semantic-preservation probe the designer can invoke anytime).
  [[nodiscard]] Result<InterpResult> execute(
      const std::string& entry = "main",
      const std::vector<std::int64_t>& args = {}) const {
    return interpret(prog_, entry, args);
  }

 private:
  Status apply(std::string command,
               const std::function<Status(Program&)>& fn);
  Result<Function*> find_fn(Program& p, const std::string& name);

  Program prog_;
  std::vector<Program> undo_;
  std::vector<Program> redo_;
  std::vector<JournalEntry> journal_;
};

}  // namespace rw::recoder
