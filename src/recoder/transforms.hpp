// The recoding transformation catalog (Sec. VI).
//
// "the designer ... invokes re-coding transformations to split loops into
// code partitions, analyze shared data accesses, split vectors of shared
// data, localize variable accesses, and finally synchronize accesses to
// shared data by inserting communication channels. Further, similar code
// partitioning and data structure re-structuring transformations can be
// used to expose pipelined parallelism ... Additionally, code
// restructuring to prune the control structure of the code and pointer
// recoding to replace pointer expressions can be used to enhance the
// analyzability and synthesizability of the models."
//
// Every transformation is conservative: it verifies its safety conditions
// and returns an error (leaving the program untouched) when they do not
// hold, so the designer stays in control.
#pragma once

#include "common/result.hpp"
#include "recoder/ast.hpp"

namespace rw::recoder {

/// Split the `loop_index`-th top-level canonical for-loop of `f` into
/// `parts` consecutive loops over contiguous sub-ranges ("split loops
/// into code partitions"). Requires a data-parallel canonical loop.
Status split_loop(Function& f, std::size_t loop_index, std::size_t parts);

/// Split global array `name` (size N) into `parts` sub-arrays name_0 ..
/// name_{parts-1} and retarget every access ("split vectors of shared
/// data"). Requires every access to lie in a canonical top-level loop of
/// `f` whose range falls entirely inside one partition, indexed exactly by
/// the loop variable.
Status split_vector(Program& prog, Function& f, const std::string& name,
                    std::size_t parts);

/// Move a function-level scalar declaration into the loops that use it
/// ("localize variable accesses"). Requires the variable to carry no
/// value across loop boundaries (written before read in every using loop).
Status localize_variable(Function& f, const std::string& name);

/// Replace producer/consumer communication through array `name` with
/// chan_send/chan_recv calls on channel `channel_id` ("synchronize
/// accesses to shared data by inserting communication channels").
/// Requires one top-level loop writing name[i] and a later top-level loop
/// reading name[i], both canonical over the same range.
Status insert_channel(Program& prog, Function& f, const std::string& name,
                      std::int64_t channel_id);

/// Rewrite pointer expressions over a constant base back into array
/// indexing and drop the pointer ("pointer recoding"). Requires pointers
/// initialized to `&arr[c]` or `arr` and never reassigned.
Status pointer_to_index(Function& f);

/// Fold literal conditions, drop dead branches and empty conditionals,
/// and fold constant arithmetic ("prune the control structure").
/// Always succeeds; reports how many nodes were removed via `removed`.
Status prune_control(Function& f, std::size_t* removed = nullptr);

/// Outline statements [from, to) of `f`'s top-level body into a new
/// function `new_name` and replace them with a call. Requires all scalars
/// written by the region to be declared inside it; arrays/globals pass by
/// reference naturally.
Status outline_statements(Program& prog, Function& f, std::size_t from,
                          std::size_t to, const std::string& new_name);

/// Loop distribution ("expose pipelined parallelism"): split a canonical
/// loop whose body is a sequence of assignments into one loop per
/// statement, expanding loop-local scalars into arrays where needed.
Status distribute_loop(Function& f, std::size_t loop_index);

/// Rename every use of local variable `old_name` in `f` to `new_name`
/// (declaration included). Refuses when `new_name` is already used in the
/// function or names a global of `prog`. The unglamorous transformation
/// every interactive recoder needs (e.g. before fuse_loops on colliding
/// locals).
Status rename_variable(Program& prog, Function& f,
                       const std::string& old_name,
                       const std::string& new_name);

/// Fully unroll a canonical loop with a small literal trip count: the
/// body is replicated once per iteration with the induction variable
/// substituted by its value. Improves "static analyzability" (Sec. VI) by
/// removing the control structure entirely. Refuses trips > `max_trips`.
Status unroll_loop(Function& f, std::size_t loop_index,
                   std::int64_t max_trips = 32);

/// Loop fusion — the inverse restructuring (merge two adjacent canonical
/// loops over the same range into one). Legal when every array either
/// loop touches is indexed exactly at the loop variable (so iteration i
/// of the fused body sees exactly what iteration i of the second loop saw)
/// and the loops are lexically adjacent. Reduces loop overhead and brings
/// producer/consumer statements back together before a different split.
Status fuse_loops(Function& f, std::size_t first_loop_index);

}  // namespace rw::recoder
