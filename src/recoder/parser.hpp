// Mini-C lexer and recursive-descent parser.
//
// Grammar (the recoder's SLDL subset):
//   program   := (global_decl | function)*
//   function  := ("int" | "void") ident "(" params? ")" block
//   params    := param ("," param)*            param := "int" ["*"] ident ["[]"]
//   block     := "{" stmt* "}"
//   stmt      := decl | assign ";" | expr ";" | if | for | while
//              | return | block
//   decl      := "int" ["*"] ident ["[" int "]"] ["=" expr] ";"
//   assign    := lvalue "=" expr
//   lvalue    := ident | ident "[" expr "]" | "*" unary
//   if        := "if" "(" expr ")" block ["else" block]
//   for       := "for" "(" (decl | assign ";") expr ";" assign ")" block
//   while     := "while" "(" expr ")" block
//   return    := "return" [expr] ";"
//   expr      := precedence-climbing over || && == != < <= > >= + - * / %
//   unary     := ("-" | "!" | "*" | "&") unary | postfix
//   postfix   := primary ("[" expr "]")*
//   primary   := int | ident | ident "(" args ")" | "(" expr ")"
#pragma once

#include <string>
#include <string_view>

#include "common/result.hpp"
#include "recoder/ast.hpp"

namespace rw::recoder {

/// Parse a complete translation unit.
Result<Program> parse_program(std::string_view source);

/// Parse a single expression (used by tests and the interactive session).
Result<ExprPtr> parse_expression(std::string_view source);

}  // namespace rw::recoder
