// Shared-data access analysis report (Sec. VI).
//
// "the designer uses her/his application knowledge and invokes re-coding
// transformations to split loops into code partitions, *analyze shared
// data accesses*, split vectors of shared data, ..."
//
// This is that middle step as a queryable report: for every array, which
// top-level loops of a function read/write it, over which ranges, and
// which recoding step (if any) the evidence supports. The recoder
// presents it; the designer decides — "we rely on the designer to concur,
// augment or overrule the analysis results".
#pragma once

#include <string>
#include <vector>

#include "recoder/analysis.hpp"
#include "recoder/ast.hpp"

namespace rw::recoder {

struct ArrayAccessSite {
  std::size_t loop_index = 0;   // index among the function's top-level loops
  bool canonical = false;       // loop has for(i=lit;i<lit;i=i+1) shape
  std::int64_t lower = 0, upper = 0;  // when canonical
  bool reads = false, writes = false;
  bool index_disciplined = false;  // accessed exactly at the loop variable
};

enum class Recommendation : std::uint8_t {
  kSplittable,       // disjoint loop-local accesses: split_vector applies
  kChannelizable,    // one producer loop, one later consumer loop
  kKeepShared,       // concurrent mixed access: needs real synchronization
  kNotAnalyzable,    // used outside canonical loops / via pointers
};

const char* recommendation_name(Recommendation r);

struct ArrayReport {
  std::string array;
  std::int64_t size = 0;
  std::vector<ArrayAccessSite> sites;
  Recommendation recommendation = Recommendation::kNotAnalyzable;
};

/// Analyze every global array as used by `f`.
std::vector<ArrayReport> analyze_shared_accesses(const Program& prog,
                                                 const Function& f);

/// Human-readable rendering (what the recoder GUI pane would show).
std::string render_report(const std::vector<ArrayReport>& reports);

}  // namespace rw::recoder
