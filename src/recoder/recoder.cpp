#include "recoder/recoder.hpp"

namespace rw::recoder {

Result<RecoderSession> RecoderSession::from_source(
    std::string_view source) {
  auto p = parse_program(source);
  if (!p.ok()) return p.error();
  return RecoderSession(std::move(p).take());
}

Result<Function*> RecoderSession::find_fn(Program& p,
                                          const std::string& name) {
  Function* f = p.find_function(name);
  if (!f) return make_error("no function '" + name + "'");
  return f;
}

Status RecoderSession::apply(std::string command,
                             const std::function<Status(Program&)>& fn) {
  Program copy = prog_.clone();
  const std::string before = print_program(prog_);
  const Status s = fn(copy);
  JournalEntry entry;
  entry.command = std::move(command);
  entry.ok = s.ok();
  if (s.ok()) {
    entry.lines_changed = line_diff(before, print_program(copy));
    undo_.push_back(std::move(prog_));
    prog_ = std::move(copy);
    redo_.clear();
  } else {
    entry.message = s.error().message;
  }
  journal_.push_back(std::move(entry));
  return s;
}

Status RecoderSession::cmd_split_loop(const std::string& fn,
                                      std::size_t loop, std::size_t parts) {
  return apply(
      "split_loop " + fn + " #" + std::to_string(loop) + " x" +
          std::to_string(parts),
      [&](Program& p) -> Status {
        auto f = find_fn(p, fn);
        if (!f.ok()) return f.error();
        return split_loop(*f.value(), loop, parts);
      });
}

Status RecoderSession::cmd_split_vector(const std::string& fn,
                                        const std::string& array,
                                        std::size_t parts) {
  return apply("split_vector " + array + " x" + std::to_string(parts),
               [&](Program& p) -> Status {
                 auto f = find_fn(p, fn);
                 if (!f.ok()) return f.error();
                 return split_vector(p, *f.value(), array, parts);
               });
}

Status RecoderSession::cmd_localize(const std::string& fn,
                                    const std::string& var) {
  return apply("localize " + var, [&](Program& p) -> Status {
    auto f = find_fn(p, fn);
    if (!f.ok()) return f.error();
    return localize_variable(*f.value(), var);
  });
}

Status RecoderSession::cmd_insert_channel(const std::string& fn,
                                          const std::string& array,
                                          std::int64_t channel_id) {
  return apply("insert_channel " + array + " ch" +
                   std::to_string(channel_id),
               [&](Program& p) -> Status {
                 auto f = find_fn(p, fn);
                 if (!f.ok()) return f.error();
                 return insert_channel(p, *f.value(), array, channel_id);
               });
}

Status RecoderSession::cmd_pointer_to_index(const std::string& fn) {
  return apply("pointer_to_index " + fn, [&](Program& p) -> Status {
    auto f = find_fn(p, fn);
    if (!f.ok()) return f.error();
    return pointer_to_index(*f.value());
  });
}

Status RecoderSession::cmd_prune_control(const std::string& fn) {
  return apply("prune_control " + fn, [&](Program& p) -> Status {
    auto f = find_fn(p, fn);
    if (!f.ok()) return f.error();
    return prune_control(*f.value());
  });
}

Status RecoderSession::cmd_outline(const std::string& fn, std::size_t from,
                                   std::size_t to,
                                   const std::string& new_name) {
  return apply("outline " + fn + "[" + std::to_string(from) + "," +
                   std::to_string(to) + ") -> " + new_name,
               [&](Program& p) -> Status {
                 auto f = find_fn(p, fn);
                 if (!f.ok()) return f.error();
                 return outline_statements(p, *f.value(), from, to,
                                           new_name);
               });
}

Status RecoderSession::cmd_distribute_loop(const std::string& fn,
                                           std::size_t loop) {
  return apply("distribute_loop " + fn + " #" + std::to_string(loop),
               [&](Program& p) -> Status {
                 auto f = find_fn(p, fn);
                 if (!f.ok()) return f.error();
                 return distribute_loop(*f.value(), loop);
               });
}

Status RecoderSession::cmd_fuse_loops(const std::string& fn,
                                      std::size_t first_loop) {
  return apply("fuse_loops " + fn + " #" + std::to_string(first_loop),
               [&](Program& p) -> Status {
                 auto f = find_fn(p, fn);
                 if (!f.ok()) return f.error();
                 return fuse_loops(*f.value(), first_loop);
               });
}

Status RecoderSession::cmd_rename(const std::string& fn,
                                  const std::string& old_name,
                                  const std::string& new_name) {
  return apply("rename " + old_name + " -> " + new_name,
               [&](Program& p) -> Status {
                 auto f = find_fn(p, fn);
                 if (!f.ok()) return f.error();
                 return rename_variable(p, *f.value(), old_name, new_name);
               });
}

Status RecoderSession::cmd_unroll_loop(const std::string& fn,
                                       std::size_t loop) {
  return apply("unroll_loop " + fn + " #" + std::to_string(loop),
               [&](Program& p) -> Status {
                 auto f = find_fn(p, fn);
                 if (!f.ok()) return f.error();
                 return unroll_loop(*f.value(), loop);
               });
}

Status RecoderSession::cmd_edit_text(std::string_view new_source) {
  return apply("edit_text", [&](Program& p) -> Status {
    auto parsed = parse_program(new_source);
    if (!parsed.ok()) return parsed.error();
    p = std::move(parsed).take();
    return Status::ok_status();
  });
}

bool RecoderSession::undo() {
  if (undo_.empty()) return false;
  redo_.push_back(std::move(prog_));
  prog_ = std::move(undo_.back());
  undo_.pop_back();
  return true;
}

bool RecoderSession::redo() {
  if (redo_.empty()) return false;
  undo_.push_back(std::move(prog_));
  prog_ = std::move(redo_.back());
  redo_.pop_back();
  return true;
}

std::size_t RecoderSession::total_lines_changed() const {
  std::size_t n = 0;
  for (const auto& e : journal_)
    if (e.ok) n += e.lines_changed;
  return n;
}

std::size_t RecoderSession::commands_applied() const {
  std::size_t n = 0;
  for (const auto& e : journal_)
    if (e.ok) ++n;
  return n;
}

}  // namespace rw::recoder
