#include "recoder/shared_report.hpp"

#include "common/strings.hpp"

namespace rw::recoder {

const char* recommendation_name(Recommendation r) {
  switch (r) {
    case Recommendation::kSplittable: return "splittable";
    case Recommendation::kChannelizable: return "channelizable";
    case Recommendation::kKeepShared: return "keep-shared";
    case Recommendation::kNotAnalyzable: return "not-analyzable";
  }
  return "?";
}

std::vector<ArrayReport> analyze_shared_accesses(const Program& prog,
                                                 const Function& f) {
  std::vector<ArrayReport> out;
  for (const auto& g : prog.globals) {
    if (!g->is_array) continue;
    ArrayReport rep;
    rep.array = g->name;
    rep.size = g->array_size;

    bool outside_loops = false;
    std::size_t loop_idx = 0;
    for (const auto& sp : f.body) {
      const Stmt& s = *sp;
      const VarUse u = stmt_uses(s);
      const bool touches =
          u.reads.count(rep.array) || u.writes.count(rep.array);
      if (s.kind != StmtKind::kFor) {
        if (touches) outside_loops = true;
        continue;
      }
      if (touches) {
        ArrayAccessSite site;
        site.loop_index = loop_idx;
        const VarUse bu = body_uses(s.body);
        site.reads = bu.reads.count(rep.array) > 0;
        site.writes = bu.writes.count(rep.array) > 0;
        if (const auto cl = canonical_loop(s)) {
          site.canonical = true;
          site.lower = cl->lower;
          site.upper = cl->upper;
          site.index_disciplined =
              array_accessed_only_at(s.body, rep.array, cl->var);
        }
        rep.sites.push_back(site);
      }
      ++loop_idx;
    }

    // Classify.
    if (outside_loops || rep.sites.empty()) {
      rep.recommendation = Recommendation::kNotAnalyzable;
    } else {
      bool all_disciplined = true;
      for (const auto& s : rep.sites)
        all_disciplined &= s.canonical && s.index_disciplined;
      if (!all_disciplined) {
        rep.recommendation = Recommendation::kNotAnalyzable;
      } else if (rep.sites.size() == 2 && rep.sites[0].writes &&
                 !rep.sites[0].reads && rep.sites[1].reads &&
                 !rep.sites[1].writes &&
                 rep.sites[0].lower == rep.sites[1].lower &&
                 rep.sites[0].upper == rep.sites[1].upper) {
        rep.recommendation = Recommendation::kChannelizable;
      } else {
        // Disjoint ranges across all sites => splittable partitions.
        bool disjoint = true;
        for (std::size_t i = 0; i < rep.sites.size() && disjoint; ++i)
          for (std::size_t j = i + 1; j < rep.sites.size(); ++j) {
            const auto& a = rep.sites[i];
            const auto& b = rep.sites[j];
            if (a.lower < b.upper && b.lower < a.upper) {
              disjoint = false;
              break;
            }
          }
        rep.recommendation = disjoint ? Recommendation::kSplittable
                                      : Recommendation::kKeepShared;
      }
    }
    out.push_back(std::move(rep));
  }
  return out;
}

std::string render_report(const std::vector<ArrayReport>& reports) {
  std::string s;
  for (const auto& r : reports) {
    s += strformat("array %s[%lld]: %s\n", r.array.c_str(),
                   static_cast<long long>(r.size),
                   recommendation_name(r.recommendation));
    for (const auto& site : r.sites) {
      s += strformat("  loop #%zu %s%s", site.loop_index,
                     site.reads ? "R" : "", site.writes ? "W" : "");
      if (site.canonical) {
        s += strformat(" range [%lld,%lld)%s",
                       static_cast<long long>(site.lower),
                       static_cast<long long>(site.upper),
                       site.index_disciplined ? " at loop var" : "");
      } else {
        s += " (non-canonical loop)";
      }
      s += "\n";
    }
  }
  return s;
}

}  // namespace rw::recoder
