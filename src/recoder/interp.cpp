#include "recoder/interp.hpp"

#include <deque>
#include <memory>
#include <stdexcept>
#include <variant>

namespace rw::recoder {
namespace {

using Array = std::shared_ptr<std::vector<std::int64_t>>;

struct Pointer {
  Array base;
  std::int64_t offset = 0;
};

using Value = std::variant<std::int64_t, Array, Pointer>;

struct InterpError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ReturnSignal {
  std::int64_t value;
};

class Interp {
 public:
  Interp(const Program& prog, std::uint64_t max_steps)
      : prog_(prog), budget_(max_steps) {}

  InterpResult run(const std::string& entry,
                   const std::vector<std::int64_t>& args) {
    // Globals live in the outermost scope.
    scopes_.emplace_back();
    for (const auto& g : prog_.globals) exec_decl(*g);

    const Function* f = prog_.find_function(entry);
    if (!f) throw InterpError("no function '" + entry + "'");
    std::vector<Value> argv;
    argv.reserve(args.size());
    for (const auto a : args) argv.emplace_back(a);

    InterpResult res;
    res.return_value = call(*f, std::move(argv));
    res.steps = steps_;
    for (const auto& g : prog_.globals) {
      const Value& v = scopes_.front().at(g->name);
      if (std::holds_alternative<Array>(v)) {
        res.globals[g->name] = *std::get<Array>(v);
      } else if (std::holds_alternative<std::int64_t>(v)) {
        res.globals[g->name] = {std::get<std::int64_t>(v)};
      }
    }
    return res;
  }

 private:
  void tick() {
    if (++steps_ > budget_)
      throw InterpError("step budget exhausted (infinite loop?)");
  }

  Value* lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    return nullptr;
  }

  Value& require(const std::string& name) {
    Value* v = lookup(name);
    if (!v) throw InterpError("unknown identifier '" + name + "'");
    return *v;
  }

  std::int64_t as_int(const Value& v) {
    if (!std::holds_alternative<std::int64_t>(v))
      throw InterpError("expected scalar value");
    return std::get<std::int64_t>(v);
  }

  Array as_array(const Value& v) {
    if (std::holds_alternative<Array>(v)) return std::get<Array>(v);
    if (std::holds_alternative<Pointer>(v)) {
      const auto& p = std::get<Pointer>(v);
      if (p.offset != 0)
        throw InterpError("array use of offset pointer");
      return p.base;
    }
    throw InterpError("expected array value");
  }

  std::int64_t& element(const Array& a, std::int64_t idx) {
    if (!a) throw InterpError("null array");
    if (idx < 0 || idx >= static_cast<std::int64_t>(a->size()))
      throw InterpError("array index out of bounds: " +
                        std::to_string(idx));
    return (*a)[static_cast<std::size_t>(idx)];
  }

  // ---------------------------------------------------------- expressions

  Value eval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return e.value;
      case ExprKind::kIdent:
        return require(e.name);
      case ExprKind::kBinary:
        return eval_binary(e);
      case ExprKind::kUnary: {
        const std::int64_t v = as_int(eval(*e.kids[0]));
        if (e.op == "-") return -v;
        if (e.op == "!") return static_cast<std::int64_t>(v == 0);
        throw InterpError("unknown unary op " + e.op);
      }
      case ExprKind::kIndex: {
        const Array a = as_array(eval(*e.kids[0]));
        return element(a, as_int(eval(*e.kids[1])));
      }
      case ExprKind::kDeref: {
        const Value v = eval(*e.kids[0]);
        if (!std::holds_alternative<Pointer>(v))
          throw InterpError("dereference of non-pointer");
        const auto& p = std::get<Pointer>(v);
        return element(p.base, p.offset);
      }
      case ExprKind::kAddrOf: {
        const Expr& target = *e.kids[0];
        if (target.kind == ExprKind::kIdent) {
          const Value& v = require(target.name);
          if (std::holds_alternative<Array>(v))
            return Pointer{std::get<Array>(v), 0};
          throw InterpError("& of non-array identifier");
        }
        if (target.kind == ExprKind::kIndex) {
          const Array a = as_array(eval(*target.kids[0]));
          return Pointer{a, as_int(eval(*target.kids[1]))};
        }
        throw InterpError("unsupported & target");
      }
      case ExprKind::kCall:
        return eval_call(e);
    }
    throw InterpError("bad expression");
  }

  Value eval_binary(const Expr& e) {
    // Pointer arithmetic: ptr +/- int.
    const Value lv = eval(*e.kids[0]);
    const Value rv = eval(*e.kids[1]);
    if (std::holds_alternative<Pointer>(lv) &&
        (e.op == "+" || e.op == "-")) {
      Pointer p = std::get<Pointer>(lv);
      const std::int64_t d = as_int(rv);
      p.offset += e.op == "+" ? d : -d;
      return p;
    }
    if (std::holds_alternative<Array>(lv) && e.op == "+") {
      // array decays to pointer in `a + i`.
      return Pointer{std::get<Array>(lv), as_int(rv)};
    }
    const std::int64_t a = as_int(lv);
    const std::int64_t b = as_int(rv);
    // Arithmetic wraps (two's complement): compute in unsigned so deep
    // unrolled/fused expression chains stay defined behavior under UBSan.
    auto wrap = [](std::uint64_t v) {
      return static_cast<std::int64_t>(v);
    };
    const auto ua = static_cast<std::uint64_t>(a);
    const auto ub = static_cast<std::uint64_t>(b);
    if (e.op == "+") return wrap(ua + ub);
    if (e.op == "-") return wrap(ua - ub);
    if (e.op == "*") return wrap(ua * ub);
    if (e.op == "/") {
      if (b == 0) throw InterpError("division by zero");
      if (a == INT64_MIN && b == -1) return INT64_MIN;  // -x would overflow
      return a / b;
    }
    if (e.op == "%") {
      if (b == 0) throw InterpError("modulo by zero");
      if (a == INT64_MIN && b == -1) return std::int64_t{0};
      return a % b;
    }
    auto boolean = [](bool v) { return static_cast<std::int64_t>(v); };
    if (e.op == "==") return boolean(a == b);
    if (e.op == "!=") return boolean(a != b);
    if (e.op == "<") return boolean(a < b);
    if (e.op == "<=") return boolean(a <= b);
    if (e.op == ">") return boolean(a > b);
    if (e.op == ">=") return boolean(a >= b);
    if (e.op == "&&") return boolean(a != 0 && b != 0);
    if (e.op == "||") return boolean(a != 0 || b != 0);
    throw InterpError("unknown binary op " + e.op);
  }

  Value eval_call(const Expr& e) {
    // Channel builtins (inserted by the channel transformation).
    if (e.name == "chan_send") {
      if (e.kids.size() != 2) throw InterpError("chan_send(ch, v)");
      const std::int64_t ch = as_int(eval(*e.kids[0]));
      channels_[ch].push_back(as_int(eval(*e.kids[1])));
      return std::int64_t{0};
    }
    if (e.name == "chan_recv") {
      if (e.kids.size() != 1) throw InterpError("chan_recv(ch)");
      const std::int64_t ch = as_int(eval(*e.kids[0]));
      auto& q = channels_[ch];
      if (q.empty())
        throw InterpError("chan_recv on empty channel " +
                          std::to_string(ch));
      const std::int64_t v = q.front();
      q.pop_front();
      return v;
    }
    if (e.name == "chan_size") {
      const std::int64_t ch = as_int(eval(*e.kids[0]));
      return static_cast<std::int64_t>(channels_[ch].size());
    }
    const Function* f = prog_.find_function(e.name);
    if (!f) throw InterpError("call to unknown function '" + e.name + "'");
    if (f->params.size() != e.kids.size())
      throw InterpError("arity mismatch calling '" + e.name + "'");
    std::vector<Value> argv;
    argv.reserve(e.kids.size());
    for (const auto& a : e.kids) argv.push_back(eval(*a));
    return call(*f, std::move(argv));
  }

  std::int64_t call(const Function& f, std::vector<Value> argv) {
    if (call_depth_ > 256) throw InterpError("call stack overflow");
    ++call_depth_;
    // A fresh scope; note: mini-C has no closures, but inner functions can
    // still see globals (scope 0). We emulate C scoping by keeping only
    // globals + the new frame visible.
    std::vector<std::map<std::string, Value>> saved;
    saved.assign(scopes_.begin() + 1, scopes_.end());
    scopes_.resize(1);
    scopes_.emplace_back();
    for (std::size_t i = 0; i < f.params.size(); ++i)
      scopes_.back()[f.params[i].name] = std::move(argv[i]);

    std::int64_t ret = 0;
    try {
      exec_body(f.body);
    } catch (const ReturnSignal& r) {
      ret = r.value;
    }
    scopes_.resize(1);
    for (auto& s : saved) scopes_.push_back(std::move(s));
    --call_depth_;
    return ret;
  }

  // ----------------------------------------------------------- statements

  void exec_decl(const Stmt& s) {
    if (s.is_array) {
      scopes_.back()[s.name] = std::make_shared<std::vector<std::int64_t>>(
          static_cast<std::size_t>(s.array_size), 0);
    } else if (s.is_pointer) {
      scopes_.back()[s.name] =
          s.expr ? eval(*s.expr) : Value{Pointer{nullptr, 0}};
    } else {
      scopes_.back()[s.name] =
          s.expr ? Value{as_int(eval(*s.expr))} : Value{std::int64_t{0}};
    }
  }

  void assign_to(const Expr& lhs, Value v) {
    switch (lhs.kind) {
      case ExprKind::kIdent: {
        Value& slot = require(lhs.name);
        if (std::holds_alternative<std::int64_t>(slot)) {
          slot = as_int(v);
        } else {
          slot = std::move(v);  // pointer reassignment
        }
        return;
      }
      case ExprKind::kIndex: {
        const Array a = as_array(eval(*lhs.kids[0]));
        element(a, as_int(eval(*lhs.kids[1]))) = as_int(v);
        return;
      }
      case ExprKind::kDeref: {
        const Value pv = eval(*lhs.kids[0]);
        if (!std::holds_alternative<Pointer>(pv))
          throw InterpError("assignment through non-pointer");
        const auto& p = std::get<Pointer>(pv);
        element(p.base, p.offset) = as_int(v);
        return;
      }
      default:
        throw InterpError("bad assignment target");
    }
  }

  void exec(const Stmt& s) {
    tick();
    switch (s.kind) {
      case StmtKind::kDecl:
        exec_decl(s);
        return;
      case StmtKind::kAssign:
        assign_to(*s.lhs, eval(*s.expr));
        return;
      case StmtKind::kExprStmt:
        eval(*s.expr);
        return;
      case StmtKind::kIf:
        if (as_int(eval(*s.expr)) != 0) {
          exec_scoped(s.body);
        } else {
          exec_scoped(s.orelse);
        }
        return;
      case StmtKind::kFor: {
        scopes_.emplace_back();
        exec(*s.init);
        while (as_int(eval(*s.expr)) != 0) {
          exec_scoped(s.body);
          exec(*s.step);
          tick();
        }
        scopes_.pop_back();
        return;
      }
      case StmtKind::kWhile:
        while (as_int(eval(*s.expr)) != 0) {
          exec_scoped(s.body);
          tick();
        }
        return;
      case StmtKind::kReturn:
        throw ReturnSignal{s.expr ? as_int(eval(*s.expr)) : 0};
      case StmtKind::kBlock:
        exec_scoped(s.body);
        return;
    }
  }

  void exec_body(const std::vector<StmtPtr>& body) {
    for (const auto& st : body) exec(*st);
  }

  void exec_scoped(const std::vector<StmtPtr>& body) {
    scopes_.emplace_back();
    exec_body(body);
    scopes_.pop_back();
  }

  const Program& prog_;
  std::uint64_t budget_;
  std::uint64_t steps_ = 0;
  int call_depth_ = 0;
  std::vector<std::map<std::string, Value>> scopes_;
  std::map<std::int64_t, std::deque<std::int64_t>> channels_;
};

}  // namespace

Result<InterpResult> interpret(const Program& prog, const std::string& entry,
                               const std::vector<std::int64_t>& args,
                               std::uint64_t max_steps) {
  try {
    Interp interp(prog, max_steps);
    return interp.run(entry, args);
  } catch (const InterpError& e) {
    return make_error(e.what());
  }
}

}  // namespace rw::recoder
