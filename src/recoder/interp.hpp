// Mini-C interpreter.
//
// The recoder's transformations claim semantic preservation; this
// interpreter makes that claim testable — run the program before and
// after a transformation and compare results. Channel builtins
// (chan_send / chan_recv / chan_size) are modelled as named FIFOs so that
// programs produced by the channel-insertion transformation still execute
// sequentially with identical results.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "recoder/ast.hpp"

namespace rw::recoder {

struct InterpResult {
  std::int64_t return_value = 0;
  /// Final contents of global variables (scalars have one element).
  std::map<std::string, std::vector<std::int64_t>> globals;
  std::uint64_t steps = 0;  // statements executed

  bool operator==(const InterpResult& o) const {
    return return_value == o.return_value && globals == o.globals;
  }
};

/// Run `entry` (default "main") with integer arguments. Fails on runtime
/// errors (OOB access, unknown identifiers, step-budget exhaustion).
Result<InterpResult> interpret(const Program& prog,
                               const std::string& entry = "main",
                               const std::vector<std::int64_t>& args = {},
                               std::uint64_t max_steps = 10'000'000);

}  // namespace rw::recoder
