#include "critpath/depgraph.hpp"

#include <algorithm>

namespace rw::critpath {

const char* seg_kind_name(SegKind k) {
  switch (k) {
    case SegKind::kCompute:
      return "compute";
    case SegKind::kTransfer:
      return "transfer";
    case SegKind::kDma:
      return "dma";
  }
  return "unknown";
}

DepGraph DepGraph::build(const perf::TraceView& view,
                         const sim::PlatformConfig& cfg) {
  DepGraph g;
  g.cfg_ = cfg;
  if (view.empty()) return g;

  // Merge the typed spans into one node list ordered by trace encounter
  // (`seq` is the opening event's index, so the order is strict).
  struct Staged {
    std::size_t seq;
    Segment seg;
  };
  std::vector<Staged> staged;
  staged.reserve(view.span_count());
  for (const auto& s : view.computes()) {
    Segment n;
    n.kind = SegKind::kCompute;
    n.label = s.label;
    n.pe = s.core.is_valid() ? s.core.index() : 0;
    n.task = s.task;
    n.cycles = s.cycles;
    n.ref_cycles = s.ref_cycles;
    n.obs_start = s.start;
    n.obs_finish = s.finish;
    staged.push_back({s.seq, std::move(n)});
  }
  for (const auto& s : view.transfers()) {
    Segment n;
    n.kind = SegKind::kTransfer;
    n.label = s.label;
    n.src_pe = s.src_core.is_valid() ? s.src_core.index() : 0;
    n.dst_pe = s.dst_core.is_valid() ? s.dst_core.index() : 0;
    n.src_task = s.src_task;
    n.dst_task = s.dst_task;
    n.bytes = s.bytes;
    n.local = s.local();
    n.obs_start = s.start;
    n.obs_finish = s.finish;
    staged.push_back({s.seq, std::move(n)});
  }
  for (const auto& s : view.dmas()) {
    Segment n;
    n.kind = SegKind::kDma;
    n.label = "dma";
    n.bytes = s.bytes;
    n.obs_start = s.start;
    n.obs_finish = s.finish;
    staged.push_back({s.seq, std::move(n)});
  }
  std::sort(staged.begin(), staged.end(),
            [](const Staged& a, const Staged& b) { return a.seq < b.seq; });

  g.nodes_.reserve(staged.size());
  for (auto& st : staged) {
    st.seg.id = g.nodes_.size();
    g.obs_makespan_ = std::max(g.obs_makespan_, st.seg.obs_finish);
    g.nodes_.push_back(std::move(st.seg));
  }
  g.dep_preds_.assign(g.nodes_.size(), {});

  // Task identity -> compute node (first occurrence wins; the traced
  // executor runs every task exactly once).
  for (const Segment& n : g.nodes_) {
    if (n.kind == SegKind::kCompute && n.task != perf::kNoTask)
      g.task_to_node_.emplace_back(n.task, n.id);
  }
  std::sort(g.task_to_node_.begin(), g.task_to_node_.end());
  g.task_to_node_.erase(
      std::unique(g.task_to_node_.begin(), g.task_to_node_.end(),
                  [](const auto& a, const auto& b) { return a.first == b.first; }),
      g.task_to_node_.end());

  auto add_dep = [&](std::size_t src, std::size_t dst) {
    // Foreign traces could in principle present an endpoint out of order;
    // a backward edge would break the single-forward-sweep replay, so it
    // is dropped rather than trusted.
    if (src == kNoNode || dst == kNoNode || src >= dst) return;
    g.edges_.push_back({src, dst, EdgeKind::kDependence});
    g.dep_preds_[dst].push_back(src);
  };

  // Dependence edges: producer-task -> transfer -> consumer-task. Resource
  // chains (same core / same link / DMA engine) are recorded as explicit
  // edges too, for bookkeeping and the acyclicity proof, but the replay in
  // analysis.cpp re-derives serialization from its own availability state
  // (dep_preds() carries dependence edges only).
  std::vector<std::size_t> last_on_pe(cfg.cores.empty() ? 1 : cfg.cores.size(),
                                      kNoNode);
  std::size_t last_on_bus = kNoNode;
  std::vector<std::size_t> last_on_link;
  if (cfg.interconnect == sim::PlatformConfig::Icn::kMesh)
    last_on_link.assign(
        static_cast<std::size_t>(cfg.mesh.width) * cfg.mesh.height * 4,
        kNoNode);
  std::size_t last_dma = kNoNode;

  auto add_resource = [&](std::size_t& last, std::size_t n) {
    if (last != kNoNode && last < n)
      g.edges_.push_back({last, n, EdgeKind::kResource});
    last = n;
  };

  for (const Segment& n : g.nodes_) {
    switch (n.kind) {
      case SegKind::kCompute: {
        if (n.pe >= last_on_pe.size()) last_on_pe.resize(n.pe + 1, kNoNode);
        add_resource(last_on_pe[n.pe], n.id);
        break;
      }
      case SegKind::kTransfer: {
        add_dep(g.node_of_task(n.src_task), n.id);
        add_dep(n.id, g.node_of_task(n.dst_task));
        if (n.local) break;  // same-PE record: no fabric occupancy
        if (cfg.interconnect == sim::PlatformConfig::Icn::kSharedBus) {
          add_resource(last_on_bus, n.id);
        } else {
          std::size_t prev = kNoNode;  // dedupe shared-route predecessors
          for (std::size_t link : sim::mesh_route(
                   cfg.mesh, sim::CoreId{static_cast<std::uint32_t>(n.src_pe)},
                   sim::CoreId{static_cast<std::uint32_t>(n.dst_pe)})) {
            if (link >= last_on_link.size())
              last_on_link.resize(link + 1, kNoNode);
            if (last_on_link[link] != kNoNode &&
                last_on_link[link] != prev) {
              std::size_t last = last_on_link[link];
              add_resource(last, n.id);
              prev = last_on_link[link];
            }
            last_on_link[link] = n.id;
          }
        }
        break;
      }
      case SegKind::kDma: {
        add_resource(last_dma, n.id);
        // The engine is an anonymous bus master: on a shared bus its
        // transfer occupies the same arbiter every core-to-core message
        // uses (peripherals.cpp reserves core 0 -> core 0).
        if (cfg.interconnect == sim::PlatformConfig::Icn::kSharedBus)
          add_resource(last_on_bus, n.id);
        break;
      }
    }
  }
  return g;
}

std::size_t DepGraph::node_of_task(std::uint64_t t) const {
  if (t == perf::kNoTask) return kNoNode;
  auto it = std::lower_bound(
      task_to_node_.begin(), task_to_node_.end(), t,
      [](const auto& p, std::uint64_t key) { return p.first < key; });
  if (it == task_to_node_.end() || it->first != t) return kNoNode;
  return it->second;
}

bool DepGraph::is_acyclic() const {
  return std::all_of(edges_.begin(), edges_.end(),
                     [](const DepEdge& e) { return e.src < e.dst; });
}

std::size_t DepGraph::dependence_edge_count() const {
  return static_cast<std::size_t>(
      std::count_if(edges_.begin(), edges_.end(), [](const DepEdge& e) {
        return e.kind == EdgeKind::kDependence;
      }));
}

std::size_t DepGraph::resource_edge_count() const {
  return edges_.size() - dependence_edge_count();
}

}  // namespace rw::critpath
