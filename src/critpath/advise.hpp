// advise_remap: close the loop from analysis back into the mapper.
//
// The what-if engine makes candidate evaluation nearly free: a proposed
// task move is one O(trace) re-timing instead of one simulation. The
// adviser exploits that with a greedy hill-climb — take the critical
// path's hottest compute segments, try re-homing each onto every other PE,
// keep the move the re-timer predicts fastest, repeat — then pays for ONE
// re-simulation at the end to verify. If reality disagrees (it should not;
// the replay is exact for these executors) the advice reverts to the
// baseline mapping, so advise_remap is never slower than what it started
// from — the contract the tests and the E17 gate enforce.
//
// The result also distils the attribution into PlacementHints for the
// other planning layers: preferred PEs (critical-path-hot first) feed
// sched::SpaceAllocator::allocate_preferred, and the measured
// communication share tunes maps::PartitionConfig::comm_weight.
#pragma once

#include <cstddef>
#include <vector>

#include "critpath/whatif.hpp"
#include "maps/partition.hpp"
#include "sched/spacealloc.hpp"

namespace rw::critpath {

/// Attribution distilled for the planning layers.
struct PlacementHints {
  /// PEs ordered by critical-path heat (hottest first); pass to
  /// sched::SpaceAllocator::allocate_preferred.
  std::vector<std::size_t> preferred_pes;
  /// Distinct PEs the advised mapping actually uses (a gang-size hint).
  std::size_t gang_cores = 0;
  /// Fraction of the makespan owned by transfers.
  double comm_fraction = 0.0;

  /// Fold the hints into a partitioner config: when transfers own a large
  /// share of the critical path, cutting fewer edges matters more than
  /// balancing load (comm_weight scales up to 5x at comm_fraction 1.0),
  /// and the task count should at least cover the advised gang.
  [[nodiscard]] maps::PartitionConfig advise_partition(
      maps::PartitionConfig base) const;
};

/// Grant a gang for the advised mapping: preferred (hot) PEs first, then
/// lowest-free. Thin glue over allocate_preferred so callers holding only
/// hints need not know the allocator API shape.
[[nodiscard]] std::vector<std::size_t> allocate_with_hints(
    sched::SpaceAllocator& alloc, const PlacementHints& hints,
    std::size_t min_cores, std::size_t max_cores);

struct RemapAdvice {
  std::vector<std::size_t> task_to_pe;  // advised mapping (== input if none)
  TimePs baseline_makespan = 0;   // observed, from the baseline trace
  TimePs predicted_makespan = 0;  // re-timer's claim for the advised mapping
  TimePs resim_makespan = 0;      // re-simulated truth for it
  std::size_t moves = 0;          // accepted move edits
  bool reverted = false;  // resim was slower -> advice fell back to baseline
  std::uint64_t ops = 0;  // total re-timing work spent searching
  PlacementHints hints;

  [[nodiscard]] double speedup() const {
    return resim_makespan == 0 ? 1.0
                               : static_cast<double>(baseline_makespan) /
                                     static_cast<double>(resim_makespan);
  }
};

/// Greedy what-if hill-climb over task moves, verified by one final
/// re-simulation. `rounds` bounds the accepted moves (one per round);
/// each round evaluates (hot tasks x other PEs) candidate re-timings.
[[nodiscard]] RemapAdvice advise_remap(
    const maps::TaskGraph& g, const sim::PlatformConfig& cfg,
    const std::vector<std::size_t>& task_to_pe, int rounds = 4);

}  // namespace rw::critpath
