#include "critpath/advise.hpp"

#include <algorithm>

#include "maps/mapping.hpp"

namespace rw::critpath {

maps::PartitionConfig PlacementHints::advise_partition(
    maps::PartitionConfig base) const {
  base.comm_weight *= 1.0 + 4.0 * comm_fraction;
  base.max_tasks = std::max(base.max_tasks, gang_cores);
  return base;
}

std::vector<std::size_t> allocate_with_hints(sched::SpaceAllocator& alloc,
                                             const PlacementHints& hints,
                                             std::size_t min_cores,
                                             std::size_t max_cores) {
  return alloc.allocate_preferred(min_cores, max_cores, hints.preferred_pes);
}

namespace {

PlacementHints hints_from(const DepGraph& dep, const Retimed& r,
                          const std::vector<std::size_t>& task_to_pe,
                          std::size_t npes) {
  const Attribution attr = attribute(dep, r);
  PlacementHints h;
  h.comm_fraction =
      attr.makespan == 0 ? 0.0
                         : static_cast<double>(attr.transfer_ps) /
                               static_cast<double>(attr.makespan);
  for (const Owner& o : attr.by_core) {
    // by_core names are "core<i>" by construction; recover the index.
    h.preferred_pes.push_back(
        static_cast<std::size_t>(std::stoul(o.name.substr(4))));
  }
  std::vector<bool> used(npes, false);
  for (const std::size_t pe : task_to_pe)
    if (pe < npes && !used[pe]) {
      used[pe] = true;
      ++h.gang_cores;
    }
  return h;
}

}  // namespace

RemapAdvice advise_remap(const maps::TaskGraph& g,
                         const sim::PlatformConfig& cfg,
                         const std::vector<std::size_t>& task_to_pe,
                         int rounds) {
  RemapAdvice adv;
  adv.task_to_pe = task_to_pe;
  const std::size_t npes = cfg.cores.empty() ? 1 : cfg.cores.size();

  const DepGraph dep = trace_mapping(g, cfg, task_to_pe);
  Retimed base = retime(dep, {}, &g);
  adv.ops += base.ops;
  adv.baseline_makespan = base.makespan;
  adv.predicted_makespan = base.makespan;
  if (dep.empty() || npes < 2) {
    adv.resim_makespan = base.makespan;
    adv.hints = hints_from(dep, base, adv.task_to_pe, npes);
    return adv;
  }

  std::vector<Edit> accepted;
  Retimed current = std::move(base);
  for (int round = 0; round < rounds; ++round) {
    // Hottest compute segments on the current critical path are the move
    // candidates; everything else cannot shorten the makespan directly.
    const Attribution attr = attribute(dep, current);
    std::vector<std::uint64_t> hot;
    for (auto it = attr.path.rbegin(); it != attr.path.rend(); ++it) {
      const Segment& s = dep.nodes()[it->node];
      if (s.kind != SegKind::kCompute || s.task == perf::kNoTask) continue;
      if (std::find(hot.begin(), hot.end(), s.task) != hot.end()) continue;
      hot.push_back(s.task);
      if (hot.size() >= 3) break;
    }

    TimePs best = current.makespan;
    Edit best_edit;
    bool found = false;
    for (const std::uint64_t task : hot) {
      for (std::size_t pe = 0; pe < npes; ++pe) {
        std::vector<Edit> trial = accepted;
        trial.push_back(Edit::move_task(task, pe));
        const Retimed t = retime(dep, trial, &g);
        adv.ops += t.ops;
        if (t.makespan < best) {
          best = t.makespan;
          best_edit = trial.back();
          found = true;
        }
      }
    }
    if (!found) break;
    accepted.push_back(best_edit);
    current = retime(dep, accepted, &g);
    adv.ops += current.ops;
  }

  adv.moves = accepted.size();
  adv.predicted_makespan = current.makespan;
  for (const Edit& e : accepted)
    if (e.task < adv.task_to_pe.size()) adv.task_to_pe[e.task] = e.pe % npes;

  // The one paid verification: re-simulate the advised mapping. Reality
  // disagreeing means the advice is withdrawn, not shipped.
  {
    sim::Platform platform(cfg);
    adv.resim_makespan =
        maps::execute_on_platform(g, adv.task_to_pe, platform);
  }
  if (adv.resim_makespan > adv.baseline_makespan) {
    adv.task_to_pe = task_to_pe;
    adv.resim_makespan = adv.baseline_makespan;
    adv.predicted_makespan = adv.baseline_makespan;
    adv.moves = 0;
    adv.reverted = true;
    current = retime(dep, {}, &g);
    adv.ops += current.ops;
  }
  adv.hints = hints_from(dep, current, adv.task_to_pe, npes);
  return adv;
}

}  // namespace rw::critpath
