// What-if predictions and their ground truth.
//
// predict() answers "what would the makespan be under these edits?" from
// the trace alone, in O(trace events). resimulate() answers the same
// question the expensive way — apply the identical EditedModel to a fresh
// platform and graph and re-run the transactional executor. validate()
// runs both and reports the relative error; the repo's contract (held by
// tests and the E17 CI gate) is that the error stays within 10% across
// the workload corpus and single-edit sweeps, with the reservation-order
// executors it is in fact exact.
#pragma once

#include <span>
#include <vector>

#include "critpath/analysis.hpp"

namespace rw::critpath {

struct Prediction {
  TimePs baseline = 0;   // retimed with no edits (== observed when exact)
  TimePs predicted = 0;  // retimed under the edits
  std::uint64_t ops = 0;  // replay work (both sweeps)

  [[nodiscard]] double speedup() const {
    return predicted == 0 ? 1.0
                          : static_cast<double>(baseline) /
                                static_cast<double>(predicted);
  }
};

[[nodiscard]] Prediction predict(const DepGraph& g, std::span<const Edit> edits,
                                 const maps::TaskGraph* oracle = nullptr);

/// Re-simulated reality for the same edits.
struct GroundTruth {
  TimePs baseline = 0;  // executor on the unedited platform/graph/mapping
  TimePs edited = 0;    // executor on the edited ones
};

[[nodiscard]] GroundTruth resimulate(const maps::TaskGraph& g,
                                     const sim::PlatformConfig& cfg,
                                     const std::vector<std::size_t>& task_to_pe,
                                     std::span<const Edit> edits);

struct Validation {
  Prediction pred;
  GroundTruth truth;
  /// |predicted - resimulated| / resimulated (0 when both are 0).
  double rel_error = 0.0;
};

/// Trace the baseline run, predict the edit from the trace, then re-simulate
/// it — the full loop the 10% accuracy contract quantifies over.
[[nodiscard]] Validation validate(const maps::TaskGraph& g,
                                  const sim::PlatformConfig& cfg,
                                  const std::vector<std::size_t>& task_to_pe,
                                  std::span<const Edit> edits);

/// Run the traced executor on a fresh platform built from `cfg` and return
/// the dependence graph of what happened (the entry point every analysis
/// above starts from).
[[nodiscard]] DepGraph trace_mapping(const maps::TaskGraph& g,
                                     const sim::PlatformConfig& cfg,
                                     const std::vector<std::size_t>& task_to_pe);

/// Copy of `g` with the EditedModel's removed dependences deleted.
[[nodiscard]] maps::TaskGraph strip_dependences(
    const maps::TaskGraph& g,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& removed);

}  // namespace rw::critpath
