#include "critpath/whatif.hpp"

#include <algorithm>
#include <cmath>

#include "maps/mapping.hpp"

namespace rw::critpath {

Prediction predict(const DepGraph& g, std::span<const Edit> edits,
                   const maps::TaskGraph* oracle) {
  const Retimed base = retime(g, {}, oracle);
  const Retimed edited = retime(g, edits, oracle);
  Prediction p;
  p.baseline = base.makespan;
  p.predicted = edited.makespan;
  p.ops = base.ops + edited.ops;
  return p;
}

DepGraph trace_mapping(const maps::TaskGraph& g, const sim::PlatformConfig& cfg,
                       const std::vector<std::size_t>& task_to_pe) {
  sim::PlatformConfig traced_cfg = cfg;
  traced_cfg.trace_enabled = true;
  sim::Platform platform(traced_cfg);
  platform.tracer().set_enabled(true);
  maps::execute_on_platform_traced(g, task_to_pe, platform);
  const perf::TraceView view =
      perf::TraceView::from_events(platform.tracer().events());
  // The graph carries the *un*-traced config so what-if re-simulations of
  // edited models run exactly like the caller's baseline.
  return DepGraph::build(view, cfg);
}

maps::TaskGraph strip_dependences(
    const maps::TaskGraph& g,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& removed) {
  maps::TaskGraph out;
  out.name = g.name;
  out.annotation = g.annotation;
  for (const maps::TaskNode& t : g.tasks()) {
    const maps::TaskNodeId id = out.add_task(t.name, t.ref_cycles);
    maps::TaskNode& n = out.task(id);
    const maps::TaskNodeId keep = n.id;
    n = t;  // copy every cost factor / annotation field
    n.id = keep;
  }
  for (const maps::TaskEdge& e : g.edges()) {
    const bool drop = std::any_of(
        removed.begin(), removed.end(), [&](const auto& p) {
          return p.first == e.src.value() && p.second == e.dst.value();
        });
    if (!drop) out.add_edge(e.src, e.dst, e.bytes);
  }
  return out;
}

GroundTruth resimulate(const maps::TaskGraph& g, const sim::PlatformConfig& cfg,
                       const std::vector<std::size_t>& task_to_pe,
                       std::span<const Edit> edits) {
  GroundTruth t;
  {
    sim::Platform platform(cfg);
    t.baseline = maps::execute_on_platform(g, task_to_pe, platform);
  }
  const EditedModel em = apply_edits(cfg, edits);
  const maps::TaskGraph edited_graph = strip_dependences(g, em.removed);
  std::vector<std::size_t> edited_map = task_to_pe;
  const std::size_t npes = em.cfg.cores.empty() ? 1 : em.cfg.cores.size();
  for (const auto& [task, pe] : em.moves)
    if (task < edited_map.size()) edited_map[task] = pe % npes;
  {
    sim::Platform platform(em.cfg);
    t.edited = maps::execute_on_platform(edited_graph, edited_map, platform);
  }
  return t;
}

Validation validate(const maps::TaskGraph& g, const sim::PlatformConfig& cfg,
                    const std::vector<std::size_t>& task_to_pe,
                    std::span<const Edit> edits) {
  Validation v;
  const DepGraph dep = trace_mapping(g, cfg, task_to_pe);
  v.pred = predict(dep, edits, &g);
  v.truth = resimulate(g, cfg, task_to_pe, edits);
  if (v.truth.edited == 0) {
    v.rel_error = v.pred.predicted == 0 ? 0.0 : 1.0;
  } else {
    const double diff =
        std::fabs(static_cast<double>(v.pred.predicted) -
                  static_cast<double>(v.truth.edited));
    v.rel_error = diff / static_cast<double>(v.truth.edited);
  }
  return v;
}

}  // namespace rw::critpath
