// The rwcritpath driver, as a library so tests exercise exactly what the
// CLI does: trace each corpus workload, extract and attribute the critical
// path, sweep the standard what-if edits with re-simulated ground truth,
// run the remap adviser, print the summary tables and write deterministic
// CRITPATH_<workload>.json documents (schema rw-critpath-1).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "critpath/advise.hpp"
#include "maps/mapping.hpp"
#include "tools/cli_common.hpp"

namespace rw::critpath {

struct CritOptions : cli::CommonOptions {
  std::vector<std::string> workloads;  // positional; empty = whole corpus
  std::size_t cores = 4;               // --cores N
  bool mesh = false;                   // --mesh
  int rounds = 4;                      // --rounds R (adviser hill-climb)
  std::uint32_t blocks = 8;            // --blocks B (jpeg size)
  std::uint32_t slices = 4;            // --slices S (h264 size)
};

/// Parse rwcritpath's argv (without argv[0]).
Result<CritOptions> parse_crit_args(const std::vector<std::string>& args);

/// One corpus entry, ready to trace: application graph, platform model
/// and the HEFT baseline mapping.
struct CorpusCase {
  maps::TaskGraph graph;
  sim::PlatformConfig cfg;
  std::vector<std::size_t> task_to_pe;
};

std::vector<std::string> corpus_names();
Result<CorpusCase> build_corpus_case(const std::string& name,
                                     const CritOptions& opts);

/// The planner-facing communication estimate for a platform config — the
/// same arithmetic the live fabrics delegate to (nominal, uncontended).
maps::CommCost comm_cost_for(const sim::PlatformConfig& cfg);

/// The standard single-edit sweep the CLI (and E17 bench) validate:
/// hottest core faster, fabric faster/wider, heaviest critical-path
/// dependence removed.
std::vector<Edit> sweep_edits(const DepGraph& dep, const Attribution& attr);

struct WhatIfRow {
  std::string edit;
  TimePs predicted = 0;
  TimePs resim = 0;
  double rel_error = 0.0;
  double speedup = 1.0;    // resim baseline / resim edited
  std::uint64_t ops = 0;
};

struct WorkloadReport {
  std::string name;
  TimePs observed = 0;   // traced executor makespan
  TimePs retimed = 0;    // replay of the unedited graph (== observed)
  std::size_t nodes = 0;
  std::size_t dep_edges = 0;
  std::size_t res_edges = 0;
  std::size_t trace_events = 0;
  Attribution attribution;
  std::vector<WhatIfRow> whatifs;
  RemapAdvice advice;
  std::string json_path;  // empty when not written
};

struct CritReport {
  std::vector<WorkloadReport> workloads;
  int exit_code = 0;
};

/// Combined deterministic JSON document (legacy schema rw-critpath-1).
std::string critpath_json(const CritOptions& opts,
                          const std::vector<WorkloadReport>& reports);

/// Run per options, writing human output (or the JSON doc) to `out`.
/// Exit code 1 when a file write fails, a what-if misses the 10% accuracy
/// contract, or the adviser's verified mapping is slower than baseline.
CritReport run_critpath(const CritOptions& opts, std::ostream& out);

}  // namespace rw::critpath
