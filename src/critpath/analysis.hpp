// Critical-path extraction and what-if re-timing over a DepGraph.
//
// The replay machine walks the dependence graph once, in trace encounter
// order, carrying per-core, per-fabric-resource availability — exactly the
// state the transactional executor carried when it produced the trace. For
// an unedited graph the sweep reproduces every observed start/finish
// bit-for-bit (the tests hold it to that), because node order IS the order
// resources serialized requests in and segment durations are recomputed
// from the same config-pure timing functions the live platform delegates
// to (sim::bus_transfer_duration et al.). An *edited* sweep — faster core,
// wider link, removed dependence, moved task — is therefore a prediction
// of what the simulator would measure, at O(nodes + edges + hops) cost
// instead of a re-simulation.
//
// Each node remembers which single constraint set its start time (its data
// predecessor or the previous occupant of its resource). Walking that
// binding chain back from the last-finishing node yields a contiguous
// critical path whose segment durations sum exactly to the makespan;
// attribute() aggregates it into per-task / per-channel / per-core /
// per-link ownership — the "why is the makespan M" answer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "critpath/depgraph.hpp"
#include "maps/taskgraph.hpp"

namespace rw::critpath {

/// One hypothetical platform or application edit.
struct Edit {
  enum class Kind : std::uint8_t {
    kFasterCore,        // scale one core's clock by `factor`
    kFasterLink,        // scale the fabric clock (bus or mesh links)
    kWiderLink,         // scale the fabric width (bytes per beat/flit)
    kRemoveDependence,  // delete the (src_task, dst_task) data edge
    kMoveTask,          // re-home `task` onto PE `pe`
  };

  Kind kind = Kind::kFasterCore;
  std::size_t pe = 0;          // kFasterCore target / kMoveTask destination
  double factor = 2.0;         // kFasterCore / kFasterLink / kWiderLink
  std::uint64_t task = perf::kNoTask;      // kMoveTask subject
  std::uint64_t src_task = perf::kNoTask;  // kRemoveDependence endpoints
  std::uint64_t dst_task = perf::kNoTask;

  static Edit faster_core(std::size_t pe, double factor = 2.0);
  static Edit faster_link(double factor = 2.0);
  static Edit wider_link(double factor = 2.0);
  static Edit remove_dependence(std::uint64_t src, std::uint64_t dst);
  static Edit move_task(std::uint64_t task, std::size_t to_pe);

  [[nodiscard]] std::string describe() const;
};

/// Edits folded into a concrete model: the platform config after speed and
/// width changes, plus the application-level moves and removed edges. Both
/// the re-timer and the ground-truth re-simulation consume this one struct,
/// so the two can never disagree about what an edit *means*.
struct EditedModel {
  sim::PlatformConfig cfg;
  std::vector<std::pair<std::uint64_t, std::size_t>> moves;  // task -> PE
  std::vector<std::pair<std::uint64_t, std::uint64_t>> removed;  // (src,dst)
};

[[nodiscard]] EditedModel apply_edits(const sim::PlatformConfig& base,
                                      std::span<const Edit> edits);

/// Result of one replay sweep. Vectors are indexed by DepGraph node id.
struct Retimed {
  TimePs makespan = 0;
  std::vector<TimePs> start;
  std::vector<TimePs> finish;
  /// Node whose finish set this node's start (kNoNode: started at its
  /// ready time with nothing binding — a path source).
  std::vector<std::size_t> binding;
  /// 1 = transfer deleted by a remove-dependence edit.
  std::vector<char> dropped;
  /// Effective endpoints after moves: for computes home == seg_src ==
  /// seg_dst; for transfers the producer/consumer PEs.
  std::vector<std::size_t> seg_src;
  std::vector<std::size_t> seg_dst;
  /// The post-edit platform model the sweep used (attribution re-derives
  /// mesh routes from it).
  sim::PlatformConfig cfg;
  /// Deterministic work counter: one tick per node, dependence edge and
  /// mesh hop processed. The O(trace events) contract is stated — and
  /// CI-gated — in these ops, not in wall time.
  std::uint64_t ops = 0;
};

/// Replay the graph under `edits` (empty = reproduce the observed run).
/// `oracle` supplies per-class task costs for cross-class moves; without
/// it a moved task keeps its recorded cycle count (exact only between
/// same-class PEs).
[[nodiscard]] Retimed retime(const DepGraph& g, std::span<const Edit> edits = {},
                             const maps::TaskGraph* oracle = nullptr);

/// One critical-path segment, source -> sink order.
struct PathStep {
  std::size_t node = 0;
  DurationPs contribution = 0;  // finish - start of this segment
};

/// Aggregated ownership of the makespan by one entity.
struct Owner {
  std::string name;
  SegKind kind = SegKind::kCompute;
  DurationPs ps = 0;
  double share = 0.0;  // ps / makespan
};

struct Attribution {
  TimePs makespan = 0;
  std::vector<PathStep> path;  // binding chain, source -> sink
  std::vector<Owner> by_task;     // compute segments, by label
  std::vector<Owner> by_channel;  // transfer segments, by label
  std::vector<Owner> by_core;     // compute time per "core<i>"
  std::vector<Owner> by_link;     // transfer time per "bus"/"link<i>"/"dma"
  DurationPs compute_ps = 0;
  DurationPs transfer_ps = 0;
  DurationPs dma_ps = 0;
  /// makespan minus the path-segment sum. Zero by the binding-chain
  /// invariant; kept explicit so tests can assert it rather than trust it.
  DurationPs idle_ps = 0;
};

/// Walk the binding chain of `r`'s sink and aggregate ownership. Owner
/// lists are sorted hottest-first (ties by name) for stable output.
[[nodiscard]] Attribution attribute(const DepGraph& g, const Retimed& r);

}  // namespace rw::critpath
