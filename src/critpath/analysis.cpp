#include "critpath/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.hpp"
#include "sim/interconnect.hpp"

namespace rw::critpath {

// ----------------------------------------------------------------- edits

Edit Edit::faster_core(std::size_t pe, double factor) {
  Edit e;
  e.kind = Kind::kFasterCore;
  e.pe = pe;
  e.factor = factor;
  return e;
}

Edit Edit::faster_link(double factor) {
  Edit e;
  e.kind = Kind::kFasterLink;
  e.factor = factor;
  return e;
}

Edit Edit::wider_link(double factor) {
  Edit e;
  e.kind = Kind::kWiderLink;
  e.factor = factor;
  return e;
}

Edit Edit::remove_dependence(std::uint64_t src, std::uint64_t dst) {
  Edit e;
  e.kind = Kind::kRemoveDependence;
  e.src_task = src;
  e.dst_task = dst;
  return e;
}

Edit Edit::move_task(std::uint64_t task, std::size_t to_pe) {
  Edit e;
  e.kind = Kind::kMoveTask;
  e.task = task;
  e.pe = to_pe;
  return e;
}

std::string Edit::describe() const {
  switch (kind) {
    case Kind::kFasterCore:
      return strformat("faster-core(pe%zu, x%.2f)", pe, factor);
    case Kind::kFasterLink:
      return strformat("faster-link(x%.2f)", factor);
    case Kind::kWiderLink:
      return strformat("wider-link(x%.2f)", factor);
    case Kind::kRemoveDependence:
      return strformat("remove-dep(%llu>%llu)",
                       static_cast<unsigned long long>(src_task),
                       static_cast<unsigned long long>(dst_task));
    case Kind::kMoveTask:
      return strformat("move-task(%llu->pe%zu)",
                       static_cast<unsigned long long>(task), pe);
  }
  return "edit";
}

namespace {

HertzT scale_hz(HertzT f, double factor) {
  const double v = static_cast<double>(f) * factor + 0.5;
  return v < 1.0 ? 1 : static_cast<HertzT>(v);
}

std::uint32_t scale_u32(std::uint32_t w, double factor) {
  const double v = static_cast<double>(w) * factor + 0.5;
  return v < 1.0 ? 1 : static_cast<std::uint32_t>(v);
}

DurationPs shrink_ps(DurationPs d, double factor) {
  if (factor <= 0.0) return d;
  return static_cast<DurationPs>(static_cast<double>(d) / factor + 0.5);
}

}  // namespace

EditedModel apply_edits(const sim::PlatformConfig& base,
                        std::span<const Edit> edits) {
  EditedModel em;
  em.cfg = base;
  for (const Edit& e : edits) {
    switch (e.kind) {
      case Edit::Kind::kFasterCore:
        if (e.pe < em.cfg.cores.size())
          em.cfg.cores[e.pe].frequency =
              scale_hz(em.cfg.cores[e.pe].frequency, e.factor);
        break;
      case Edit::Kind::kFasterLink:
        // "Faster" means clocking the whole fabric: bus clock, link clock
        // and (for the mesh) the router hop latency all scale together.
        em.cfg.bus.frequency = scale_hz(em.cfg.bus.frequency, e.factor);
        em.cfg.mesh.link_frequency =
            scale_hz(em.cfg.mesh.link_frequency, e.factor);
        em.cfg.mesh.hop_latency = shrink_ps(em.cfg.mesh.hop_latency, e.factor);
        break;
      case Edit::Kind::kWiderLink:
        em.cfg.bus.width_bytes = scale_u32(em.cfg.bus.width_bytes, e.factor);
        em.cfg.mesh.link_width_bytes =
            scale_u32(em.cfg.mesh.link_width_bytes, e.factor);
        break;
      case Edit::Kind::kRemoveDependence:
        em.removed.emplace_back(e.src_task, e.dst_task);
        break;
      case Edit::Kind::kMoveTask:
        em.moves.emplace_back(e.task, e.pe);
        break;
    }
  }
  return em;
}

// ---------------------------------------------------------------- retime

Retimed retime(const DepGraph& g, std::span<const Edit> edits,
               const maps::TaskGraph* oracle) {
  EditedModel em = apply_edits(g.platform(), edits);
  const std::size_t n = g.nodes().size();
  Retimed r;
  r.cfg = em.cfg;
  r.start.assign(n, 0);
  r.finish.assign(n, 0);
  r.binding.assign(n, kNoNode);
  r.dropped.assign(n, 0);
  r.seg_src.assign(n, 0);
  r.seg_dst.assign(n, 0);
  if (n == 0) return r;

  const std::size_t npes = em.cfg.cores.empty() ? 1 : em.cfg.cores.size();
  auto core_freq = [&](std::size_t pe) {
    return pe < em.cfg.cores.size() ? em.cfg.cores[pe].frequency : mhz(400);
  };
  auto core_class = [&](std::size_t pe) {
    return pe < em.cfg.cores.size() ? em.cfg.cores[pe].cls
                                    : sim::PeClass::kRisc;
  };
  auto moved_to = [&](std::uint64_t task) -> std::size_t {
    if (task == perf::kNoTask) return kNoNode;
    for (auto it = em.moves.rbegin(); it != em.moves.rend(); ++it)  // last wins
      if (it->first == task) return it->second % npes;
    return kNoNode;
  };
  auto is_removed = [&](std::uint64_t s, std::uint64_t d) {
    if (s == perf::kNoTask || d == perf::kNoTask) return false;
    for (const auto& p : em.removed)
      if (p.first == s && p.second == d) return true;
    return false;
  };

  // Pass 1: effective endpoints. Compute homes first (moves re-home them),
  // then transfers inherit their producer/consumer homes; a transfer whose
  // endpoint task never appeared in the trace keeps its observed PE.
  for (const Segment& s : g.nodes()) {
    if (s.kind != SegKind::kCompute) continue;
    std::size_t home = s.pe % npes;
    if (const std::size_t m = moved_to(s.task); m != kNoNode) home = m;
    r.seg_src[s.id] = r.seg_dst[s.id] = home;
  }
  for (const Segment& s : g.nodes()) {
    if (s.kind != SegKind::kTransfer) continue;
    std::size_t src = s.src_pe % npes;
    std::size_t dst = s.dst_pe % npes;
    if (const std::size_t p = g.node_of_task(s.src_task); p != kNoNode)
      src = r.seg_src[p];
    if (const std::size_t c = g.node_of_task(s.dst_task); c != kNoNode)
      dst = r.seg_src[c];
    r.seg_src[s.id] = src;
    r.seg_dst[s.id] = dst;
  }

  // Pass 2: forward replay with resource-availability state — the same
  // state the transactional executor carried, reconstructed.
  const bool mesh = em.cfg.interconnect == sim::PlatformConfig::Icn::kMesh;
  std::vector<TimePs> core_avail(npes, 0);
  std::vector<std::size_t> core_last(npes, kNoNode);
  TimePs bus_busy = 0;
  std::size_t bus_last = kNoNode;
  std::vector<TimePs> link_busy;
  std::vector<std::size_t> link_last;
  if (mesh) {
    const std::size_t links =
        static_cast<std::size_t>(em.cfg.mesh.width) * em.cfg.mesh.height * 4;
    link_busy.assign(links, 0);
    link_last.assign(links, kNoNode);
  }
  TimePs dma_avail = 0;
  std::size_t dma_last = kNoNode;

  for (const Segment& s : g.nodes()) {
    ++r.ops;
    const std::size_t i = s.id;
    if (s.kind == SegKind::kTransfer && is_removed(s.src_task, s.dst_task)) {
      r.dropped[i] = 1;
      continue;
    }

    TimePs ready = 0;
    std::size_t bind = kNoNode;
    for (const std::size_t p : g.dep_preds(i)) {
      ++r.ops;
      if (r.dropped[p]) continue;
      if (r.finish[p] > ready) {
        ready = r.finish[p];
        bind = p;
      }
    }

    switch (s.kind) {
      case SegKind::kCompute: {
        const std::size_t home = r.seg_src[i];
        Cycles cyc = s.cycles;
        if (oracle != nullptr && s.task != perf::kNoTask &&
            s.task < oracle->tasks().size())
          cyc = oracle->task(maps::TaskNodeId{static_cast<std::uint32_t>(s.task)})
                    .cycles_on(core_class(home));
        const DurationPs dur = cycles_to_ps(cyc, core_freq(home));
        TimePs st = ready;
        if (core_avail[home] > st) {
          st = core_avail[home];
          bind = core_last[home];
        }
        r.start[i] = st;
        r.finish[i] = st + dur;
        core_avail[home] = r.finish[i];
        core_last[home] = i;
        break;
      }
      case SegKind::kTransfer: {
        const std::size_t src = r.seg_src[i];
        const std::size_t dst = r.seg_dst[i];
        if (src == dst) {  // effective-local: no fabric occupancy
          r.start[i] = r.finish[i] = ready;
        } else if (!mesh) {
          TimePs st = ready;
          if (bus_busy > st) {
            st = bus_busy;
            bind = bus_last;
          }
          r.start[i] = st;
          r.finish[i] = st + sim::bus_transfer_duration(em.cfg.bus, s.bytes);
          bus_busy = r.finish[i];
          bus_last = i;
        } else {
          const auto links = sim::mesh_route(
              em.cfg.mesh, sim::CoreId{static_cast<std::uint32_t>(src)},
              sim::CoreId{static_cast<std::uint32_t>(dst)});
          if (links.empty()) {
            r.start[i] = r.finish[i] = ready;
          } else {
            const DurationPs occ =
                sim::mesh_serialization_time(em.cfg.mesh, s.bytes) +
                em.cfg.mesh.hop_latency;
            TimePs t = ready;
            bool first = true;
            for (const std::size_t link : links) {
              ++r.ops;
              const TimePs st = std::max(t, link_busy[link]);
              if (first) {
                r.start[i] = st;
                if (link_busy[link] > ready) bind = link_last[link];
                first = false;
              }
              t = st + occ;
              link_busy[link] = t;
              link_last[link] = i;
            }
            r.finish[i] = t;
          }
        }
        break;
      }
      case SegKind::kDma: {
        // Replayed at observed duration (no byte-level model to rescale);
        // the engine serializes, and on a shared bus it is one more bus
        // master (see DepGraph::build).
        TimePs st = ready;
        if (dma_avail > st) {
          st = dma_avail;
          bind = dma_last;
        }
        if (!mesh && bus_busy > st) {
          st = bus_busy;
          bind = bus_last;
        }
        r.start[i] = st;
        r.finish[i] = st + s.obs_duration();
        dma_avail = r.finish[i];
        dma_last = i;
        if (!mesh) {
          bus_busy = r.finish[i];
          bus_last = i;
        }
        break;
      }
    }
    r.binding[i] = bind;
    r.makespan = std::max(r.makespan, r.finish[i]);
  }
  return r;
}

// ------------------------------------------------------------- attribute

namespace {

struct OwnerAcc {
  SegKind kind = SegKind::kCompute;
  DurationPs ps = 0;
};

std::vector<Owner> sorted_owners(const std::map<std::string, OwnerAcc>& acc,
                                 TimePs makespan) {
  std::vector<Owner> out;
  out.reserve(acc.size());
  for (const auto& [name, a] : acc) {
    Owner o;
    o.name = name;
    o.kind = a.kind;
    o.ps = a.ps;
    o.share = makespan == 0
                  ? 0.0
                  : static_cast<double>(a.ps) / static_cast<double>(makespan);
    out.push_back(std::move(o));
  }
  std::sort(out.begin(), out.end(), [](const Owner& a, const Owner& b) {
    if (a.ps != b.ps) return a.ps > b.ps;
    return a.name < b.name;
  });
  return out;
}

}  // namespace

Attribution attribute(const DepGraph& g, const Retimed& r) {
  Attribution a;
  a.makespan = r.makespan;
  if (g.empty() || r.finish.size() != g.nodes().size()) return a;

  // Sink: latest finisher (lowest id on ties, for determinism).
  std::size_t sink = kNoNode;
  for (std::size_t i = 0; i < r.finish.size(); ++i) {
    if (r.dropped[i]) continue;
    if (sink == kNoNode || r.finish[i] > r.finish[sink]) sink = i;
  }
  if (sink == kNoNode) return a;

  // Binding chain, sink -> source. Contribution of a step is the slice of
  // time it alone explains: upper boundary minus its binding's finish
  // (clamped — a mesh predecessor can release the contended link before
  // its own node finishes). The sum telescopes to exactly the makespan.
  std::vector<PathStep> rev;
  TimePs upper = r.finish[sink];
  std::size_t cur = sink;
  while (cur != kNoNode) {
    const std::size_t b = r.binding[cur];
    const TimePs lower =
        b == kNoNode ? 0 : std::min<TimePs>(upper, r.finish[b]);
    rev.push_back({cur, upper - lower});
    upper = lower;
    cur = b;
  }
  a.path.assign(rev.rbegin(), rev.rend());

  std::map<std::string, OwnerAcc> tasks, chans, cores, links;
  auto bump = [](std::map<std::string, OwnerAcc>& m, const std::string& name,
                 SegKind k, DurationPs ps) {
    OwnerAcc& o = m[name];
    o.kind = k;
    o.ps += ps;
  };

  DurationPs accounted = 0;
  for (const PathStep& step : a.path) {
    const Segment& s = g.nodes()[step.node];
    const DurationPs c = step.contribution;
    accounted += c;
    switch (s.kind) {
      case SegKind::kCompute: {
        a.compute_ps += c;
        bump(tasks, s.label, s.kind, c);
        bump(cores, "core" + std::to_string(r.seg_src[step.node]), s.kind, c);
        break;
      }
      case SegKind::kTransfer: {
        a.transfer_ps += c;
        bump(chans, s.label, s.kind, c);
        const std::size_t src = r.seg_src[step.node];
        const std::size_t dst = r.seg_dst[step.node];
        if (src == dst) break;  // effective-local: no fabric to charge
        if (r.cfg.interconnect == sim::PlatformConfig::Icn::kSharedBus) {
          bump(links, "bus", s.kind, c);
        } else {
          const auto route = sim::mesh_route(
              r.cfg.mesh, sim::CoreId{static_cast<std::uint32_t>(src)},
              sim::CoreId{static_cast<std::uint32_t>(dst)});
          if (route.empty()) break;
          // Split evenly across the route; the first link absorbs the
          // integer remainder so the split stays exact.
          const DurationPs share = c / route.size();
          DurationPs rest = c - share * (route.size() - 1);
          for (const std::size_t link : route) {
            bump(links, "link" + std::to_string(link), s.kind,
                 link == route.front() ? rest : share);
            if (link == route.front()) rest = share;  // only first differs
          }
        }
        break;
      }
      case SegKind::kDma: {
        a.dma_ps += c;
        bump(links, "dma", s.kind, c);
        break;
      }
    }
  }
  a.idle_ps = a.makespan - accounted;

  a.by_task = sorted_owners(tasks, a.makespan);
  a.by_channel = sorted_owners(chans, a.makespan);
  a.by_core = sorted_owners(cores, a.makespan);
  a.by_link = sorted_owners(links, a.makespan);
  return a;
}

}  // namespace rw::critpath
