// Dependence graph over an execution trace.
//
// The paper's Sec. VII complaint, sharpened: a virtual platform tells you
// *that* a mapping is slow, not *why*. The missing artifact is the
// dependence DAG of what actually happened — task-compute, channel-transfer
// and DMA segments connected by happens-before edges (data dependences) and
// serialization edges (core and fabric occupancy). Given that DAG, "why is
// the makespan M?" becomes a longest-path walk and "what if the link were
// twice as wide?" becomes a re-timing pass — both O(trace events), neither
// a re-simulation.
//
// DepGraph is built from a perf::TraceView (the typed decoding of the raw
// trace) plus the sim::PlatformConfig the trace was produced on: the config
// supplies the *static* timing model (PE class/frequency per core, bus and
// mesh parameters, XY routes) that the what-if re-timer replays. Nodes keep
// the encounter order of their opening trace events, which for
// reservation-order executors (maps::execute_on_platform_traced) is exactly
// the order every platform resource serialized requests in; every edge goes
// forward in that order, so the graph is acyclic by construction and the
// re-timer is a single forward sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "perf/traceview.hpp"
#include "sim/platform.hpp"

namespace rw::critpath {

inline constexpr std::size_t kNoNode = ~static_cast<std::size_t>(0);

enum class SegKind : std::uint8_t { kCompute, kTransfer, kDma };

const char* seg_kind_name(SegKind k);

/// One node: a contiguous segment of platform activity.
struct Segment {
  std::size_t id = 0;
  SegKind kind = SegKind::kCompute;
  std::string label;

  // Compute segments.
  std::size_t pe = 0;
  std::uint64_t task = perf::kNoTask;
  Cycles cycles = 0;      // executed on `pe`
  Cycles ref_cycles = 0;  // reference-RISC cycles (0 when unknown)

  // Transfer segments.
  std::size_t src_pe = 0;
  std::size_t dst_pe = 0;
  std::uint64_t src_task = perf::kNoTask;
  std::uint64_t dst_task = perf::kNoTask;
  std::uint64_t bytes = 0;
  bool local = false;  // same-PE dependence record; never touched the fabric

  // Observed timing, from the trace.
  TimePs obs_start = 0;
  TimePs obs_finish = 0;

  [[nodiscard]] DurationPs obs_duration() const {
    return obs_finish - obs_start;
  }
};

enum class EdgeKind : std::uint8_t {
  kDependence,  // happens-before through data (task -> transfer -> task)
  kResource,    // serialization on a core, fabric link, or the DMA engine
};

struct DepEdge {
  std::size_t src = 0;
  std::size_t dst = 0;
  EdgeKind kind = EdgeKind::kDependence;

  bool operator==(const DepEdge&) const = default;
};

class DepGraph {
 public:
  /// Build from a decoded trace and the platform configuration it ran on.
  /// Tolerant of partial traces (spans referencing unknown tasks simply
  /// get fewer dependence edges); an empty view yields an empty graph.
  static DepGraph build(const perf::TraceView& view,
                        const sim::PlatformConfig& cfg);

  [[nodiscard]] const std::vector<Segment>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<DepEdge>& edges() const { return edges_; }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  /// Dependence predecessors of node `n` (indices into nodes()).
  [[nodiscard]] const std::vector<std::size_t>& dep_preds(
      std::size_t n) const {
    return dep_preds_.at(n);
  }

  /// Compute node owning task `t`, or kNoNode.
  [[nodiscard]] std::size_t node_of_task(std::uint64_t t) const;

  /// The platform model the trace was recorded on (what-if baselines edit
  /// copies of this).
  [[nodiscard]] const sim::PlatformConfig& platform() const { return cfg_; }
  [[nodiscard]] std::size_t num_pes() const { return cfg_.cores.size(); }

  /// Observed makespan (max segment finish).
  [[nodiscard]] TimePs observed_makespan() const { return obs_makespan_; }

  /// Every edge goes forward in node order; verified here rather than
  /// assumed (the invariant the tests hold the builder to).
  [[nodiscard]] bool is_acyclic() const;

  /// Edge-count bookkeeping against the source trace: nodes consume
  /// exactly two events each, and each transfer contributes at most two
  /// dependence edges (fewer when an endpoint task never appeared).
  [[nodiscard]] std::size_t dependence_edge_count() const;
  [[nodiscard]] std::size_t resource_edge_count() const;

 private:
  std::vector<Segment> nodes_;
  std::vector<DepEdge> edges_;
  std::vector<std::vector<std::size_t>> dep_preds_;
  std::vector<std::pair<std::uint64_t, std::size_t>> task_to_node_;  // sorted
  sim::PlatformConfig cfg_;
  TimePs obs_makespan_ = 0;
};

}  // namespace rw::critpath
