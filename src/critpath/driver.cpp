#include "critpath/driver.hpp"

#include <cmath>
#include <fstream>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "maps/mapping.hpp"
#include "maps/partition.hpp"
#include "maps/workloads.hpp"

namespace rw::critpath {

namespace {

constexpr double kErrorBound = 0.10;  // the what-if accuracy contract

bool write_text(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << content;
  return f.good();
}

sim::PlatformConfig platform_for(const CritOptions& opts, bool hetero) {
  sim::PlatformConfig cfg;
  if (hetero) {
    const std::size_t riscs = (opts.cores + 1) / 2;
    cfg = sim::PlatformConfig::heterogeneous(riscs, opts.cores - riscs);
  } else {
    cfg = sim::PlatformConfig::homogeneous(opts.cores);
  }
  if (opts.mesh) {
    cfg.interconnect = sim::PlatformConfig::Icn::kMesh;
    std::uint32_t w = 1;
    while (static_cast<std::size_t>(w) * w < opts.cores) ++w;
    cfg.mesh.width = w;
    cfg.mesh.height = (static_cast<std::uint32_t>(opts.cores) + w - 1) / w;
  }
  // Critical-path replay is cross-core by construction (every task can
  // touch every PE), so cores stay on tile 0 and --threads only selects
  // the parallel engine for any event-driven phases.
  if (opts.threads > 1)
    sim::apply_tiling(cfg, opts.threads, /*partition_cores=*/false);
  return cfg;
}

std::vector<maps::PeDesc> pes_of(const sim::PlatformConfig& cfg) {
  std::vector<maps::PeDesc> pes;
  pes.reserve(cfg.cores.size());
  for (const auto& c : cfg.cores) pes.push_back({c.cls, c.frequency});
  return pes;
}

void write_owners(json::Writer& w, const std::vector<Owner>& owners,
                  std::size_t limit = 8) {
  w.begin_array();
  for (std::size_t i = 0; i < owners.size() && i < limit; ++i) {
    w.begin_object();
    w.key("name").value(owners[i].name);
    w.key("kind").value(seg_kind_name(owners[i].kind));
    w.key("ps").value(owners[i].ps);
    w.key("share").value(owners[i].share);
    w.end_object();
  }
  w.end_array();
}

void write_workload(json::Writer& w, const WorkloadReport& r) {
  w.begin_object();
  w.key("name").value(r.name);
  w.key("observed_ps").value(r.observed);
  w.key("retimed_ps").value(r.retimed);
  w.key("nodes").value(static_cast<std::uint64_t>(r.nodes));
  w.key("dependence_edges").value(static_cast<std::uint64_t>(r.dep_edges));
  w.key("resource_edges").value(static_cast<std::uint64_t>(r.res_edges));
  w.key("trace_events").value(static_cast<std::uint64_t>(r.trace_events));
  w.key("attribution").begin_object();
  w.key("makespan_ps").value(r.attribution.makespan);
  w.key("compute_ps").value(r.attribution.compute_ps);
  w.key("transfer_ps").value(r.attribution.transfer_ps);
  w.key("dma_ps").value(r.attribution.dma_ps);
  w.key("idle_ps").value(r.attribution.idle_ps);
  w.key("path_steps").value(static_cast<std::uint64_t>(r.attribution.path.size()));
  w.key("by_task");
  write_owners(w, r.attribution.by_task);
  w.key("by_channel");
  write_owners(w, r.attribution.by_channel);
  w.key("by_core");
  write_owners(w, r.attribution.by_core);
  w.key("by_link");
  write_owners(w, r.attribution.by_link);
  w.end_object();
  w.key("whatifs").begin_array();
  for (const WhatIfRow& row : r.whatifs) {
    w.begin_object();
    w.key("edit").value(row.edit);
    w.key("predicted_ps").value(row.predicted);
    w.key("resim_ps").value(row.resim);
    w.key("rel_error").value(row.rel_error);
    w.key("speedup").value(row.speedup);
    w.key("ops").value(row.ops);
    w.end_object();
  }
  w.end_array();
  w.key("advice").begin_object();
  w.key("baseline_ps").value(r.advice.baseline_makespan);
  w.key("predicted_ps").value(r.advice.predicted_makespan);
  w.key("resim_ps").value(r.advice.resim_makespan);
  w.key("moves").value(static_cast<std::uint64_t>(r.advice.moves));
  w.key("reverted").value(r.advice.reverted);
  w.key("speedup").value(r.advice.speedup());
  w.key("ops").value(r.advice.ops);
  w.key("comm_fraction").value(r.advice.hints.comm_fraction);
  w.key("gang_cores").value(static_cast<std::uint64_t>(r.advice.hints.gang_cores));
  w.key("preferred_pes").begin_array();
  for (const std::size_t pe : r.advice.hints.preferred_pes)
    w.value(static_cast<std::uint64_t>(pe));
  w.end_array();
  w.key("task_to_pe").begin_array();
  for (const std::size_t pe : r.advice.task_to_pe)
    w.value(static_cast<std::uint64_t>(pe));
  w.end_array();
  w.end_object();
  w.end_object();
}

std::string workload_json(const CritOptions& opts, const WorkloadReport& r) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-critpath-1");
  w.key("cores").value(static_cast<std::uint64_t>(opts.cores));
  w.key("mesh").value(opts.mesh);
  w.key("seed").value(opts.seed);
  w.key("workload");
  write_workload(w, r);
  w.end_object();
  return w.str() + "\n";
}

}  // namespace

std::vector<Edit> sweep_edits(const DepGraph& dep, const Attribution& attr) {
  std::vector<Edit> edits;
  if (!attr.by_core.empty())
    edits.push_back(Edit::faster_core(
        static_cast<std::size_t>(std::stoul(attr.by_core.front().name.substr(4))),
        2.0));
  edits.push_back(Edit::faster_link(2.0));
  edits.push_back(Edit::wider_link(2.0));
  // Heaviest transfer on the path that joins two known tasks.
  for (auto it = attr.path.rbegin(); it != attr.path.rend(); ++it) {
    const Segment& s = dep.nodes()[it->node];
    if (s.kind != SegKind::kTransfer || s.src_task == perf::kNoTask ||
        s.dst_task == perf::kNoTask || it->contribution == 0)
      continue;
    edits.push_back(Edit::remove_dependence(s.src_task, s.dst_task));
    break;
  }
  return edits;
}

maps::CommCost comm_cost_for(const sim::PlatformConfig& cfg) {
  if (cfg.interconnect == sim::PlatformConfig::Icn::kSharedBus) {
    const sim::SharedBus::Config bus = cfg.bus;
    return [bus](std::size_t src, std::size_t dst,
                 std::uint64_t bytes) -> DurationPs {
      if (src == dst) return 0;
      return sim::bus_transfer_duration(bus, bytes);
    };
  }
  const sim::MeshNoc::Config mesh = cfg.mesh;
  return [mesh](std::size_t src, std::size_t dst,
                std::uint64_t bytes) -> DurationPs {
    if (src == dst) return 0;
    const auto route = sim::mesh_route(
        mesh, sim::CoreId{static_cast<std::uint32_t>(src)},
        sim::CoreId{static_cast<std::uint32_t>(dst)});
    if (route.empty()) return 0;
    return route.size() *
           (sim::mesh_serialization_time(mesh, bytes) + mesh.hop_latency);
  };
}

std::vector<std::string> corpus_names() {
  return {"pipeline3", "jpeg", "h264", "mixed"};
}

Result<CorpusCase> build_corpus_case(const std::string& name,
                                     const CritOptions& opts) {
  CorpusCase c;
  if (name == "pipeline3") {
    c.graph = maps::pipeline_taskgraph("pipe", 40'000, 0,
                                       sched::Criticality::kBestEffort);
    c.cfg = platform_for(opts, /*hetero=*/false);
  } else if (name == "jpeg") {
    maps::PartitionConfig pc;
    pc.max_tasks = std::max<std::size_t>(opts.cores, 4);
    c.graph = maps::partition_program(
                  maps::jpeg_encoder_program(opts.blocks), pc)
                  .graph;
    c.cfg = platform_for(opts, /*hetero=*/false);
  } else if (name == "h264") {
    c.graph = maps::h264_encoder_taskgraph(opts.slices);
    c.cfg = platform_for(opts, /*hetero=*/false);
  } else if (name == "mixed") {
    maps::PartitionConfig pc;
    pc.max_tasks = std::max<std::size_t>(opts.cores, 4);
    c.graph =
        maps::partition_program(maps::mixed_kind_program(6), pc).graph;
    c.cfg = platform_for(opts, /*hetero=*/true);
  } else {
    return make_error("unknown workload: " + name + " (try --list)");
  }
  c.task_to_pe =
      maps::heft_map(c.graph, pes_of(c.cfg), comm_cost_for(c.cfg)).task_to_pe;
  return c;
}

Result<CritOptions> parse_crit_args(const std::vector<std::string>& args) {
  CritOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (RW_TRY(cli::parse_common_flag(args, i, opts))) {
      continue;
    } else if (a == "--mesh") {
      opts.mesh = true;
    } else if (a == "--cores") {
      opts.cores = static_cast<std::size_t>(RW_TRY(cli::arg_u64(args, i, a)));
      if (opts.cores == 0) return make_error("--cores must be >= 1");
    } else if (a == "--rounds") {
      opts.rounds = static_cast<int>(RW_TRY(cli::arg_u64(args, i, a)));
    } else if (a == "--blocks") {
      opts.blocks =
          static_cast<std::uint32_t>(RW_TRY(cli::arg_u64(args, i, a)));
      if (opts.blocks == 0) return make_error("--blocks must be >= 1");
    } else if (a == "--slices") {
      opts.slices =
          static_cast<std::uint32_t>(RW_TRY(cli::arg_u64(args, i, a)));
      if (opts.slices == 0) return make_error("--slices must be >= 1");
    } else if (a == "--help" || a == "-h") {
      return make_error(std::string("usage: rwcritpath ") +
                        cli::common_usage() +
                        " [--mesh] [--cores N] [--rounds R] [--blocks B]"
                        " [--slices S] [workload...]");
    } else if (!a.empty() && a[0] == '-') {
      return make_error("unknown option: " + a);
    } else {
      opts.workloads.push_back(a);
    }
  }
  return opts;
}

std::string critpath_json(const CritOptions& opts,
                          const std::vector<WorkloadReport>& reports) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-critpath-1");
  w.key("cores").value(static_cast<std::uint64_t>(opts.cores));
  w.key("mesh").value(opts.mesh);
  w.key("seed").value(opts.seed);
  w.key("workloads").begin_array();
  for (const WorkloadReport& r : reports) write_workload(w, r);
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

CritReport run_critpath(const CritOptions& opts, std::ostream& out) {
  CritReport rep;
  if (opts.list) {
    out << "workloads:\n";
    for (const std::string& n : corpus_names()) out << "  " << n << "\n";
    out << "whatif edits: faster-core faster-link wider-link remove-dep"
           " advise\n";
    return rep;
  }

  std::vector<std::string> names =
      opts.workloads.empty() ? corpus_names() : opts.workloads;
  for (const std::string& name : names) {
    auto built = build_corpus_case(name, opts);
    if (!built.ok()) {
      out << built.error().to_string() << "\n";
      rep.exit_code = 2;
      return rep;
    }
    const CorpusCase& c = built.value();

    WorkloadReport r;
    r.name = name;
    const DepGraph dep = trace_mapping(c.graph, c.cfg, c.task_to_pe);
    const Retimed base = retime(dep, {}, &c.graph);
    r.observed = dep.observed_makespan();
    r.retimed = base.makespan;
    r.nodes = dep.nodes().size();
    r.dep_edges = dep.dependence_edge_count();
    r.res_edges = dep.resource_edge_count();
    r.trace_events = 2 * r.nodes;
    r.attribution = attribute(dep, base);

    for (const Edit& e : sweep_edits(dep, r.attribution)) {
      const std::vector<Edit> one{e};
      const Validation v = validate(c.graph, c.cfg, c.task_to_pe, one);
      WhatIfRow row;
      row.edit = e.describe();
      row.predicted = v.pred.predicted;
      row.resim = v.truth.edited;
      row.rel_error = v.rel_error;
      row.speedup = v.truth.edited == 0
                        ? 1.0
                        : static_cast<double>(v.truth.baseline) /
                              static_cast<double>(v.truth.edited);
      row.ops = v.pred.ops;
      if (row.rel_error > kErrorBound) rep.exit_code = 1;
      r.whatifs.push_back(std::move(row));
    }

    r.advice = advise_remap(c.graph, c.cfg, c.task_to_pe, opts.rounds);
    if (r.advice.resim_makespan > r.advice.baseline_makespan)
      rep.exit_code = 1;  // the never-slower contract

    if (opts.write_files) {
      r.json_path = opts.out_dir + "/CRITPATH_" + name + ".json";
      if (!write_text(r.json_path, workload_json(opts, r))) {
        out << "error: failed writing " << r.json_path << "\n";
        rep.exit_code = 1;
      }
    }
    rep.workloads.push_back(std::move(r));
  }

  if (opts.json_stdout) {
    const std::string legacy = critpath_json(opts, rep.workloads);
    if (opts.legacy_json)
      out << legacy;
    else
      out << cli::envelope("rwcritpath", opts.seed, legacy) << "\n";
    return rep;
  }

  out << strformat("== critical path: %zu cores %s, seed %llu\n\n", opts.cores,
                   opts.mesh ? "mesh" : "bus",
                   static_cast<unsigned long long>(opts.seed));
  Table t({"workload", "makespan_us", "compute", "transfer", "top owner",
           "edit", "pred_us", "resim_us", "err"});
  for (const WorkloadReport& r : rep.workloads) {
    const std::string top =
        r.attribution.by_task.empty() ? "-" : r.attribution.by_task.front().name;
    bool first = true;
    for (const WhatIfRow& row : r.whatifs) {
      t.add_row({first ? r.name : "",
                 first ? strformat("%.3f", static_cast<double>(r.observed) * 1e-6)
                       : "",
                 first ? Table::percent(r.attribution.makespan == 0
                                            ? 0.0
                                            : static_cast<double>(
                                                  r.attribution.compute_ps) /
                                                  static_cast<double>(
                                                      r.attribution.makespan))
                       : "",
                 first ? Table::percent(r.attribution.makespan == 0
                                            ? 0.0
                                            : static_cast<double>(
                                                  r.attribution.transfer_ps) /
                                                  static_cast<double>(
                                                      r.attribution.makespan))
                       : "",
                 first ? top : "", row.edit,
                 strformat("%.3f", static_cast<double>(row.predicted) * 1e-6),
                 strformat("%.3f", static_cast<double>(row.resim) * 1e-6),
                 strformat("%.4f", row.rel_error)});
      first = false;
    }
    t.add_row({first ? r.name : "", "", "", "", "",
               strformat("advise(%zu moves%s)", r.advice.moves,
                         r.advice.reverted ? ", reverted" : ""),
               strformat("%.3f",
                         static_cast<double>(r.advice.predicted_makespan) * 1e-6),
               strformat("%.3f",
                         static_cast<double>(r.advice.resim_makespan) * 1e-6),
               strformat("%.3fx", r.advice.speedup())});
  }
  out << t.to_string();
  for (const WorkloadReport& r : rep.workloads)
    if (!r.json_path.empty()) out << "\nwrote " << r.json_path;
  out << "\n";
  return rep;
}

}  // namespace rw::critpath
