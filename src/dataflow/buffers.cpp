#include "dataflow/buffers.hpp"

#include <numeric>

namespace rw::dataflow {

std::size_t BufferSizing::capacity_sum() const {
  return std::accumulate(capacities.begin(), capacities.end(),
                         std::size_t{0});
}

std::vector<std::size_t> capacity_lower_bounds(const Graph& g) {
  std::vector<std::size_t> lb;
  lb.reserve(g.edges().size());
  for (const auto& e : g.edges()) {
    // An edge must at least hold one producer burst plus the initial
    // tokens, and enough for one consumer burst to ever become ready.
    std::uint32_t pmax = 0, cmax = 0;
    for (const auto r : e.prod_rates) pmax = std::max(pmax, r);
    for (const auto r : e.cons_rates) cmax = std::max(cmax, r);
    lb.push_back(std::max<std::size_t>(pmax, cmax) + e.initial_tokens);
  }
  return lb;
}

BufferSizing compute_buffer_capacities(const Graph& g, ExecConfig cfg,
                                       int max_rounds,
                                       std::uint64_t check_iterations) {
  BufferSizing out;
  out.capacities = capacity_lower_bounds(g);
  cfg.acet = nullptr;  // design-time: WCETs
  cfg.iterations = check_iterations;

  for (int round = 0; round < max_rounds; ++round) {
    out.rounds = round + 1;
    cfg.buffer_capacities = out.capacities;
    const ExecResult r = run_data_driven(g, cfg);
    if (r.source_drops == 0 && r.sink_underruns == 0) {
      out.wait_free = true;
      break;
    }
    // Grow exactly the edges whose fullness gated a producer this round.
    bool grew = false;
    for (std::size_t i = 0; i < out.capacities.size(); ++i) {
      if (r.edge_full_blocks[i] > 0) {
        ++out.capacities[i];
        grew = true;
      }
    }
    if (!grew) break;  // underruns without any full edge: period infeasible
  }
  out.total_tokens = out.capacity_sum();
  return out;
}

}  // namespace rw::dataflow
