#include "dataflow/throughput.hpp"

#include <map>

namespace rw::dataflow {

DurationPs min_sustainable_period(const Graph& g, ExecConfig cfg,
                                  DurationPs lo, DurationPs hi) {
  auto feasible = [&](DurationPs period) {
    cfg.source_period = period;
    return compute_static_schedule(g, cfg).ok();
  };
  if (!feasible(hi)) return 0;  // nothing works even at the slow end
  while (lo < hi) {
    const DurationPs mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

ThroughputReport analyze_throughput(const Graph& g, ExecConfig cfg) {
  ThroughputReport rep;
  const DurationPs p = min_sustainable_period(g, cfg);
  if (p == 0) return rep;
  rep.min_period = p;
  rep.max_iterations_per_sec = 1e12 / static_cast<double>(p);

  // Core loads per iteration at WCET: cycles on each core / period.
  const auto rv = g.repetition_vector();
  if (!rv.ok()) return rep;
  std::map<std::size_t, DurationPs> core_time;
  std::map<std::size_t, std::pair<std::string, DurationPs>> heaviest;
  const std::size_t cores = std::max<std::size_t>(1, cfg.num_cores);
  for (std::size_t a = 0; a < g.actors().size(); ++a) {
    const Actor& actor = g.actors()[a];
    const std::size_t core = actor.core % cores;
    const std::uint64_t cycles_per_iter =
        rv.value().cycles[a] * actor.wcet_sum();
    const DurationPs t = cycles_to_ps(cycles_per_iter, cfg.frequency);
    core_time[core] += t;
    auto& h = heaviest[core];
    if (t >= h.second) h = {actor.name, t};
  }
  for (const auto& [core, t] : core_time) {
    const double load = static_cast<double>(t) / static_cast<double>(p);
    if (load > rep.bottleneck_core_load) {
      rep.bottleneck_core_load = load;
      rep.bottleneck_core = core;
      rep.bottleneck_actor = heaviest[core].first;
    }
  }
  return rep;
}

}  // namespace rw::dataflow
