// Back-pressure buffer capacity computation.
//
// Sec. III: "it is sufficient to show at design time that a valid schedule
// exists such that the periodic source and sink task can execute
// wait-free" (citing Wiggers et al., RTAS'07). This module computes
// per-edge buffer capacities under which the data-driven executor runs the
// periodic sources without drops and the periodic sinks without underruns,
// assuming WCETs hold. The search is a monotone grow-the-bottleneck loop:
// start from structural lower bounds, simulate with WCETs, and enlarge
// exactly the edges whose fullness gated a producer, until wait-free or
// the round budget is exhausted (unsustainable period).
#pragma once

#include <cstddef>
#include <vector>

#include "dataflow/executor.hpp"
#include "dataflow/graph.hpp"

namespace rw::dataflow {

struct BufferSizing {
  std::vector<std::size_t> capacities;  // per edge
  bool wait_free = false;  // sources never dropped, sinks never underran
  int rounds = 0;          // growth iterations used
  std::size_t total_tokens = 0;

  [[nodiscard]] std::size_t capacity_sum() const;
};

/// Compute sufficient capacities for `g` driven at cfg.source_period.
/// cfg.buffer_capacities is ignored; cfg.acet is ignored (WCETs are the
/// design-time contract). `check_iterations` graph iterations are
/// simulated per round.
BufferSizing compute_buffer_capacities(const Graph& g, ExecConfig cfg,
                                       int max_rounds = 256,
                                       std::uint64_t check_iterations = 64);

/// Structural lower bound for every edge (what any schedule needs).
std::vector<std::size_t> capacity_lower_bounds(const Graph& g);

}  // namespace rw::dataflow
