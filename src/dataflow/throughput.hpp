// Throughput analysis for (C)SDF graphs.
//
// Supports the Sec. III design flow: before buffer sizing, determine the
// maximum sustainable rate of the graph on the given cores. Self-timed
// execution of a strongly-connected/consistent dataflow graph converges
// to a periodic regime, so simulating warm iterations with WCETs and
// unbounded buffers measures the true maximum throughput; the bottleneck
// is whichever resource (actor chain or core) is saturated there.
#pragma once

#include <string>

#include "dataflow/executor.hpp"
#include "dataflow/graph.hpp"

namespace rw::dataflow {

struct ThroughputReport {
  double max_iterations_per_sec = 0;  // of the whole graph
  DurationPs min_period = 0;          // 1 / throughput, in ps
  std::size_t bottleneck_core = 0;    // most-loaded core
  double bottleneck_core_load = 0;    // its busy fraction at max rate
  std::string bottleneck_actor;       // heaviest actor on that core
};

/// Measure the graph's maximum self-timed throughput with WCETs on
/// cfg.num_cores cores (cfg.source_period is ignored; sources fire as
/// back-pressure permits). Deterministic.
ThroughputReport analyze_throughput(const Graph& g, ExecConfig cfg);

/// Smallest source period (ps) the graph sustains on this config —
/// binary-searched against compute_static_schedule feasibility, so it
/// agrees with what the executors accept.
DurationPs min_sustainable_period(const Graph& g, ExecConfig cfg,
                                  DurationPs lo = 1,
                                  DurationPs hi = kPsPerSecond);

}  // namespace rw::dataflow
