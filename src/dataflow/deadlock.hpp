// Dataflow deadlock detection.
//
// Sec. VII lists "system deadlocks" first among concurrent-software
// failure modes. In (C)SDF the classic cause is a dependency cycle with
// too few initial tokens: no actor on the cycle can ever fire. That is
// decidable at design time by abstract execution of one iteration with
// unbounded buffers — if the simulation wedges before every actor
// completes its repetition count, the blocked actors form the deadlock.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "dataflow/graph.hpp"

namespace rw::dataflow {

struct DeadlockReport {
  bool deadlocked = false;
  /// Actors that never completed their iteration quota, with the input
  /// edge each is starved on.
  struct BlockedActor {
    ActorId actor{};
    std::string actor_name;
    EdgeId starved_edge{};
    std::string edge_name;
    std::uint64_t tokens_present = 0;
    std::uint64_t tokens_needed = 0;
  };
  std::vector<BlockedActor> blocked;

  [[nodiscard]] std::string to_string() const;
  /// Emit as one JSON object ({deadlocked, blocked: [...]}), so design-
  /// time and run-time findings diff cleanly against rw::lint output.
  void to_json(json::Writer& w) const;
  [[nodiscard]] std::string to_json_string() const;
};

/// Abstractly execute one graph iteration (unbounded buffers, zero time).
/// Returns a report; deadlocked==false means one full iteration completes,
/// which for consistent SDF implies unbounded execution works.
DeadlockReport detect_deadlock(const Graph& g);

}  // namespace rw::dataflow
