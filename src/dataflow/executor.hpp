// Time-triggered and data-driven executors for (C)SDF graphs.
//
// The heart of Sec. III. Both executors run the same graph on the same
// cores with the same (possibly overrunning) execution times:
//
//   * kTimeTriggered — "timers periodically trigger the start of the task
//     executions": every firing starts at its design-time offset within a
//     periodic schedule, *whether or not its input data has arrived*. If a
//     producer overran, the consumer reads a stale/unwritten buffer slot
//     (counted as corruption); if a consumer lags, the producer overwrites
//     unread data (also corruption).
//
//   * kDataDriven — "the start of the execution of the tasks is triggered
//     by the arrival of data, except for the source and sink tasks which
//     are periodically triggered by a timer": internal actors fire only
//     when tokens and buffer space exist (back-pressure), so internal
//     corruption is impossible by construction; overruns surface only as
//     source drops or sink underruns, where the paper argues applications
//     are robust.
#pragma once

#include <functional>
#include <vector>

#include "dataflow/graph.hpp"

namespace rw::dataflow {

/// Per-firing actual execution time: (actor, firing index, phase WCET) ->
/// cycles actually needed. Default: exactly the WCET.
using ActorAcet =
    std::function<Cycles(const Actor&, std::uint64_t, Cycles)>;

struct ExecConfig {
  HertzT frequency = mhz(400);
  std::size_t num_cores = 1;       // actors run on core (Actor::core % n)
  DurationPs source_period = microseconds(100);
  std::uint64_t iterations = 100;  // graph iterations to drive
  std::vector<std::size_t> buffer_capacities;  // per edge; empty = default
  ActorAcet acet;                  // nullptr = WCET
};

struct ExecResult {
  std::uint64_t firings = 0;
  std::uint64_t stale_reads = 0;        // consumer ran before producer (TT)
  std::uint64_t overwrites = 0;         // producer clobbered unread data (TT)
  std::uint64_t source_drops = 0;       // source found no buffer space (DD)
  std::uint64_t sink_underruns = 0;     // sink timer found no data (DD)
  std::uint64_t sink_firings = 0;
  TimePs finish = 0;
  std::vector<std::uint64_t> edge_full_blocks;  // per edge: times it gated

  /// Any corruption of data *inside* the graph (the failures applications
  /// are NOT robust to, per Sec. III).
  [[nodiscard]] std::uint64_t internal_corruptions() const {
    return stale_reads + overwrites;
  }
  /// Effective sink throughput in firings per second.
  [[nodiscard]] double sink_throughput_hz() const {
    if (finish == 0) return 0.0;
    return static_cast<double>(sink_firings) * 1e12 /
           static_cast<double>(finish);
  }
};

/// Run the graph data-driven. Buffer capacities default to
/// max(prod)+max(cons)+initial per edge when not supplied.
ExecResult run_data_driven(const Graph& g, const ExecConfig& cfg);

/// Run the graph time-triggered against a static periodic schedule derived
/// from WCETs (self-timed WCET simulation supplies the per-firing offsets).
ExecResult run_time_triggered(const Graph& g, const ExecConfig& cfg);

/// The design-time schedule used by run_time_triggered: start offset of
/// every phase firing of one graph iteration, relative to the iteration
/// start, assuming WCETs hold.
struct StaticSchedule {
  struct Slot {
    ActorId actor{};
    std::uint64_t firing = 0;  // firing index within the iteration
    DurationPs offset = 0;
    DurationPs wcet_duration = 0;
  };
  std::vector<Slot> slots;        // sorted by offset
  DurationPs makespan = 0;        // WCET completion of one iteration
};
Result<StaticSchedule> compute_static_schedule(const Graph& g,
                                               const ExecConfig& cfg);

/// Default capacity heuristic for one edge.
std::size_t default_capacity(const Edge& e);

}  // namespace rw::dataflow
