#include "dataflow/graph.hpp"

#include <deque>

namespace rw::dataflow {

ActorId Graph::add_actor(std::string name, std::vector<Cycles> phase_wcet,
                         std::size_t core) {
  Actor a;
  a.id = ActorId{static_cast<std::uint32_t>(actors_.size())};
  a.name = std::move(name);
  a.phase_wcet = std::move(phase_wcet);
  a.core = core;
  actors_.push_back(std::move(a));
  return actors_.back().id;
}

EdgeId Graph::connect(ActorId src, ActorId dst,
                      std::vector<std::uint32_t> prod_rates,
                      std::vector<std::uint32_t> cons_rates,
                      std::uint32_t initial_tokens, std::string name) {
  Edge e;
  e.id = EdgeId{static_cast<std::uint32_t>(edges_.size())};
  e.name = name.empty() ? actors_.at(src.index()).name + "->" +
                              actors_.at(dst.index()).name
                        : std::move(name);
  e.src = src;
  e.dst = dst;
  e.prod_rates = std::move(prod_rates);
  e.cons_rates = std::move(cons_rates);
  e.initial_tokens = initial_tokens;
  edges_.push_back(std::move(e));
  return edges_.back().id;
}

std::vector<EdgeId> Graph::in_edges(ActorId a) const {
  std::vector<EdgeId> out;
  for (const auto& e : edges_)
    if (e.dst == a) out.push_back(e.id);
  return out;
}

std::vector<EdgeId> Graph::out_edges(ActorId a) const {
  std::vector<EdgeId> out;
  for (const auto& e : edges_)
    if (e.src == a) out.push_back(e.id);
  return out;
}

Status Graph::validate() const {
  for (const auto& a : actors_) {
    if (a.phase_wcet.empty())
      return make_error("actor '" + a.name + "' has no phases");
  }
  for (const auto& e : edges_) {
    if (e.src.index() >= actors_.size() || e.dst.index() >= actors_.size())
      return make_error("edge '" + e.name + "' has invalid endpoints");
    if (e.prod_rates.size() != actors_[e.src.index()].phases())
      return make_error("edge '" + e.name +
                        "': prod rate count != producer phase count");
    if (e.cons_rates.size() != actors_[e.dst.index()].phases())
      return make_error("edge '" + e.name +
                        "': cons rate count != consumer phase count");
    if (e.prod_per_cycle() == 0 || e.cons_per_cycle() == 0)
      return make_error("edge '" + e.name + "' moves no tokens");
  }
  return Status::ok_status();
}

namespace {

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

struct Fraction {
  std::uint64_t num = 0, den = 1;
  void reduce() {
    const std::uint64_t g = gcd_u64(num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
  }
};

}  // namespace

Result<RepetitionVector> Graph::repetition_vector() const {
  if (auto s = validate(); !s.ok()) return s.error();
  const std::size_t n = actors_.size();
  std::vector<Fraction> rate(n);
  std::vector<bool> set(n, false);

  // Propagate rates over the (undirected) edge structure, component by
  // component; the first actor of a component is pinned to 1. Components
  // are normalized independently (each sub-vector is minimal).
  std::vector<std::size_t> component(n, SIZE_MAX);
  std::size_t component_count = 0;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (set[seed]) continue;
    const std::size_t comp = component_count++;
    component[seed] = comp;
    rate[seed] = Fraction{1, 1};
    set[seed] = true;
    std::deque<std::size_t> work{seed};
    while (!work.empty()) {
      const std::size_t cur = work.front();
      work.pop_front();
      for (const auto& e : edges_) {
        std::size_t other;
        Fraction next;
        if (e.src.index() == cur) {
          other = e.dst.index();
          // r_dst = r_src * prod / cons.
          next = Fraction{rate[cur].num * e.prod_per_cycle(),
                          rate[cur].den * e.cons_per_cycle()};
        } else if (e.dst.index() == cur) {
          other = e.src.index();
          next = Fraction{rate[cur].num * e.cons_per_cycle(),
                          rate[cur].den * e.prod_per_cycle()};
        } else {
          continue;
        }
        next.reduce();
        if (!set[other]) {
          rate[other] = next;
          set[other] = true;
          component[other] = comp;
          work.push_back(other);
        } else if (rate[other].num * next.den !=
                   next.num * rate[other].den) {
          return make_error("inconsistent graph: balance equations "
                            "unsolvable at edge '" + e.name + "'");
        }
      }
    }
  }

  // Per component: scale fractions to the smallest integer vector —
  // multiply by lcm(denominators), then divide by gcd(numerators).
  RepetitionVector rv;
  rv.cycles.assign(n, 0);
  rv.firings.assign(n, 0);
  for (std::size_t comp = 0; comp < component_count; ++comp) {
    std::uint64_t den_lcm = 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (component[i] != comp) continue;
      const std::uint64_t g = gcd_u64(den_lcm, rate[i].den);
      den_lcm = den_lcm / g * rate[i].den;
    }
    std::uint64_t num_gcd = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (component[i] != comp) continue;
      rv.cycles[i] = rate[i].num * (den_lcm / rate[i].den);
      num_gcd = gcd_u64(num_gcd, rv.cycles[i]);
    }
    if (num_gcd > 1)
      for (std::size_t i = 0; i < n; ++i)
        if (component[i] == comp) rv.cycles[i] /= num_gcd;
  }
  for (std::size_t i = 0; i < n; ++i)
    rv.firings[i] = rv.cycles[i] * actors_[i].phases();
  return rv;
}

}  // namespace rw::dataflow
