#include "dataflow/executor.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace rw::dataflow {

std::size_t default_capacity(const Edge& e) {
  std::uint32_t pmax = 0, cmax = 0;
  for (const auto r : e.prod_rates) pmax = std::max(pmax, r);
  for (const auto r : e.cons_rates) cmax = std::max(cmax, r);
  return static_cast<std::size_t>(pmax) + cmax + e.initial_tokens;
}

namespace {

struct EdgeRt {
  std::uint64_t written = 0;  // tokens ever produced (incl. initial)
  std::uint64_t read = 0;     // tokens ever consumed
  std::size_t capacity = 0;
  [[nodiscard]] std::uint64_t level() const { return written - read; }
};

struct Event {
  TimePs time;
  int kind;  // 0 = start-request / tick, 1 = completion
  std::uint64_t seq;
  std::size_t actor;
  std::uint64_t payload;  // firing index or slot index
  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    // Completions (kind 1) run before start requests at the same instant,
    // so data produced "at t" is visible to a consumer starting "at t".
    if (kind != o.kind) return kind < o.kind;
    return seq > o.seq;
  }
};

using EventQueue =
    std::priority_queue<Event, std::vector<Event>, std::greater<>>;

struct Runtime {
  const Graph& g;
  const ExecConfig& cfg;
  std::vector<EdgeRt> edges;
  std::vector<std::uint64_t> fired;     // firings started, per actor
  std::vector<TimePs> core_free;
  std::vector<std::vector<EdgeId>> ins, outs;
  std::vector<bool> is_source, is_sink;
  ExecResult res;
  EventQueue q;
  std::uint64_t seq = 0;

  explicit Runtime(const Graph& graph, const ExecConfig& config)
      : g(graph), cfg(config) {
    const auto& es = g.edges();
    edges.resize(es.size());
    for (std::size_t i = 0; i < es.size(); ++i) {
      edges[i].written = es[i].initial_tokens;
      edges[i].capacity = cfg.buffer_capacities.empty()
                              ? default_capacity(es[i])
                              : cfg.buffer_capacities.at(i);
    }
    const std::size_t n = g.actors().size();
    fired.assign(n, 0);
    core_free.assign(std::max<std::size_t>(cfg.num_cores, 1), 0);
    ins.resize(n);
    outs.resize(n);
    is_source.assign(n, false);
    is_sink.assign(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      ins[i] = g.in_edges(ActorId{static_cast<std::uint32_t>(i)});
      outs[i] = g.out_edges(ActorId{static_cast<std::uint32_t>(i)});
      is_source[i] = ins[i].empty();
      is_sink[i] = outs[i].empty();
    }
    res.edge_full_blocks.assign(es.size(), 0);
  }

  [[nodiscard]] std::size_t core_of(std::size_t actor) const {
    return g.actors()[actor].core % core_free.size();
  }

  [[nodiscard]] Cycles firing_cycles(std::size_t actor,
                                     std::uint64_t firing) const {
    const Actor& a = g.actors()[actor];
    const Cycles wcet = a.phase_wcet[firing % a.phases()];
    return cfg.acet ? cfg.acet(a, firing, wcet) : wcet;
  }

  [[nodiscard]] DurationPs firing_duration(std::size_t actor,
                                           std::uint64_t firing) const {
    return cycles_to_ps(firing_cycles(actor, firing), cfg.frequency);
  }

  [[nodiscard]] std::uint32_t in_rate(const Edge& e,
                                      std::uint64_t firing) const {
    return e.cons_rates[firing % e.cons_rates.size()];
  }
  [[nodiscard]] std::uint32_t out_rate(const Edge& e,
                                       std::uint64_t firing) const {
    return e.prod_rates[firing % e.prod_rates.size()];
  }

  [[nodiscard]] bool inputs_ready(std::size_t actor) const {
    for (const EdgeId eid : ins[actor]) {
      const Edge& e = g.edge(eid);
      if (edges[eid.index()].level() < in_rate(e, fired[actor]))
        return false;
    }
    return true;
  }

  bool outputs_have_space(std::size_t actor, bool count_blocks) {
    bool ok = true;
    for (const EdgeId eid : outs[actor]) {
      const Edge& e = g.edge(eid);
      const auto& rt = edges[eid.index()];
      if (rt.capacity - std::min<std::uint64_t>(rt.level(), rt.capacity) <
          out_rate(e, fired[actor])) {
        ok = false;
        if (count_blocks) ++res.edge_full_blocks[eid.index()];
      }
    }
    return ok;
  }

  /// Consume inputs now; schedule completion (which produces outputs).
  void start_firing(std::size_t actor, TimePs start) {
    const std::uint64_t f = fired[actor]++;
    for (const EdgeId eid : ins[actor])
      edges[eid.index()].read += in_rate(g.edge(eid), f);
    const DurationPs dur = firing_duration(actor, f);
    core_free[core_of(actor)] = start + dur;
    ++res.firings;
    if (is_sink[actor]) ++res.sink_firings;
    q.push(Event{start + dur, 1, seq++, actor, f});
    res.finish = std::max(res.finish, start + dur);
  }

  void produce_outputs(std::size_t actor, std::uint64_t f,
                       bool check_overwrite) {
    for (const EdgeId eid : outs[actor]) {
      auto& rt = edges[eid.index()];
      rt.written += out_rate(g.edge(eid), f);
      if (check_overwrite && rt.level() > rt.capacity) {
        ++res.overwrites;
        ++res.edge_full_blocks[eid.index()];
        // Ring-buffer semantics: the oldest unread tokens are destroyed;
        // keep the level at capacity so counters stay meaningful.
        rt.read = rt.written - rt.capacity;
      }
    }
  }
};

}  // namespace

// ----------------------------------------------------------- data-driven

ExecResult run_data_driven(const Graph& g, const ExecConfig& cfg) {
  if (auto s = g.validate(); !s.ok())
    throw std::invalid_argument("invalid graph: " + s.error().to_string());
  Runtime rt(g, cfg);

  // Sink timers are offset by the design-time latency so the pipeline has
  // filled when the first sink tick arrives.
  DurationPs sink_offset = 0;
  if (auto sched = compute_static_schedule(g, cfg); sched.ok())
    sink_offset = sched.value().makespan;

  // Tick events for sources and sinks. kind 0 events carry payload = tick#.
  for (std::size_t a = 0; a < g.actors().size(); ++a) {
    if (rt.is_source[a] || rt.is_sink[a]) {
      const DurationPs offset = rt.is_sink[a] ? sink_offset : 0;
      for (std::uint64_t n = 0; n < cfg.iterations; ++n)
        rt.q.push(Event{offset + n * cfg.source_period, 0, rt.seq++, a, n});
    }
  }

  const std::uint64_t max_events =
      cfg.iterations * (g.actors().size() + g.edges().size() + 4) * 64 +
      65536;
  std::uint64_t budget = max_events;

  auto try_start_internal = [&](TimePs now) {
    // Fire every enabled internal actor whose core is idle; repeat until
    // quiescent (a firing may enable another on an idle core).
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t a = 0; a < g.actors().size(); ++a) {
        if (rt.is_source[a] || rt.is_sink[a]) continue;
        if (rt.core_free[rt.core_of(a)] > now) continue;
        if (!rt.inputs_ready(a)) continue;
        if (!rt.outputs_have_space(a, /*count_blocks=*/true)) continue;
        rt.start_firing(a, now);
        progress = true;
      }
    }
  };

  while (!rt.q.empty() && budget-- > 0) {
    const Event ev = rt.q.top();
    rt.q.pop();
    const TimePs now = ev.time;
    if (ev.kind == 1) {
      rt.produce_outputs(ev.actor, ev.payload, /*check_overwrite=*/false);
    } else if (rt.is_source[ev.actor]) {
      // Periodic source: fires if back-pressure allows, else the sample is
      // dropped at the edge of the system (robust, per the paper).
      if (rt.outputs_have_space(ev.actor, /*count_blocks=*/true)) {
        const TimePs start =
            std::max(now, rt.core_free[rt.core_of(ev.actor)]);
        rt.start_firing(ev.actor, start);
      } else {
        ++rt.res.source_drops;
      }
    } else if (rt.is_sink[ev.actor]) {
      // Periodic sink: consumes if data arrived, else underruns (the
      // previous sample would be repeated — quality loss, not corruption).
      if (rt.inputs_ready(ev.actor)) {
        const TimePs start =
            std::max(now, rt.core_free[rt.core_of(ev.actor)]);
        rt.start_firing(ev.actor, start);
      } else {
        ++rt.res.sink_underruns;
      }
    }
    try_start_internal(now);
  }
  return rt.res;
}

// -------------------------------------------------- static schedule (WCET)

Result<StaticSchedule> compute_static_schedule(const Graph& g,
                                               const ExecConfig& cfg) {
  if (auto s = g.validate(); !s.ok()) return s.error();
  const auto rv = g.repetition_vector();
  if (!rv.ok()) return rv.error();

  // The periodic-source/sink model ticks each source and sink once per
  // graph iteration; rate-mismatched sources would need sub-period timers.
  for (std::size_t a = 0; a < g.actors().size(); ++a) {
    const auto aid = ActorId{static_cast<std::uint32_t>(a)};
    const bool boundary = g.in_edges(aid).empty() || g.out_edges(aid).empty();
    if (boundary && rv.value().firings[a] != 1)
      return make_error("source/sink actor '" + g.actors()[a].name +
                        "' must fire exactly once per iteration (has " +
                        std::to_string(rv.value().firings[a]) + ")");
  }

  // Per-core utilization must fit the period: each core executes
  // rv.cycles[a] * wcet_sum(a) cycles per graph iteration. This is the
  // load-based feasibility test; the warm-up simulation below can be
  // fooled by its own drain phase (actors bunch at their private rate
  // once sources stop), so it must not be the only gate.
  {
    const std::size_t cores = std::max<std::size_t>(1, cfg.num_cores);
    std::vector<std::uint64_t> core_cycles(cores, 0);
    for (std::size_t a = 0; a < g.actors().size(); ++a)
      core_cycles[g.actors()[a].core % cores] +=
          rv.value().cycles[a] * g.actors()[a].wcet_sum();
    for (std::size_t c = 0; c < cores; ++c) {
      if (cycles_to_ps(core_cycles[c], cfg.frequency) > cfg.source_period)
        return make_error(
            "period " + format_time(cfg.source_period) +
            " unsustainable: core " + std::to_string(c) + " needs " +
            format_time(cycles_to_ps(core_cycles[c], cfg.frequency)) +
            " per iteration");
    }
  }

  // Self-timed WCET simulation with unbounded buffers: sources throttled
  // to the period, everything else fires on data. The offsets of the last
  // warm-up iteration are the schedule; if they have not stabilized the
  // requested period is unsustainable.
  constexpr std::uint64_t kWarm = 8;
  ExecConfig wcfg = cfg;
  wcfg.acet = nullptr;  // design time uses WCETs

  Runtime rt(g, wcfg);
  for (auto& e : rt.edges) e.capacity = UINT64_MAX / 4;  // unbounded

  std::vector<std::vector<TimePs>> starts(g.actors().size());

  for (std::size_t a = 0; a < g.actors().size(); ++a)
    if (rt.is_source[a])
      for (std::uint64_t n = 0; n < kWarm; ++n)
        rt.q.push(Event{n * cfg.source_period, 0, rt.seq++, a, n});

  // If there are no sources (fully cyclic graph), seed with whichever
  // actors are initially enabled; they self-time from t=0.
  auto record_start = [&](std::size_t a, TimePs t) {
    starts[a].push_back(t);
  };

  auto fire_enabled = [&](TimePs now) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t a = 0; a < g.actors().size(); ++a) {
        if (rt.is_source[a]) continue;
        if (rt.fired[a] >= kWarm * rv.value().firings[a]) continue;
        if (rt.core_free[rt.core_of(a)] > now) continue;
        if (!rt.inputs_ready(a)) continue;
        record_start(a, now);
        rt.start_firing(a, now);
        progress = true;
      }
    }
  };

  std::uint64_t budget = 1'000'000;
  while (!rt.q.empty() && budget-- > 0) {
    const Event ev = rt.q.top();
    rt.q.pop();
    if (ev.kind == 1) {
      rt.produce_outputs(ev.actor, ev.payload, false);
    } else {
      const TimePs start =
          std::max(ev.time, rt.core_free[rt.core_of(ev.actor)]);
      record_start(ev.actor, start);
      rt.start_firing(ev.actor, start);
    }
    fire_enabled(ev.time);
  }

  const auto& firings_per_iter = rv.value().firings;
  const TimePs last_iter_begin = (kWarm - 1) * cfg.source_period;

  StaticSchedule sched;
  for (std::size_t a = 0; a < g.actors().size(); ++a) {
    const std::uint64_t fpi = firings_per_iter[a];
    if (starts[a].size() < kWarm * fpi)
      return make_error("actor '" + g.actors()[a].name +
                        "' did not complete the warm-up: graph deadlocks "
                        "or period is unsustainable");
    for (std::uint64_t j = 0; j < fpi; ++j) {
      const TimePs cur = starts[a][(kWarm - 1) * fpi + j];
      const TimePs prev = starts[a][(kWarm - 2) * fpi + j];
      // Stabilized self-timed execution repeats with the source period.
      if (cur - prev > cfg.source_period)
        return make_error("period " + format_time(cfg.source_period) +
                          " unsustainable for actor '" +
                          g.actors()[a].name + "'");
      StaticSchedule::Slot slot;
      slot.actor = ActorId{static_cast<std::uint32_t>(a)};
      slot.firing = j;
      slot.offset = cur - last_iter_begin;
      slot.wcet_duration = cycles_to_ps(
          g.actors()[a].phase_wcet[j % g.actors()[a].phases()],
          cfg.frequency);
      sched.makespan =
          std::max(sched.makespan, slot.offset + slot.wcet_duration);
      sched.slots.push_back(slot);
    }
  }
  std::sort(sched.slots.begin(), sched.slots.end(),
            [](const StaticSchedule::Slot& x, const StaticSchedule::Slot& y) {
              if (x.offset != y.offset) return x.offset < y.offset;
              return x.actor < y.actor;
            });
  return sched;
}

// --------------------------------------------------------- time-triggered

ExecResult run_time_triggered(const Graph& g, const ExecConfig& cfg) {
  auto sched = compute_static_schedule(g, cfg);
  if (!sched.ok())
    throw std::runtime_error("time-triggered schedule infeasible: " +
                             sched.error().to_string());
  Runtime rt(g, cfg);

  // Every slot of every iteration becomes a start-request event.
  for (std::uint64_t n = 0; n < cfg.iterations; ++n) {
    for (std::size_t s = 0; s < sched.value().slots.size(); ++s) {
      const auto& slot = sched.value().slots[s];
      rt.q.push(Event{n * cfg.source_period + slot.offset, 0, rt.seq++,
                      slot.actor.index(), s});
    }
  }

  while (!rt.q.empty()) {
    const Event ev = rt.q.top();
    rt.q.pop();
    if (ev.kind == 1) {
      rt.produce_outputs(ev.actor, ev.payload, /*check_overwrite=*/true);
      continue;
    }
    // Start request: if the core is still busy (an earlier firing overran)
    // the start cascades later; otherwise the firing begins *now*, reading
    // its inputs whether or not they were produced (the time-triggered
    // hazard).
    const std::size_t a = ev.actor;
    const TimePs core_free = rt.core_free[rt.core_of(a)];
    if (core_free > ev.time) {
      rt.q.push(Event{core_free, 0, rt.seq++, a, ev.payload});
      continue;
    }
    const std::uint64_t f = rt.fired[a];
    for (const EdgeId eid : rt.ins[a]) {
      const Edge& e = g.edge(eid);
      const auto need = rt.in_rate(e, f);
      auto& ert = rt.edges[eid.index()];
      if (ert.written < ert.read + need) {
        // Producer has not delivered yet: the consumer reads stale data.
        ++rt.res.stale_reads;
        // It still advances its read pointer over the (garbage) slots.
        ert.written = ert.read + need;  // materialize the garbage tokens
      }
    }
    rt.start_firing(a, ev.time);
  }
  return rt.res;
}

}  // namespace rw::dataflow
