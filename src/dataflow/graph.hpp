// Cyclo-static dataflow (CSDF) graph model.
//
// Sec. III's data-driven systems (NXP Hijdra / CoMPSoC) are programmed as
// dataflow graphs: actors fire when input data arrives, edges are bounded
// FIFOs with back-pressure, and sources/sinks are periodic. SDF is the
// single-phase special case. The model carries per-phase WCETs and rates,
// supports the consistency (repetition-vector) check, and is shared by the
// buffer-sizing analysis and both executors.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace rw::dataflow {

struct ActorTag {};
using ActorId = Id<ActorTag>;
struct EdgeTag {};
using EdgeId = Id<EdgeTag>;

/// CSDF actor: fires through its phases cyclically; phase k consumes /
/// produces the rates at index k of each incident edge and takes
/// phase_wcet[k] cycles.
struct Actor {
  ActorId id{};
  std::string name;
  std::vector<Cycles> phase_wcet;  // one entry per phase, >= 1 phase
  std::size_t core = 0;            // processing element this actor runs on

  [[nodiscard]] std::size_t phases() const { return phase_wcet.size(); }
  [[nodiscard]] Cycles wcet_sum() const {
    return std::accumulate(phase_wcet.begin(), phase_wcet.end(), Cycles{0});
  }
  [[nodiscard]] Cycles max_wcet() const {
    Cycles m = 0;
    for (const Cycles c : phase_wcet) m = std::max(m, c);
    return m;
  }
};

/// Directed FIFO edge with per-phase rates. `prod_rates` has one entry per
/// producer phase; `cons_rates` one per consumer phase.
struct Edge {
  EdgeId id{};
  std::string name;
  ActorId src{};
  ActorId dst{};
  std::vector<std::uint32_t> prod_rates;
  std::vector<std::uint32_t> cons_rates;
  std::uint32_t initial_tokens = 0;

  [[nodiscard]] std::uint64_t prod_per_cycle() const {
    return std::accumulate(prod_rates.begin(), prod_rates.end(),
                           std::uint64_t{0});
  }
  [[nodiscard]] std::uint64_t cons_per_cycle() const {
    return std::accumulate(cons_rates.begin(), cons_rates.end(),
                           std::uint64_t{0});
  }
};

/// Repetition vector entry: how many *phase firings* of the actor make up
/// one graph iteration (always a multiple of the actor's phase count).
struct RepetitionVector {
  std::vector<std::uint64_t> firings;     // per actor, in phase firings
  std::vector<std::uint64_t> cycles;      // per actor, in full CSDF cycles
};

class Graph {
 public:
  ActorId add_actor(std::string name, std::vector<Cycles> phase_wcet,
                    std::size_t core = 0);
  /// SDF convenience: single-phase actor.
  ActorId add_actor(std::string name, Cycles wcet, std::size_t core = 0) {
    return add_actor(std::move(name), std::vector<Cycles>{wcet}, core);
  }

  EdgeId connect(ActorId src, ActorId dst,
                 std::vector<std::uint32_t> prod_rates,
                 std::vector<std::uint32_t> cons_rates,
                 std::uint32_t initial_tokens = 0, std::string name = "");
  /// SDF convenience: scalar rates.
  EdgeId connect(ActorId src, ActorId dst, std::uint32_t prod,
                 std::uint32_t cons, std::uint32_t initial_tokens = 0) {
    return connect(src, dst, std::vector<std::uint32_t>{prod},
                   std::vector<std::uint32_t>{cons}, initial_tokens);
  }

  [[nodiscard]] const std::vector<Actor>& actors() const { return actors_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const Actor& actor(ActorId a) const {
    return actors_.at(a.index());
  }
  [[nodiscard]] const Edge& edge(EdgeId e) const {
    return edges_.at(e.index());
  }

  [[nodiscard]] std::vector<EdgeId> in_edges(ActorId a) const;
  [[nodiscard]] std::vector<EdgeId> out_edges(ActorId a) const;

  /// Structural validation: rate vectors match phase counts, endpoints
  /// valid. Returns the first problem found.
  [[nodiscard]] Status validate() const;

  /// Solve the balance equations r_src * prod_per_cycle = r_dst *
  /// cons_per_cycle over the connected graph. Fails when the graph is
  /// inconsistent (no bounded-memory schedule exists) or disconnected
  /// pieces disagree. firings[i] = cycles[i] * phases(i).
  [[nodiscard]] Result<RepetitionVector> repetition_vector() const;

 private:
  std::vector<Actor> actors_;
  std::vector<Edge> edges_;
};

}  // namespace rw::dataflow
