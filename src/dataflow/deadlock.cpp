#include "dataflow/deadlock.hpp"

#include "common/strings.hpp"

namespace rw::dataflow {

std::string DeadlockReport::to_string() const {
  if (!deadlocked) return "no deadlock: one full iteration completes";
  std::string s = "DEADLOCK: ";
  for (const auto& b : blocked) {
    s += strformat("%s starved on %s (%llu of %llu tokens); ",
                   b.actor_name.c_str(), b.edge_name.c_str(),
                   static_cast<unsigned long long>(b.tokens_present),
                   static_cast<unsigned long long>(b.tokens_needed));
  }
  return s;
}

void DeadlockReport::to_json(json::Writer& w) const {
  w.begin_object();
  w.key("deadlocked").value(deadlocked);
  w.key("blocked").begin_array();
  for (const auto& b : blocked) {
    w.begin_object();
    w.key("actor").value(b.actor_name);
    w.key("starved_edge").value(b.edge_name);
    w.key("tokens_present").value(
        static_cast<std::uint64_t>(b.tokens_present));
    w.key("tokens_needed").value(
        static_cast<std::uint64_t>(b.tokens_needed));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string DeadlockReport::to_json_string() const {
  json::Writer w;
  to_json(w);
  return w.str();
}

DeadlockReport detect_deadlock(const Graph& g) {
  DeadlockReport rep;
  const auto rv = g.repetition_vector();
  if (!rv.ok()) {
    // Inconsistent graphs cannot run at all; report every actor blocked.
    rep.deadlocked = true;
    for (const auto& a : g.actors())
      rep.blocked.push_back({a.id, a.name, EdgeId{}, "inconsistent graph",
                             0, 0});
    return rep;
  }

  std::vector<std::uint64_t> tokens(g.edges().size());
  for (std::size_t e = 0; e < g.edges().size(); ++e)
    tokens[e] = g.edges()[e].initial_tokens;
  std::vector<std::uint64_t> fired(g.actors().size(), 0);

  // Greedy abstract execution: fire any actor that has inputs and quota.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t a = 0; a < g.actors().size(); ++a) {
      const auto aid = ActorId{static_cast<std::uint32_t>(a)};
      if (fired[a] >= rv.value().firings[a]) continue;
      bool ready = true;
      for (const EdgeId eid : g.in_edges(aid)) {
        const Edge& e = g.edge(eid);
        const auto need = e.cons_rates[fired[a] % e.cons_rates.size()];
        if (tokens[eid.index()] < need) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      for (const EdgeId eid : g.in_edges(aid)) {
        const Edge& e = g.edge(eid);
        tokens[eid.index()] -= e.cons_rates[fired[a] % e.cons_rates.size()];
      }
      for (const EdgeId eid : g.out_edges(aid)) {
        const Edge& e = g.edge(eid);
        tokens[eid.index()] += e.prod_rates[fired[a] % e.prod_rates.size()];
      }
      ++fired[a];
      progress = true;
    }
  }

  for (std::size_t a = 0; a < g.actors().size(); ++a) {
    if (fired[a] >= rv.value().firings[a]) continue;
    rep.deadlocked = true;
    DeadlockReport::BlockedActor b;
    b.actor = ActorId{static_cast<std::uint32_t>(a)};
    b.actor_name = g.actors()[a].name;
    for (const EdgeId eid : g.in_edges(b.actor)) {
      const Edge& e = g.edge(eid);
      const auto need = e.cons_rates[fired[a] % e.cons_rates.size()];
      if (tokens[eid.index()] < need) {
        b.starved_edge = eid;
        b.edge_name = e.name;
        b.tokens_present = tokens[eid.index()];
        b.tokens_needed = need;
        break;
      }
    }
    rep.blocked.push_back(std::move(b));
  }
  return rep;
}

}  // namespace rw::dataflow
