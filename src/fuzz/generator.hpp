// rw::fuzz — seed -> CampaignCase.
//
// Pure function: generate_case(seed, cfg) always returns the same case,
// so a campaign is replayable from its base seed alone and any failing
// case regenerates from the seed recorded in its report. The generator
// draws the family by weight (the fault pipeline dominates — it is the
// richest oracle and the one the seeded-defect selftest must reach),
// sizes the platform small enough that thousands of seeds finish in
// seconds, and materializes the fault plan up front (FaultPlan::random
// windowed to an estimate of the healthy makespan) so the shrinker can
// delete individual events.
//
// A DirectedTarget pins the axes of one coverage cell — family, fault
// kind (single-kind RandomSpec mask), queue policy, exec mode — which is
// how the campaign's fill phase lights up cells the random sweep missed.
#pragma once

#include <cstdint>

#include "fuzz/case.hpp"
#include "fuzz/coverage.hpp"

namespace rw::fuzz {

/// Pin a case to one coverage cell (see CoverageCell for the axes).
struct DirectedTarget {
  Family family = Family::kPipeline;
  int kind = CoverageCell::kFaultFree;
  sim::QueuePolicy policy = sim::QueuePolicy::kCalendar;
  bool parallel = false;
};

struct GeneratorConfig {
  /// Shrink every range to its floor (CI smoke: --tiny).
  bool tiny = false;
  /// Restrict families (family_bit() mask); 0 = all.
  std::uint32_t family_mask = 0;
  /// When set, pin the case to this cell.
  const DirectedTarget* target = nullptr;
};

/// Deterministic case for `seed`. A directed target is honoured exactly
/// for family/policy/exec; the plan is single-kind but may come out
/// empty for unlucky seeds (the campaign retries nearby seeds until the
/// kind actually lands).
[[nodiscard]] CampaignCase generate_case(std::uint64_t seed,
                                         const GeneratorConfig& cfg = {});

}  // namespace rw::fuzz
