#include "fuzz/driver.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"
#include "fault/plan.hpp"
#include "sim/core.hpp"

namespace rw::fuzz {
namespace {

bool write_text(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << content;
  return f.good();
}

Result<std::string> read_text(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return make_error("cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void print_list(std::ostream& out) {
  out << "families:\n";
  for (std::size_t f = 0; f < kNumFamilies; ++f) {
    const Family fam = static_cast<Family>(f);
    out << "  " << family_name(fam)
        << (family_faultable(fam) ? "" : " (fault-free only)") << "\n";
  }
  out << "invariants:\n";
  for (const std::string& name : invariant_names()) out << "  " << name << "\n";
  out << "fault kinds:\n";
  for (std::size_t k = 0; k < fault::kNumFaultKinds; ++k)
    out << "  " << fault_kind_name(static_cast<fault::FaultKind>(k)) << "\n";
}

/// RAII arm/disarm so the defect hook never leaks past the run.
class DefectGuard {
 public:
  explicit DefectGuard(bool arm) : armed_(arm) {
    if (armed_) sim::set_seeded_defect(true);
  }
  ~DefectGuard() {
    if (armed_) sim::set_seeded_defect(false);
  }
  DefectGuard(const DefectGuard&) = delete;
  DefectGuard& operator=(const DefectGuard&) = delete;

 private:
  bool armed_;
};

int run_replay(const FuzzOptions& opts, std::ostream& out) {
  const auto text = read_text(opts.replay_path);
  if (!text.ok()) {
    out << "error: " << text.error().to_string() << "\n";
    return 2;
  }
  const auto parsed = CampaignCase::from_json(text.value());
  if (!parsed.ok()) {
    out << "error: " << opts.replay_path << ": "
        << parsed.error().to_string() << "\n";
    return 2;
  }
  const CampaignCase& c = parsed.value();
  out << "replaying " << c.summary() << "\n";
  const CaseOutcome outcome = run_case(c);
  out << strformat("sub-runs %llu, makespan %llu ps, fingerprint %016llx\n",
                   static_cast<unsigned long long>(outcome.sub_runs),
                   static_cast<unsigned long long>(outcome.makespan),
                   static_cast<unsigned long long>(outcome.fingerprint));
  if (outcome.ok()) {
    out << "all invariants hold\n";
    return 0;
  }
  for (const Violation& v : outcome.violations)
    out << "VIOLATION " << v.invariant << ": " << v.detail << "\n";
  return 1;
}

Result<std::uint32_t> family_mask_for(const std::string& name) {
  if (name.empty()) return std::uint32_t{0};
  Family fam = Family::kPipeline;
  if (!family_from_name(name, fam))
    return make_error("unknown family: " + name);
  return family_bit(fam);
}

}  // namespace

Result<FuzzOptions> parse_fuzz_args(const std::vector<std::string>& args) {
  FuzzOptions opts;
  bool threads_given = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--threads") threads_given = true;
    if (RW_TRY(cli::parse_common_flag(args, i, opts))) {
      continue;
    } else if (a == "--seeds") {
      opts.seeds = RW_TRY(cli::arg_u64(args, i, a));
      if (opts.seeds == 0) return make_error("--seeds must be >= 1");
    } else if (a == "--minutes") {
      opts.minutes = static_cast<double>(RW_TRY(cli::arg_u64(args, i, a)));
    } else if (a == "--shrink") {
      opts.shrink = true;  // the default; kept for explicit invocations
    } else if (a == "--no-shrink") {
      opts.shrink = false;
    } else if (a == "--matrix") {
      opts.matrix = true;
    } else if (a == "--tiny") {
      opts.tiny = true;
    } else if (a == "--defect") {
      opts.defect = true;
    } else if (a == "--family") {
      if (i + 1 >= args.size()) return make_error("--family requires a value");
      opts.family = args[++i];
    } else if (a == "--replay") {
      if (i + 1 >= args.size()) return make_error("--replay requires a value");
      opts.replay_path = args[++i];
    } else if (a == "--help" || a == "-h") {
      return make_error(std::string("usage: rwfuzz ") + cli::common_usage() +
                        " [--seeds N] [--minutes M] [--shrink|--no-shrink]"
                        " [--matrix] [--tiny] [--family NAME]"
                        " [--replay FILE] [--defect]");
    } else {
      return make_error("unknown option: " + a);
    }
  }
  if (!threads_given) opts.threads = 0;  // 0 = hardware-width pool
  RW_TRY(family_mask_for(opts.family));  // validate early
  return opts;
}

FuzzReport run_fuzz(const FuzzOptions& opts, std::ostream& out) {
  FuzzReport rep;
  if (opts.list) {
    print_list(out);
    return rep;
  }
  if (opts.defect && !sim::seeded_defect_compiled()) {
    out << "error: --defect requires a build with -DRW_SEEDED_DEFECT=ON\n";
    rep.exit_code = 2;
    return rep;
  }
  const DefectGuard guard(opts.defect);

  if (!opts.replay_path.empty()) {
    rep.exit_code = run_replay(opts, out);
    return rep;
  }

  CampaignConfig cfg;
  cfg.seeds = opts.seeds;
  cfg.base_seed = opts.seed;
  cfg.minutes = opts.minutes;
  cfg.shrink = opts.shrink;
  cfg.tiny = opts.tiny;
  cfg.threads = opts.threads;
  cfg.family_mask = family_mask_for(opts.family).value_or(0);
  rep.campaign = run_campaign(cfg);
  const CampaignReport& camp = rep.campaign;
  if (!camp.green()) rep.exit_code = 1;

  std::vector<std::string> wrote;
  bool write_failed = false;
  if (opts.write_files) {
    const std::string path = opts.out_dir + "/FUZZ_campaign.json";
    if (write_text(path, camp.to_json() + "\n"))
      wrote.push_back(path);
    else
      write_failed = true;
    for (const FailureReport& f : camp.failures) {
      const std::string case_path =
          strformat("%s/FUZZ_case_%llu.json", opts.out_dir.c_str(),
                    static_cast<unsigned long long>(f.case_seed));
      const std::string stub_path =
          strformat("%s/FUZZ_stub_%llu.cpp", opts.out_dir.c_str(),
                    static_cast<unsigned long long>(f.case_seed));
      if (write_text(case_path, f.minimal.to_json() + "\n"))
        wrote.push_back(case_path);
      else
        write_failed = true;
      if (write_text(stub_path, f.regression_stub()))
        wrote.push_back(stub_path);
      else
        write_failed = true;
    }
  }
  if (write_failed && rep.exit_code == 0) rep.exit_code = 2;

  if (opts.json_stdout) {
    const std::string legacy = camp.to_json() + "\n";
    if (opts.legacy_json)
      out << legacy;
    else
      out << cli::envelope("rwfuzz", opts.seed, legacy) << "\n";
    return rep;
  }

  out << strformat("== rwfuzz campaign: %llu seeds (base %llu)%s%s\n\n",
                   static_cast<unsigned long long>(opts.seeds),
                   static_cast<unsigned long long>(opts.seed),
                   opts.tiny ? ", tiny" : "",
                   opts.defect ? ", seeded defect armed" : "");
  out << camp.summary_table().to_string() << "\n";
  if (opts.matrix) {
    out << "coverage (family x kind, policy/exec collapsed):\n"
        << camp.coverage.to_table().to_string() << "\n";
  }
  for (const FailureReport& f : camp.failures) {
    out << "FAILURE seed " << f.case_seed << ": " << f.violation.invariant
        << " — " << f.violation.detail << "\n";
    out << "  original: " << f.original.summary() << "\n";
    if (f.shrunk)
      out << strformat("  shrunk (%llu steps, %llu attempts%s): %s\n",
                       static_cast<unsigned long long>(f.shrink_steps),
                       static_cast<unsigned long long>(f.shrink_attempts),
                       f.shrink_at_budget ? ", at budget" : "",
                       f.minimal.summary().c_str());
  }
  if (write_failed) out << "error: failed writing output files\n";
  for (const std::string& path : wrote) out << "wrote " << path << "\n";
  out << (camp.green() ? "campaign green\n" : "campaign FAILED\n");
  return rep;
}

}  // namespace rw::fuzz
