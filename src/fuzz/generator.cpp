#include "fuzz/generator.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "sim/interconnect.hpp"

namespace rw::fuzz {
namespace {

// Family weights for the random draw. The fault pipeline dominates: it
// composes the most subsystems (kernel + channels + semaphores + watchdog
// + recovery + injector) and is the family the seeded-defect selftest
// must reach often enough to trip within its 200-seed budget.
constexpr std::uint32_t kFamilyWeights[kNumFamilies] = {2, 2, 2, 2, 6, 2, 1};

Family pick_family(Rng& rng, std::uint32_t mask) {
  if (mask == 0) mask = (1u << kNumFamilies) - 1;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumFamilies; ++i)
    if (mask & (1u << i)) total += kFamilyWeights[i];
  std::uint64_t pick = rng.next_below(total == 0 ? 1 : total);
  for (std::size_t i = 0; i < kNumFamilies; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    if (pick < kFamilyWeights[i]) return static_cast<Family>(i);
    pick -= kFamilyWeights[i];
  }
  return Family::kFaultPipeline;
}

/// Mesh link count of the case's fabric (0 on a bus), so the plan can
/// target individual links. Built from the real platform, not a formula,
/// so it can never drift from MeshNoc's layout.
std::size_t case_num_links(const CampaignCase& c) {
  if (!c.mesh) return 0;
  sim::Platform plat(c.platform_config(sim::QueuePolicy::kCalendar, false));
  auto* mesh = dynamic_cast<sim::MeshNoc*>(&plat.interconnect());
  return mesh ? mesh->num_links() : 0;
}

}  // namespace

CampaignCase generate_case(std::uint64_t seed, const GeneratorConfig& cfg) {
  Rng rng(seed);
  CampaignCase c;
  c.seed = seed;

  // Every field is drawn in one fixed order regardless of which family
  // ends up reading it, so the draw stream — and therefore the case — is
  // a pure function of (seed, cfg).
  c.family = cfg.target != nullptr ? cfg.target->family
                                   : pick_family(rng, cfg.family_mask);
  c.cores = static_cast<std::uint32_t>(
      2 + rng.next_below(cfg.tiny ? 2 : 5));  // 2..3 tiny, 2..6 full
  c.mesh = rng.next_bool(0.25);
  static constexpr std::uint32_t kTileChoices[] = {1, 1, 2, 4};
  c.tiles = std::min(c.cores, kTileChoices[rng.next_below(cfg.tiny ? 3 : 4)]);
  c.queue = rng.next_bool(0.5) ? sim::QueuePolicy::kBinaryHeap
                               : sim::QueuePolicy::kCalendar;
  c.scale = 1 + rng.next_below(cfg.tiny ? 1 : 3);

  // fault_pipeline knobs. Compute blocks run 5..100 us at 400 MHz.
  c.items = 4 + rng.next_below(cfg.tiny ? 5 : 13);
  static constexpr std::uint64_t kCycleChoices[] = {2'000, 5'000, 10'000,
                                                    20'000, 40'000};
  c.compute_cycles = kCycleChoices[rng.next_below(cfg.tiny ? 3 : 5)];
  const std::uint64_t rec = rng.next_below(4);
  c.recovery = rec == 0   ? fault::RecoveryPolicy::kNone
               : rec <= 2 ? fault::RecoveryPolicy::kWatchdogRestart
                          : fault::RecoveryPolicy::kWatchdogRemap;
  // Watchdog period: half the draws are absolute (2..30 us, exercising
  // the give-up and drop paths), half are fractions of one compute block
  // so the supervisor routinely restarts a core while the pre-crash end
  // event is still pending — the regime the compute-integrity invariant
  // and the seeded defect live in. A period shorter than the block is
  // what lets the re-issue overlap the abandoned reservation window.
  const DurationPs block = static_cast<DurationPs>(c.compute_cycles) * 2'500;
  const std::uint64_t wdt_pick = rng.next_below(6);
  switch (wdt_pick) {
    case 0: c.watchdog_timeout = microseconds(2); break;
    case 1: c.watchdog_timeout = microseconds(8); break;
    case 2: c.watchdog_timeout = microseconds(30); break;
    case 3: c.watchdog_timeout = block / 2; break;
    case 4: c.watchdog_timeout = block * 3 / 4; break;
    default: c.watchdog_timeout = block * 3 / 2; break;
  }
  c.watchdog_timeout = std::max(c.watchdog_timeout, microseconds(2));

  c.graph_tasks = static_cast<std::uint32_t>(
      3 + rng.next_below(cfg.tiny ? 3 : 8));
  c.dynamic_mapper = rng.next_bool(0.5);

  c.tenants = static_cast<std::uint32_t>(1 + rng.next_below(cfg.tiny ? 2 : 4));
  c.jobs_per_tenant =
      static_cast<std::uint32_t>(1 + rng.next_below(cfg.tiny ? 2 : 5));
  c.static_admission = rng.next_bool(0.25);

  // Directed overrides pin the cell axes after the draws, leaving the
  // rest of the case random.
  const DirectedTarget* t = cfg.target;
  if (t != nullptr) {
    c.queue = t->policy;
    c.tiles = t->parallel ? std::max<std::uint32_t>(2, c.tiles) : 1;
    c.tiles = std::min(c.tiles, c.cores);
  }

  // The fault plan. A quarter of eligible cases stay fault-free (the
  // "none" coverage column and the strict liveness oracle); the rest draw
  // 1..5 expected events inside a window estimated to bracket the run.
  const bool want_faults =
      family_faultable(c.family) &&
      (t != nullptr ? t->kind != CoverageCell::kFaultFree
                    : !rng.next_bool(0.25));
  if (want_faults) {
    fault::RandomSpec spec;
    TimePs window = 0;
    if (c.family == Family::kFaultPipeline) {
      // Healthy makespan estimate: a depth-`cores` pipeline streams
      // `items` through stages of compute_cycles each (2500 ps/cycle at
      // 400 MHz), plus slack for jitter and channel hops.
      window = static_cast<TimePs>(
          (c.items + c.cores + 1) * c.compute_cycles * 2'500 * 14 / 10);
    } else {
      // Free-running workloads finish within tens of microseconds per
      // scale step; late events just idle the drained kernel.
      window = microseconds(40) * c.scale;
    }
    // 2..9 expected events: enough that several land inside the early
    // fill phase, where a crash can race pending compute-end events.
    spec.rate_per_ms = static_cast<double>(2 + rng.next_below(8)) * 1e9 /
                       static_cast<double>(window);
    spec.window_start = 0;
    spec.window_end = window;
    spec.num_cores = c.cores;
    spec.num_links = static_cast<std::uint32_t>(case_num_links(c));
    spec.mem_base = sim::kSharedBase;
    spec.mem_size = sim::PlatformConfig{}.shared_mem_bytes;
    if (t != nullptr && t->kind >= 0) {
      spec.only_kind(static_cast<fault::FaultKind>(t->kind));
      spec.rate_per_ms *= 2.0;  // single-kind plans must not stay empty
    }
    c.plan = fault::FaultPlan::random(rng.next_u64(), spec);
  }
  return c;
}

}  // namespace rw::fuzz
