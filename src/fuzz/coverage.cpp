#include "fuzz/coverage.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace rw::fuzz {

std::string CoverageCell::key() const {
  std::string k = family_name(family);
  k += '|';
  k += kind == kFaultFree ? "none"
                          : fault::fault_kind_name(
                                static_cast<fault::FaultKind>(kind));
  k += '|';
  k += sim::queue_policy_name(policy);
  k += '|';
  k += parallel ? "par" : "seq";
  return k;
}

std::vector<CoverageCell> CoverageMatrix::reachable() {
  std::vector<CoverageCell> out;
  for (std::size_t fi = 0; fi < kNumFamilies; ++fi) {
    const auto f = static_cast<Family>(fi);
    if (f == Family::kErt) {
      // Virtual-time engine: no kernel, no fabric — one cell.
      out.push_back({f, CoverageCell::kFaultFree,
                     sim::QueuePolicy::kCalendar, false});
      continue;
    }
    const bool faultable = family_faultable(f);
    const int max_kind =
        faultable ? static_cast<int>(fault::kNumFaultKinds) : 0;
    for (int kind = CoverageCell::kFaultFree; kind < max_kind; ++kind) {
      for (const auto p :
           {sim::QueuePolicy::kCalendar, sim::QueuePolicy::kBinaryHeap}) {
        for (const bool par : {false, true}) out.push_back({f, kind, p, par});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t CoverageMatrix::reachable_count() {
  static const std::size_t n = reachable().size();
  return n;
}

std::size_t CoverageMatrix::hit_count() const {
  static const std::vector<CoverageCell> all = reachable();
  std::size_t n = 0;
  for (const CoverageCell& c : hit_)
    if (std::binary_search(all.begin(), all.end(), c)) ++n;
  return n;
}

double CoverageMatrix::fraction() const {
  const std::size_t total = reachable_count();
  return total == 0 ? 1.0
                    : static_cast<double>(hit_count()) /
                          static_cast<double>(total);
}

std::vector<CoverageCell> CoverageMatrix::unhit_reachable() const {
  std::vector<CoverageCell> out;
  for (const CoverageCell& c : reachable())
    if (hit_.count(c) == 0) out.push_back(c);
  return out;
}

std::vector<CoverageCell> CoverageMatrix::hits() const {
  return {hit_.begin(), hit_.end()};
}

Table CoverageMatrix::to_table() const {
  std::vector<std::string> header{"family", "none"};
  for (std::size_t k = 0; k < fault::kNumFaultKinds; ++k)
    header.emplace_back(
        fault::fault_kind_name(static_cast<fault::FaultKind>(k)));
  Table t(header);
  const std::vector<CoverageCell> all = reachable();
  for (std::size_t fi = 0; fi < kNumFamilies; ++fi) {
    const auto f = static_cast<Family>(fi);
    std::vector<std::string> row{family_name(f)};
    for (int kind = CoverageCell::kFaultFree;
         kind < static_cast<int>(fault::kNumFaultKinds); ++kind) {
      std::size_t reach = 0;
      std::size_t got = 0;
      for (const CoverageCell& c : all) {
        if (c.family != f || c.kind != kind) continue;
        ++reach;
        if (hit_.count(c) != 0) ++got;
      }
      row.push_back(reach == 0 ? "-" : strformat("%zu/%zu", got, reach));
    }
    t.add_row(row);
  }
  return t;
}

}  // namespace rw::fuzz
