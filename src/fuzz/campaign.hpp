// rw::fuzz — the campaign engine: seeds -> cases -> oracle -> report.
//
// run_campaign() sweeps `seeds` generated cases through the invariant
// oracle on the rw::harness pool (same determinism contract: results are
// bit-identical for any thread count), accounts coverage against the
// reachable cell matrix, then fires a directed fill phase at any cell
// the random sweep left dark. Each failing case is auto-shrunk to a
// 1-minimal reproducer and packaged as a FailureReport carrying a
// ready-to-commit gtest regression stub plus the replayable case JSON.
//
// The report's to_json() (schema rw-fuzz-campaign-1) is deterministic —
// a pure function of the config — which is what lets bench_e19 assert
// two independent campaign executions byte-identical.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fuzz/case.hpp"
#include "fuzz/coverage.hpp"
#include "fuzz/oracle.hpp"
#include "harness/harness.hpp"

namespace rw::fuzz {

struct CampaignConfig {
  std::uint64_t seeds = 1000;
  std::uint64_t base_seed = 1;
  /// Wall-clock cap in minutes; 0 = none. Checked between batches and
  /// directed probes, so a cap never tears an individual case.
  double minutes = 0.0;
  bool shrink = true;
  /// Floor every generator range (CI smoke: rwfuzz --tiny).
  bool tiny = false;
  /// After the random sweep, aim single-kind cases at unhit cells.
  bool directed_fill = true;
  std::size_t threads = 0;  // harness pool width; 0 = hardware
  /// Stop the sweep after this many failing cases: shrinking is the
  /// expensive part, and one campaign rarely needs more evidence.
  std::size_t max_failures = 8;
  std::uint32_t family_mask = 0;  // family_bit() mask; 0 = all
};

struct FailureReport {
  std::uint64_t case_seed = 0;
  CampaignCase original;
  /// The violation the shrinker chased (the original's first).
  Violation violation;
  /// Everything the original tripped, in oracle order.
  std::vector<Violation> violations;

  bool shrunk = false;  // false when CampaignConfig::shrink was off
  CampaignCase minimal;  // == original when !shrunk
  std::size_t shrink_steps = 0;
  std::size_t shrink_attempts = 0;
  bool shrink_at_budget = false;

  /// A self-contained gtest body reproducing the failure from the
  /// minimal case's embedded JSON (rwfuzz writes it next to the case
  /// file; paste into tests/ and link rw_fuzz).
  [[nodiscard]] std::string regression_stub() const;
};

struct CampaignReport {
  std::uint64_t cases = 0;           // oracle cases executed in total
  std::uint64_t directed_cases = 0;  // of which from the fill phase
  std::uint64_t sub_runs = 0;        // simulations under those cases
  std::uint64_t faulted_cases = 0;   // cases with a non-empty plan
  std::array<std::uint64_t, kNumFamilies> family_cases{};
  std::uint64_t shrink_runs = 0;  // oracle evaluations spent shrinking
  bool time_capped = false;

  std::vector<FailureReport> failures;
  CoverageMatrix coverage;

  /// Raw harness results, one per sweep batch (wall_ns and all). The
  /// E19 bench scrubs and byte-compares these across campaign reruns.
  std::vector<harness::ScenarioResult> batches;

  [[nodiscard]] bool green() const { return failures.empty(); }

  /// Campaign totals, one metric per row.
  [[nodiscard]] Table summary_table() const;

  /// Deterministic document, schema rw-fuzz-campaign-1 (wall clocks and
  /// batch records excluded).
  [[nodiscard]] std::string to_json() const;
};

[[nodiscard]] CampaignReport run_campaign(const CampaignConfig& cfg = {});

}  // namespace rw::fuzz
