// rw::fuzz — campaign coverage accounting.
//
// A coverage cell is (family, fault kind, queue policy, exec mode): the
// cross product the ISSUE's matrix asks for, restricted to cells the
// oracle can actually reach — maps runs fault-free by construction (its
// makespan bound assumes an un-faulted fabric) and ert has neither a sim
// kernel nor a fabric, so its policy/exec/kind axes collapse to one
// cell. The matrix counts hits against that reachable set; the campaign
// report and the E19 bench gate on the hit fraction, and the directed
// fill phase generates single-kind cases straight at whatever stayed
// dark after the random sweep.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fuzz/case.hpp"

namespace rw::fuzz {

/// One cell of the matrix. `kind` is a FaultKind index, or kFaultFree
/// for runs with an empty plan.
struct CoverageCell {
  Family family = Family::kPipeline;
  int kind = -1;  // kFaultFree or [0, kNumFaultKinds)
  sim::QueuePolicy policy = sim::QueuePolicy::kCalendar;
  bool parallel = false;  // ExecMode of the run that hit the cell

  static constexpr int kFaultFree = -1;

  /// Stable text key "family|kind|policy|exec" (kind "none" when
  /// fault-free), used for JSON export and set ordering.
  [[nodiscard]] std::string key() const;

  auto operator<=>(const CoverageCell&) const = default;
};

class CoverageMatrix {
 public:
  /// Every cell the generator + oracle can reach (see header comment).
  static std::vector<CoverageCell> reachable();

  void mark(const CoverageCell& cell) { hit_.insert(cell); }
  void merge(const CoverageMatrix& o) {
    hit_.insert(o.hit_.begin(), o.hit_.end());
  }

  [[nodiscard]] bool hit(const CoverageCell& cell) const {
    return hit_.count(cell) != 0;
  }
  [[nodiscard]] std::size_t hit_count() const;
  [[nodiscard]] static std::size_t reachable_count();
  /// hit_count() / reachable_count(); hits outside the reachable set
  /// (there should be none) do not inflate it.
  [[nodiscard]] double fraction() const;
  /// Reachable cells not yet hit, in key order (the directed fill
  /// phase's worklist).
  [[nodiscard]] std::vector<CoverageCell> unhit_reachable() const;

  /// All hit cells in key order.
  [[nodiscard]] std::vector<CoverageCell> hits() const;

  /// family x kind grid, each cell "n/m" = hit / reachable
  /// (policy x exec collapsed), for the CLI and the E19 table.
  [[nodiscard]] Table to_table() const;

 private:
  std::set<CoverageCell> hit_;
};

}  // namespace rw::fuzz
