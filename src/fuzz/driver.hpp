// The rwfuzz driver, as a library so tests exercise exactly what the CLI
// does: run a bounded invariant-checked campaign (or replay one shrunk
// case), print the summary and coverage matrix, and write the
// deterministic FUZZ_campaign.json document plus, per failure, the
// replayable FUZZ_case_<seed>.json and its FUZZ_stub_<seed>.cpp
// regression stub.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "fuzz/campaign.hpp"
#include "tools/cli_common.hpp"

namespace rw::fuzz {

/// Shared flags come from cli::CommonOptions; --threads is re-based to
/// 0 = one pool worker per hardware thread (the campaign is
/// bit-identical for every pool width, so the default just goes fast).
struct FuzzOptions : cli::CommonOptions {
  FuzzOptions() { threads = 0; }

  std::uint64_t seeds = 1000;  // --seeds N
  double minutes = 0.0;        // --minutes M (wall cap; 0 = none)
  bool shrink = true;          // --no-shrink disables auto-shrink
  bool matrix = false;         // --matrix: print the coverage grid
  bool tiny = false;           // --tiny: floor every generator range
  std::string family;          // --family NAME: restrict the generator
  std::string replay_path;     // --replay FILE: run one case JSON
  bool defect = false;         // --defect: arm the seeded-defect hook
};

/// Parse rwfuzz's argv (without argv[0]).
Result<FuzzOptions> parse_fuzz_args(const std::vector<std::string>& args);

struct FuzzReport {
  CampaignReport campaign;  // empty on --list / --replay
  int exit_code = 0;        // 1 = violations found, 2 = usage/setup error
};

/// Run per options, writing human output (or the JSON doc) to `out`.
FuzzReport run_fuzz(const FuzzOptions& opts, std::ostream& out);

}  // namespace rw::fuzz
