#include "fuzz/case.hpp"

#include <cmath>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "sim/parallel.hpp"

namespace rw::fuzz {

const char* family_name(Family f) {
  switch (f) {
    case Family::kPipeline: return "pipeline";
    case Family::kForkjoin: return "forkjoin";
    case Family::kSharedHammer: return "shared_hammer";
    case Family::kTiledPipeline: return "tiled_pipeline";
    case Family::kFaultPipeline: return "fault_pipeline";
    case Family::kMaps: return "maps";
    case Family::kErt: return "ert";
  }
  return "?";
}

bool family_from_name(std::string_view name, Family& out) {
  for (std::size_t i = 0; i < kNumFamilies; ++i) {
    const auto f = static_cast<Family>(i);
    if (name == family_name(f)) {
      out = f;
      return true;
    }
  }
  return false;
}

bool family_faultable(Family f) {
  return f != Family::kMaps && f != Family::kErt;
}

namespace {

Result<sim::QueuePolicy> queue_from_name(const std::string& name) {
  for (const auto p :
       {sim::QueuePolicy::kCalendar, sim::QueuePolicy::kBinaryHeap})
    if (name == sim::queue_policy_name(p)) return p;
  return make_error("fuzz case: unknown queue policy '" + name + "'");
}

Result<fault::RecoveryPolicy> recovery_from_name(const std::string& name) {
  for (const auto p :
       {fault::RecoveryPolicy::kNone, fault::RecoveryPolicy::kWatchdogRestart,
        fault::RecoveryPolicy::kWatchdogRemap})
    if (name == fault::recovery_policy_name(p)) return p;
  return make_error("fuzz case: unknown recovery policy '" + name + "'");
}

/// Strict integer field: present, numeric, integral.
Result<std::uint64_t> req_u64(const json::Value& doc, const char* field) {
  const json::Value* v = doc.get(field);
  bool integral = false;
  std::uint64_t out = 0;
  if (v != nullptr && v->is_number()) out = v->u64(&integral);
  if (!integral)
    return make_error(std::string("fuzz case: field '") + field +
                      "' missing or not an integer");
  return out;
}

Result<bool> req_bool(const json::Value& doc, const char* field) {
  const json::Value* v = doc.get(field);
  if (v == nullptr || !v->is_bool())
    return make_error(std::string("fuzz case: field '") + field +
                      "' missing or not a bool");
  return v->boolean();
}

Result<std::string> req_string(const json::Value& doc, const char* field) {
  const json::Value* v = doc.get(field);
  if (v == nullptr || !v->is_string())
    return make_error(std::string("fuzz case: field '") + field +
                      "' missing or not a string");
  return v->string();
}

}  // namespace

sim::PlatformConfig CampaignCase::platform_config(sim::QueuePolicy policy,
                                                  bool parallel) const {
  sim::PlatformConfig pc = sim::PlatformConfig::homogeneous(cores);
  pc.kernel.policy = policy;
  if (mesh) {
    pc.interconnect = sim::PlatformConfig::Icn::kMesh;
    const auto side = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(cores))));
    pc.mesh.width = side < 1 ? 1 : side;
    pc.mesh.height = (cores + pc.mesh.width - 1) / pc.mesh.width;
  }
  if (tiles > 1) {
    sim::apply_tiling(pc, tiles, family == Family::kTiledPipeline);
    // apply_tiling arms kParallel; the oracle's exec twin keeps the tile
    // partition (so per-tile trace digests stay comparable) and flips
    // only the execution mode.
    pc.kernel.exec =
        parallel ? sim::ExecMode::kParallel : sim::ExecMode::kSequential;
  }
  return pc;
}

std::string CampaignCase::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("rw-fuzz-case-1");
  w.key("seed").value(seed);
  w.key("family").value(family_name(family));
  w.key("cores").value(static_cast<std::uint64_t>(cores));
  w.key("mesh").value(mesh);
  w.key("tiles").value(static_cast<std::uint64_t>(tiles));
  w.key("queue").value(sim::queue_policy_name(queue));
  w.key("scale").value(scale);
  w.key("items").value(items);
  w.key("compute_cycles").value(compute_cycles);
  w.key("recovery").value(fault::recovery_policy_name(recovery));
  w.key("watchdog_timeout_ps")
      .value(static_cast<std::uint64_t>(watchdog_timeout));
  w.key("graph_tasks").value(static_cast<std::uint64_t>(graph_tasks));
  w.key("dynamic_mapper").value(dynamic_mapper);
  w.key("tenants").value(static_cast<std::uint64_t>(tenants));
  w.key("jobs_per_tenant").value(static_cast<std::uint64_t>(jobs_per_tenant));
  w.key("static_admission").value(static_admission);
  w.key("plan");
  plan.write_json(w);
  w.end_object();
  return w.str();
}

Result<CampaignCase> CampaignCase::from_json(std::string_view text) {
  const json::Value doc = RW_TRY(json::parse(text));
  if (!doc.is_object())
    return make_error("fuzz case: document is not an object");
  if (const std::string schema = doc.get_string("schema");
      schema != "rw-fuzz-case-1")
    return make_error("fuzz case: unsupported schema '" + schema + "'");

  CampaignCase c;
  c.seed = RW_TRY(req_u64(doc, "seed"));
  Family f = Family::kPipeline;
  if (!family_from_name(RW_TRY(req_string(doc, "family")), f))
    return make_error("fuzz case: unknown family");
  c.family = f;
  c.cores = static_cast<std::uint32_t>(RW_TRY(req_u64(doc, "cores")));
  c.mesh = RW_TRY(req_bool(doc, "mesh"));
  c.tiles = static_cast<std::uint32_t>(RW_TRY(req_u64(doc, "tiles")));
  c.queue = RW_TRY(queue_from_name(RW_TRY(req_string(doc, "queue"))));
  c.scale = RW_TRY(req_u64(doc, "scale"));
  c.items = RW_TRY(req_u64(doc, "items"));
  c.compute_cycles = RW_TRY(req_u64(doc, "compute_cycles"));
  c.recovery =
      RW_TRY(recovery_from_name(RW_TRY(req_string(doc, "recovery"))));
  c.watchdog_timeout =
      static_cast<DurationPs>(RW_TRY(req_u64(doc, "watchdog_timeout_ps")));
  c.graph_tasks =
      static_cast<std::uint32_t>(RW_TRY(req_u64(doc, "graph_tasks")));
  c.dynamic_mapper = RW_TRY(req_bool(doc, "dynamic_mapper"));
  c.tenants = static_cast<std::uint32_t>(RW_TRY(req_u64(doc, "tenants")));
  c.jobs_per_tenant =
      static_cast<std::uint32_t>(RW_TRY(req_u64(doc, "jobs_per_tenant")));
  c.static_admission = RW_TRY(req_bool(doc, "static_admission"));
  const json::Value* plan = doc.get("plan");
  if (plan == nullptr)
    return make_error("fuzz case: missing plan object");
  c.plan = RW_TRY(fault::FaultPlan::from_json_value(*plan));

  if (c.cores < 2) return make_error("fuzz case: cores must be >= 2");
  if (c.tiles < 1 || c.tiles > c.cores)
    return make_error("fuzz case: tiles must be in [1, cores]");
  if (c.scale < 1) return make_error("fuzz case: scale must be >= 1");
  if (c.graph_tasks < 2)
    return make_error("fuzz case: graph_tasks must be >= 2");
  if (c.tenants < 1 || c.jobs_per_tenant < 1)
    return make_error("fuzz case: tenants and jobs_per_tenant must be >= 1");
  if (!family_faultable(c.family) && !c.plan.empty())
    return make_error("fuzz case: family takes no fault plan");
  return c;
}

std::string CampaignCase::summary() const {
  std::string s = strformat("seed=%llu %s cores=%u %s tiles=%u queue=%s",
                            static_cast<unsigned long long>(seed),
                            family_name(family), cores, mesh ? "mesh" : "bus",
                            tiles, sim::queue_policy_name(queue));
  switch (family) {
    case Family::kFaultPipeline:
      s += strformat(" items=%llu cycles=%llu recovery=%s wdt=%lluns",
                     static_cast<unsigned long long>(items),
                     static_cast<unsigned long long>(compute_cycles),
                     fault::recovery_policy_name(recovery),
                     static_cast<unsigned long long>(watchdog_timeout / 1000));
      break;
    case Family::kMaps:
      s += strformat(" tasks=%u mapper=%s", graph_tasks,
                     dynamic_mapper ? "dynamic" : "heft");
      break;
    case Family::kErt:
      s += strformat(" tenants=%u jobs=%u%s", tenants, jobs_per_tenant,
                     static_admission ? " static_admission" : "");
      break;
    default:
      s += strformat(" scale=%llu",
                     static_cast<unsigned long long>(scale));
      break;
  }
  s += strformat(" plan=%zuev", plan.size());
  return s;
}

}  // namespace rw::fuzz
