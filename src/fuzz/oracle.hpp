// rw::fuzz — the invariant oracle.
//
// run_case() executes one CampaignCase end to end and checks every
// global invariant that applies to its family:
//
//   determinism.rerun    — a second identical run is bit-identical
//                          (trace fingerprint + every outcome field),
//   determinism.policy   — flipping the kernel queue policy changes
//                          nothing observable,
//   determinism.exec     — flipping the tiled engine between sequential
//                          and parallel execution changes nothing,
//   liveness.budget      — the run drains instead of hitting the event
//                          budget (runaway/livelock guard),
//   liveness.fault_free  — with no faults and no recovery policy, the
//                          fault pipeline finishes and delivers every
//                          item (a timed watchdog policy may legally
//                          give up, so strict liveness is kNone-only),
//   conservation.items   — the sink never sees an alien or duplicate id,
//   conservation.channel — per-channel sent == received + buffered,
//   integrity.compute    — every retired compute block matches its
//                          reservation (the invariant the seeded PR-5
//                          defect violates),
//   bound.makespan       — the platform replay of a mapping never
//                          exceeds its lint::PerfContract static bound,
//   ert.accounting       — per tenant, completed + rejected == submitted,
//                          and reruns reproduce the tenant fingerprints.
//
// Violations carry the stable invariant id plus a human detail line; the
// shrinker's predicate is "still violates this same invariant id".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fuzz/case.hpp"
#include "fuzz/coverage.hpp"
#include "maps/taskgraph.hpp"

namespace rw::fuzz {

struct Violation {
  std::string invariant;  // stable id, e.g. "determinism.policy"
  std::string detail;
};

/// Which determinism twins to run. The campaign keeps them all on; the
/// shrinker turns off the ones unrelated to the violation it is chasing
/// so candidate evaluation stays cheap.
struct OracleOptions {
  bool rerun_twin = true;
  bool policy_twin = true;
  bool exec_twin = true;
};

struct CaseOutcome {
  std::vector<Violation> violations;
  std::vector<CoverageCell> cells;  // every cell this case's runs hit
  std::uint64_t fingerprint = 0;    // base run's trace digest (0 for ert)
  TimePs makespan = 0;              // base run's simulated end time
  std::uint64_t sub_runs = 0;       // simulations executed for this case

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] bool violates(std::string_view invariant) const {
    for (const Violation& v : violations)
      if (v.invariant == invariant) return true;
    return false;
  }
};

/// Every invariant id the oracle can report, in stable display order.
[[nodiscard]] const std::vector<std::string>& invariant_names();

/// The maps-family task graph derived from (seed, graph_tasks): a chain
/// for connectivity plus seed-drawn cross edges. Exposed for tests.
[[nodiscard]] maps::TaskGraph build_case_graph(const CampaignCase& c);

/// Run the case and check everything that applies. Deterministic: equal
/// (case, options) produce equal outcomes.
[[nodiscard]] CaseOutcome run_case(const CampaignCase& c,
                                   const OracleOptions& opts = {});

}  // namespace rw::fuzz
