#include "fuzz/oracle.hpp"

#include <set>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "ert/service.hpp"
#include "ert/templates.hpp"
#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "lint/perf_contract.hpp"
#include "maps/mapping.hpp"
#include "maps/perf_bounds.hpp"
#include "perf/workload.hpp"
#include "vpdebug/replay.hpp"

namespace rw::fuzz {
namespace {

/// Event budget for free-running families: a tiny case draining tens of
/// thousands of events sits orders of magnitude below this, so hitting
/// it means a livelock, not a big workload.
constexpr std::uint64_t kEventBudget = 20'000'000;

/// Fault kinds present in the plan, as coverage kind indices; just
/// {kFaultFree} for an empty plan.
std::vector<int> plan_kinds(const fault::FaultPlan& plan) {
  std::set<int> kinds;
  for (const fault::FaultEvent& e : plan.events())
    kinds.insert(static_cast<int>(e.kind));
  if (kinds.empty()) return {CoverageCell::kFaultFree};
  return {kinds.begin(), kinds.end()};
}

void mark_cells(CaseOutcome& out, const CampaignCase& c,
                sim::QueuePolicy policy, bool parallel) {
  for (const int kind : plan_kinds(c.plan))
    out.cells.push_back({c.family, kind, policy, parallel});
}

void violate(CaseOutcome& out, std::string invariant, std::string detail) {
  out.violations.push_back({std::move(invariant), std::move(detail)});
}

// ---------------------------------------------------------------- workloads

struct SimProbe {
  std::uint64_t fingerprint = 0;
  TimePs makespan = 0;
  std::uint64_t events = 0;
  bool budget_hit = false;

  [[nodiscard]] bool operator==(const SimProbe&) const = default;
  [[nodiscard]] std::string describe() const {
    return strformat("fp=%016llx makespan=%llu events=%llu%s",
                     static_cast<unsigned long long>(fingerprint),
                     static_cast<unsigned long long>(makespan),
                     static_cast<unsigned long long>(events),
                     budget_hit ? " BUDGET" : "");
  }
};

SimProbe run_workload_once(const CampaignCase& c, sim::QueuePolicy policy,
                           bool parallel) {
  sim::Platform plat(c.platform_config(policy, parallel));
  vpdebug::ExecutionRecorder rec(plat);
  fault::FaultInjector injector(plat, c.plan);
  injector.arm();
  perf::spawn_workload(family_name(c.family), plat, c.seed, c.scale);
  plat.run(kEventBudget);
  SimProbe p;
  p.fingerprint = rec.fingerprint();
  p.makespan = plat.now();
  for (std::size_t t = 0; t < plat.tile_count(); ++t)
    p.events += plat.tile_kernel(static_cast<std::uint32_t>(t))
                    .events_executed();
  p.budget_hit = p.events >= kEventBudget;
  return p;
}

void run_workload_family(const CampaignCase& c, const OracleOptions& opts,
                         CaseOutcome& out) {
  const bool par = c.tiles > 1;
  const SimProbe base = run_workload_once(c, c.queue, par);
  ++out.sub_runs;
  out.fingerprint = base.fingerprint;
  out.makespan = base.makespan;
  mark_cells(out, c, c.queue, par);
  if (base.budget_hit)
    violate(out, "liveness.budget", "base run: " + base.describe());

  if (opts.rerun_twin) {
    const SimProbe again = run_workload_once(c, c.queue, par);
    ++out.sub_runs;
    if (again != base)
      violate(out, "determinism.rerun",
              base.describe() + " vs rerun " + again.describe());
  }
  if (opts.policy_twin) {
    const sim::QueuePolicy other = c.queue == sim::QueuePolicy::kCalendar
                                       ? sim::QueuePolicy::kBinaryHeap
                                       : sim::QueuePolicy::kCalendar;
    const SimProbe twin = run_workload_once(c, other, par);
    ++out.sub_runs;
    mark_cells(out, c, other, par);
    if (twin != base)
      violate(out, "determinism.policy",
              base.describe() + " vs " + sim::queue_policy_name(other) +
                  " " + twin.describe());
  }
  if (opts.exec_twin && par) {
    const SimProbe twin = run_workload_once(c, c.queue, false);
    ++out.sub_runs;
    mark_cells(out, c, c.queue, false);
    if (twin != base)
      violate(out, "determinism.exec",
              base.describe() + " vs sequential " + twin.describe());
  }
}

// ----------------------------------------------------------- fault pipeline

fault::ScenarioConfig scenario_config(const CampaignCase& c,
                                      sim::QueuePolicy policy,
                                      std::uint32_t threads) {
  fault::ScenarioConfig sc;
  sc.cores = c.cores;
  sc.mesh = c.mesh;
  sc.seed = c.seed;
  sc.items = c.items;
  sc.compute_cycles = c.compute_cycles;
  sc.policy = c.recovery;
  sc.watchdog_timeout = c.watchdog_timeout;
  sc.queue = policy;
  sc.threads = threads;
  sc.explicit_plan = c.plan.empty() ? nullptr : &c.plan;
  return sc;
}

/// The deterministic fields two twin runs must agree on, folded into one
/// comparable digest-with-description.
struct FaultProbe {
  fault::ScenarioOutcome o;

  [[nodiscard]] bool equal(const FaultProbe& b) const {
    const fault::ScenarioOutcome& x = o;
    const fault::ScenarioOutcome& y = b.o;
    return x.items_done == y.items_done && x.finish_time == y.finish_time &&
           x.makespan == y.makespan && x.deadlocked == y.deadlocked &&
           x.faults_injected == y.faults_injected && x.crashes == y.crashes &&
           x.recoveries == y.recoveries && x.restarts == y.restarts &&
           x.remaps == y.remaps && x.sem_releases == y.sem_releases &&
           x.watchdog_expiries == y.watchdog_expiries &&
           x.sem_skips == y.sem_skips && x.items_dropped == y.items_dropped &&
           x.gave_up == y.gave_up && x.alien_items == y.alien_items &&
           x.duplicate_items == y.duplicate_items &&
           x.chan_sent == y.chan_sent && x.chan_received == y.chan_received &&
           x.chan_buffered == y.chan_buffered &&
           x.compute_integrity_violations == y.compute_integrity_violations &&
           x.trace_fingerprint == y.trace_fingerprint;
  }
  [[nodiscard]] std::string describe() const {
    return strformat("fp=%016llx done=%llu/%llu makespan=%llu%s%s",
                     static_cast<unsigned long long>(o.trace_fingerprint),
                     static_cast<unsigned long long>(o.items_done),
                     static_cast<unsigned long long>(o.items_target),
                     static_cast<unsigned long long>(o.makespan),
                     o.deadlocked ? " deadlocked" : "",
                     o.gave_up ? " gave_up" : "");
  }
};

void run_fault_family(const CampaignCase& c, const OracleOptions& opts,
                      CaseOutcome& out) {
  const bool par = c.tiles > 1;
  const FaultProbe base{
      fault::run_fault_scenario(scenario_config(c, c.queue, c.tiles))};
  ++out.sub_runs;
  const fault::ScenarioOutcome& o = base.o;
  out.fingerprint = o.trace_fingerprint;
  out.makespan = o.makespan;
  mark_cells(out, c, c.queue, par);

  if (o.alien_items != 0 || o.duplicate_items != 0 ||
      o.items_done > o.items_target)
    violate(out, "conservation.items",
            strformat("alien=%llu duplicate=%llu done=%llu target=%llu",
                      static_cast<unsigned long long>(o.alien_items),
                      static_cast<unsigned long long>(o.duplicate_items),
                      static_cast<unsigned long long>(o.items_done),
                      static_cast<unsigned long long>(o.items_target)));
  if (o.chan_sent != o.chan_received + o.chan_buffered)
    violate(out, "conservation.channel",
            strformat("sent=%llu received=%llu buffered=%llu",
                      static_cast<unsigned long long>(o.chan_sent),
                      static_cast<unsigned long long>(o.chan_received),
                      static_cast<unsigned long long>(o.chan_buffered)));
  if (o.compute_integrity_violations != 0)
    violate(out, "integrity.compute",
            strformat("%llu mismatched compute retirements",
                      static_cast<unsigned long long>(
                          o.compute_integrity_violations)));
  if (o.hit_event_budget)
    violate(out, "liveness.budget", "scenario hit its event budget");
  if (c.plan.empty() && c.recovery == fault::RecoveryPolicy::kNone &&
      (o.deadlocked || o.items_done != o.items_target))
    violate(out, "liveness.fault_free", "no faults, yet " + base.describe());

  if (opts.rerun_twin) {
    const FaultProbe again{
        fault::run_fault_scenario(scenario_config(c, c.queue, c.tiles))};
    ++out.sub_runs;
    if (!again.equal(base))
      violate(out, "determinism.rerun",
              base.describe() + " vs rerun " + again.describe());
  }
  if (opts.policy_twin) {
    const sim::QueuePolicy other = c.queue == sim::QueuePolicy::kCalendar
                                       ? sim::QueuePolicy::kBinaryHeap
                                       : sim::QueuePolicy::kCalendar;
    const FaultProbe twin{
        fault::run_fault_scenario(scenario_config(c, other, c.tiles))};
    ++out.sub_runs;
    mark_cells(out, c, other, par);
    if (!twin.equal(base))
      violate(out, "determinism.policy",
              base.describe() + " vs " + sim::queue_policy_name(other) +
                  " " + twin.describe());
  }
  if (opts.exec_twin && par) {
    const FaultProbe twin{
        fault::run_fault_scenario(scenario_config(c, c.queue, 1))};
    ++out.sub_runs;
    mark_cells(out, c, c.queue, false);
    if (!twin.equal(base))
      violate(out, "determinism.exec",
              base.describe() + " vs threads=1 " + twin.describe());
  }
}

// -------------------------------------------------------------------- maps

SimProbe run_maps_once(const CampaignCase& c, const maps::TaskGraph& g,
                       const std::vector<std::size_t>& task_to_pe,
                       sim::QueuePolicy policy, bool parallel) {
  sim::Platform plat(c.platform_config(policy, parallel));
  vpdebug::ExecutionRecorder rec(plat);
  const TimePs makespan = maps::execute_on_platform(g, task_to_pe, plat);
  SimProbe p;
  p.fingerprint = rec.fingerprint();
  p.makespan = makespan;
  p.events = rec.events();
  return p;
}

void run_maps_family(const CampaignCase& c, const OracleOptions& opts,
                     CaseOutcome& out) {
  const maps::TaskGraph g = build_case_graph(c);
  const sim::PlatformConfig pc = c.platform_config(c.queue, c.tiles > 1);
  const std::vector<maps::PeDesc> pes = maps::pes_from_platform(pc);
  const maps::CommCost comm = maps::comm_cost_from_platform(pc);
  const maps::MappingResult mapping = c.dynamic_mapper
                                          ? maps::dynamic_schedule(g, pes, comm)
                                          : maps::heft_map(g, pes, comm);

  lint::Target target;
  target.name = "fuzz_maps";
  target.task_graph = &g;
  target.task_to_pe = mapping.task_to_pe;
  target.platform = &pc;
  const lint::PerfContract contract = lint::compute_perf_contract(target);

  const bool par = c.tiles > 1;
  const SimProbe base = run_maps_once(c, g, mapping.task_to_pe, c.queue, par);
  ++out.sub_runs;
  out.fingerprint = base.fingerprint;
  out.makespan = base.makespan;
  mark_cells(out, c, c.queue, par);

  if (!contract.has_makespan) {
    violate(out, "bound.makespan", "contract has no makespan part");
  } else if (base.makespan > contract.makespan.bound.bound) {
    violate(out, "bound.makespan",
            strformat("replay %llu ps exceeds static bound %llu ps",
                      static_cast<unsigned long long>(base.makespan),
                      static_cast<unsigned long long>(
                          contract.makespan.bound.bound)));
  }

  if (opts.rerun_twin) {
    const SimProbe again =
        run_maps_once(c, g, mapping.task_to_pe, c.queue, par);
    ++out.sub_runs;
    if (again != base)
      violate(out, "determinism.rerun",
              base.describe() + " vs rerun " + again.describe());
  }
  if (opts.policy_twin) {
    const sim::QueuePolicy other = c.queue == sim::QueuePolicy::kCalendar
                                       ? sim::QueuePolicy::kBinaryHeap
                                       : sim::QueuePolicy::kCalendar;
    const SimProbe twin = run_maps_once(c, g, mapping.task_to_pe, other, par);
    ++out.sub_runs;
    mark_cells(out, c, other, par);
    if (twin != base)
      violate(out, "determinism.policy",
              base.describe() + " vs " + sim::queue_policy_name(other) +
                  " " + twin.describe());
  }
  if (opts.exec_twin && par) {
    const SimProbe twin =
        run_maps_once(c, g, mapping.task_to_pe, c.queue, false);
    ++out.sub_runs;
    mark_cells(out, c, c.queue, false);
    if (twin != base)
      violate(out, "determinism.exec",
              base.describe() + " vs sequential " + twin.describe());
  }
}

// --------------------------------------------------------------------- ert

struct ErtProbe {
  struct Tenant {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t fingerprint = 0;
    [[nodiscard]] bool operator==(const Tenant&) const = default;
  };
  std::vector<Tenant> tenants;
  [[nodiscard]] bool operator==(const ErtProbe&) const = default;
};

ErtProbe run_ert_once(const CampaignCase& c) {
  // The whole job stream is a pure function of the case: tenant shapes
  // and arrivals come from a seed-derived stream, specs from the shared
  // template registry.
  Rng rng(c.seed ^ 0x6572745f72756e73ULL);
  ert::ServiceConfig scfg;
  scfg.total_cores = c.cores * 2;  // room for a carve-out plus sharers
  scfg.static_admission = c.static_admission;
  ert::Service service(scfg);

  const std::vector<std::string> templates = ert::template_names();
  std::vector<ert::Session> sessions;
  for (std::uint32_t i = 0; i < c.tenants; ++i) {
    ert::TenantConfig tc;
    tc.name = strformat("t%u", i);
    tc.share = 0.25 * static_cast<double>(1 + rng.next_below(4));
    tc.reserved = rng.next_bool(0.2);
    if (rng.next_bool(0.25)) tc.max_pending = 1 + rng.next_below(3);
    auto session = service.open_session(tc);
    if (!session.ok()) {
      // Reservation would not fit — retry the same tenant unreserved
      // (deterministic: depends only on the draws so far).
      tc.reserved = false;
      session = service.open_session(tc);
    }
    sessions.push_back(session.value());
  }

  TimePs arrival = 0;
  for (std::uint32_t j = 0; j < c.jobs_per_tenant; ++j) {
    for (ert::Session& s : sessions) {
      ert::JobSpec spec = ert::make_template(
          templates[rng.next_below(templates.size())], c.scale);
      arrival += nanoseconds(rng.next_below(30'000));
      spec.arrival = arrival;
      (void)s.submit(std::move(spec));
    }
  }
  service.drain();

  ErtProbe p;
  for (const ert::TenantStats& ts : service.all_tenant_stats())
    p.tenants.push_back({ts.submitted, ts.completed, ts.rejected,
                         ts.deadline_misses, ts.fingerprint});
  return p;
}

void run_ert_family(const CampaignCase& c, const OracleOptions& opts,
                    CaseOutcome& out) {
  const ErtProbe base = run_ert_once(c);
  ++out.sub_runs;
  out.cells.push_back({Family::kErt, CoverageCell::kFaultFree,
                       sim::QueuePolicy::kCalendar, false});

  for (std::size_t i = 0; i < base.tenants.size(); ++i) {
    const ErtProbe::Tenant& t = base.tenants[i];
    if (t.completed + t.rejected != t.submitted ||
        t.submitted != c.jobs_per_tenant)
      violate(out, "ert.accounting",
              strformat("tenant %zu: submitted=%llu completed=%llu "
                        "rejected=%llu",
                        i, static_cast<unsigned long long>(t.submitted),
                        static_cast<unsigned long long>(t.completed),
                        static_cast<unsigned long long>(t.rejected)));
  }

  if (opts.rerun_twin) {
    const ErtProbe again = run_ert_once(c);
    ++out.sub_runs;
    if (!(again == base))
      violate(out, "determinism.rerun", "ert rerun diverged");
  }
}

}  // namespace

const std::vector<std::string>& invariant_names() {
  static const std::vector<std::string> names = {
      "determinism.rerun",  "determinism.policy",  "determinism.exec",
      "liveness.budget",    "liveness.fault_free", "conservation.items",
      "conservation.channel", "integrity.compute", "bound.makespan",
      "ert.accounting",
  };
  return names;
}

maps::TaskGraph build_case_graph(const CampaignCase& c) {
  Rng rng(c.seed ^ 0x6d6170735f676e72ULL);
  maps::TaskGraph g;
  g.name = "fuzz_graph";
  std::vector<maps::TaskNodeId> ids;
  for (std::uint32_t i = 0; i < c.graph_tasks; ++i)
    ids.push_back(
        g.add_task(strformat("t%u", i), 1'000 + rng.next_below(20'000)));
  // A chain keeps the graph connected (and acyclic: edges only go
  // forward); extra forward edges add communication pressure.
  for (std::uint32_t i = 1; i < c.graph_tasks; ++i)
    g.add_edge(ids[i - 1], ids[i], 64 + rng.next_below(4'096));
  for (std::uint32_t i = 0; i + 2 < c.graph_tasks; ++i)
    for (std::uint32_t j = i + 2; j < c.graph_tasks; ++j)
      if (rng.next_bool(2.0 / static_cast<double>(c.graph_tasks)))
        g.add_edge(ids[i], ids[j], 64 + rng.next_below(4'096));
  return g;
}

CaseOutcome run_case(const CampaignCase& c, const OracleOptions& opts) {
  CaseOutcome out;
  switch (c.family) {
    case Family::kPipeline:
    case Family::kForkjoin:
    case Family::kSharedHammer:
    case Family::kTiledPipeline:
      run_workload_family(c, opts, out);
      break;
    case Family::kFaultPipeline:
      run_fault_family(c, opts, out);
      break;
    case Family::kMaps:
      run_maps_family(c, opts, out);
      break;
    case Family::kErt:
      run_ert_family(c, opts, out);
      break;
  }
  return out;
}

}  // namespace rw::fuzz
