// rw::fuzz — one point in the campaign's scenario space.
//
// A CampaignCase is the full, self-contained description of one fuzzed
// run: which scenario family, what platform shape (cores, fabric, tile
// partition, kernel queue policy), the workload knobs that family reads,
// and a materialized FaultPlan. Everything the oracle derives beyond
// these fields (task graphs, ert job streams, workload internals) is a
// pure function of `seed`, so a case replays exactly from its JSON — the
// property the shrinker and the committed regression stubs stand on.
//
// Serialization is schema rw-fuzz-case-1 and round-trips byte-stably
// (to_json -> from_json -> to_json is the identity on the text), the
// same contract FaultPlan::from_json keeps for the nested plan.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "common/units.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "sim/kernel.hpp"
#include "sim/platform.hpp"

namespace rw::fuzz {

/// Scenario families the campaign draws from. The first four are the
/// rw::perf demo workloads (free-running platform programs); the rest
/// compose whole subsystems: the E14 fault/recovery pipeline, the MAPS
/// map-then-replay flow judged against its lint contract, and the ert
/// job service.
enum class Family : std::uint8_t {
  kPipeline,
  kForkjoin,
  kSharedHammer,
  kTiledPipeline,
  kFaultPipeline,
  kMaps,
  kErt,
};

inline constexpr std::size_t kNumFamilies = 7;

const char* family_name(Family f);
/// Inverse of family_name(); false when `name` matches no family.
bool family_from_name(std::string_view name, Family& out);

/// Whether fault-plan events apply to this family's runs. maps replays a
/// static schedule judged against a bound that assumes an un-faulted
/// fabric, and ert's engine is virtual-time with no sim platform at all,
/// so neither takes a plan.
[[nodiscard]] bool family_faultable(Family f);

/// Display mask bit for family `f` (generator family restriction).
inline constexpr std::uint32_t family_bit(Family f) {
  return 1u << static_cast<std::uint32_t>(f);
}

struct CampaignCase {
  std::uint64_t seed = 0;  // identity; seeds every derived structure
  Family family = Family::kPipeline;

  // Platform shape (sim families; ert ignores all four, maps ignores
  // tiles>1 partitioning but keeps the fabric).
  std::uint32_t cores = 2;  // >= 2
  bool mesh = false;        // mesh NoC instead of the shared bus
  std::uint32_t tiles = 1;  // >1: base run uses the parallel tiled engine
  sim::QueuePolicy queue = sim::QueuePolicy::kCalendar;

  std::uint64_t scale = 1;  // workload iteration multiplier

  // fault_pipeline knobs (ScenarioConfig fields).
  std::uint64_t items = 8;
  std::uint64_t compute_cycles = 2000;
  fault::RecoveryPolicy recovery = fault::RecoveryPolicy::kNone;
  DurationPs watchdog_timeout = microseconds(50);

  // maps knobs: graph derived from (seed, graph_tasks).
  std::uint32_t graph_tasks = 4;  // >= 2
  bool dynamic_mapper = false;    // dynamic_schedule instead of heft_map

  // ert knobs: job stream derived from (seed, tenants, jobs_per_tenant).
  std::uint32_t tenants = 1;          // >= 1
  std::uint32_t jobs_per_tenant = 2;  // >= 1
  bool static_admission = false;

  /// Materialized fault schedule (empty for fault-free cases; always
  /// empty when !family_faultable(family)).
  fault::FaultPlan plan;

  /// The platform this case describes, under a policy/exec override (the
  /// oracle's determinism twins re-run one case with the axes flipped).
  /// Mesh sizing matches fault::run_fault_scenario's; cores are spread
  /// over tiles only for tiled_pipeline (the one tileable workload —
  /// everything else keeps shared state on tile 0 and runs with idle
  /// sibling tiles, which is how --threads works repo-wide). With
  /// tiles > 1 the tile partition is applied either way and `parallel`
  /// selects only the ExecMode, so twin runs produce platforms with
  /// identical tile structure.
  [[nodiscard]] sim::PlatformConfig platform_config(sim::QueuePolicy policy,
                                                    bool parallel) const;

  /// Deterministic JSON, schema rw-fuzz-case-1.
  [[nodiscard]] std::string to_json() const;
  /// Inverse of to_json(); byte-stable round trip.
  static Result<CampaignCase> from_json(std::string_view text);

  /// One-line human description ("seed=7 fault_pipeline cores=4 mesh
  /// tiles=2 queue=heap ... plan=3ev"), for logs and failure reports.
  [[nodiscard]] std::string summary() const;
};

}  // namespace rw::fuzz
