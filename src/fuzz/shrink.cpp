#include "fuzz/shrink.hpp"

#include <string>

namespace rw::fuzz {
namespace {

/// Clamp every field to its documented floor so candidates are always
/// valid cases (from_json would accept them).
void sanitize(CampaignCase& c) {
  if (c.cores < 2) c.cores = 2;
  if (c.tiles < 1) c.tiles = 1;
  if (c.tiles > c.cores) c.tiles = c.cores;
  if (c.scale < 1) c.scale = 1;
  if (c.items < 1) c.items = 1;
  if (c.compute_cycles < 100) c.compute_cycles = 100;
  if (c.graph_tasks < 2) c.graph_tasks = 2;
  if (c.tenants < 1) c.tenants = 1;
  if (c.jobs_per_tenant < 1) c.jobs_per_tenant = 1;
}

/// Rebuild the plan without events [begin, end) of the sorted order.
fault::FaultPlan without_range(const fault::FaultPlan& plan,
                               std::size_t begin, std::size_t end) {
  fault::FaultPlan out;
  const std::vector<fault::FaultEvent> evs = plan.events();
  for (std::size_t i = 0; i < evs.size(); ++i)
    if (i < begin || i >= end) out.add(evs[i]);
  return out;
}

class CandidateSet {
 public:
  explicit CandidateSet(const CampaignCase& orig)
      : orig_key_(orig.to_json()) {}

  void add(CampaignCase cand) {
    sanitize(cand);
    std::string key = cand.to_json();
    if (key == orig_key_) return;  // clamping undid the reduction
    for (const std::string& seen : keys_)
      if (seen == key) return;
    keys_.push_back(std::move(key));
    out_.push_back(std::move(cand));
  }

  std::vector<CampaignCase> take() { return std::move(out_); }

 private:
  std::string orig_key_;
  std::vector<std::string> keys_;
  std::vector<CampaignCase> out_;
};

}  // namespace

std::vector<CampaignCase> shrink_candidates(const CampaignCase& c) {
  CandidateSet set(c);
  const std::size_t n = c.plan.size();

  // Plan events first: most failures hinge on one or two faults, so
  // halving the plan converges in O(log n) accepted steps.
  if (n >= 4) {
    for (std::size_t q = 0; q < 4; ++q) {
      CampaignCase cand = c;
      cand.plan = without_range(c.plan, q * n / 4, (q + 1) * n / 4);
      set.add(std::move(cand));
    }
  }
  if (n >= 2) {
    for (const auto& [b, e] :
         {std::pair<std::size_t, std::size_t>{0, n / 2}, {n / 2, n}}) {
      CampaignCase cand = c;
      cand.plan = without_range(c.plan, b, e);
      set.add(std::move(cand));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    CampaignCase cand = c;
    cand.plan = without_range(c.plan, i, i + 1);
    set.add(std::move(cand));
  }

  // Structural simplifications: drop whole mechanisms before trimming
  // counts, so the minimal case names only the machinery it needs.
  if (c.recovery != fault::RecoveryPolicy::kNone) {
    CampaignCase cand = c;
    cand.recovery = fault::RecoveryPolicy::kNone;
    set.add(std::move(cand));
  }
  if (c.recovery == fault::RecoveryPolicy::kWatchdogRemap) {
    CampaignCase cand = c;
    cand.recovery = fault::RecoveryPolicy::kWatchdogRestart;
    set.add(std::move(cand));
  }
  if (c.mesh) {
    CampaignCase cand = c;
    cand.mesh = false;
    set.add(std::move(cand));
  }
  if (c.queue != sim::QueuePolicy::kCalendar) {
    CampaignCase cand = c;
    cand.queue = sim::QueuePolicy::kCalendar;
    set.add(std::move(cand));
  }
  if (c.tiles > 1) {
    for (const std::uint32_t t : {1u, c.tiles / 2}) {
      CampaignCase cand = c;
      cand.tiles = t;
      set.add(std::move(cand));
    }
  }
  if (c.dynamic_mapper) {
    CampaignCase cand = c;
    cand.dynamic_mapper = false;
    set.add(std::move(cand));
  }
  if (c.static_admission) {
    CampaignCase cand = c;
    cand.static_admission = false;
    set.add(std::move(cand));
  }

  // Count axes: halve (fast) then decrement (the last unit of
  // 1-minimality).
  for (const std::uint32_t v : {c.cores / 2, c.cores - 1}) {
    CampaignCase cand = c;
    cand.cores = v;
    set.add(std::move(cand));
  }
  for (const std::uint64_t v : {c.items / 2, c.items - 1}) {
    CampaignCase cand = c;
    cand.items = v;
    set.add(std::move(cand));
  }
  {
    CampaignCase cand = c;
    cand.compute_cycles = c.compute_cycles / 2;
    set.add(std::move(cand));
  }
  for (const std::uint64_t v : {c.scale / 2, c.scale - 1}) {
    CampaignCase cand = c;
    cand.scale = v;
    set.add(std::move(cand));
  }
  for (const std::uint32_t v : {c.graph_tasks / 2, c.graph_tasks - 1}) {
    CampaignCase cand = c;
    cand.graph_tasks = v;
    set.add(std::move(cand));
  }
  for (const std::uint32_t v : {c.tenants / 2, c.tenants - 1}) {
    CampaignCase cand = c;
    cand.tenants = v;
    set.add(std::move(cand));
  }
  for (const std::uint32_t v : {c.jobs_per_tenant / 2, c.jobs_per_tenant - 1}) {
    CampaignCase cand = c;
    cand.jobs_per_tenant = v;
    set.add(std::move(cand));
  }
  return set.take();
}

ShrinkResult shrink_case(const CampaignCase& c,
                         const FailPredicate& still_fails,
                         std::size_t max_attempts) {
  ShrinkResult r;
  r.minimal = c;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const CampaignCase& cand : shrink_candidates(r.minimal)) {
      if (r.attempts >= max_attempts) {
        r.at_budget = true;
        return r;
      }
      ++r.attempts;
      if (still_fails(cand)) {
        r.minimal = cand;
        ++r.steps;
        progress = true;
        break;
      }
    }
  }
  return r;
}

}  // namespace rw::fuzz
