// rw::fuzz — auto-shrink for failing cases.
//
// Given a case that violates an invariant, shrink_case() greedily walks
// toward a local minimum: at each step it proposes single-step
// reductions along every axis (drop fault-plan events — chunks first,
// then one at a time — fewer cores/tiles/items/tasks/tenants/jobs,
// smaller compute blocks and scale, mesh -> bus, recovery -> none,
// heap -> calendar) and accepts the first candidate that still violates
// the SAME invariant. It stops when no candidate reproduces — which is
// exactly 1-minimality: removing any one remaining element makes the
// failure disappear. The property tests in tests/test_fuzz_shrink.cpp
// hold both halves of that contract against synthetic predicates.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "fuzz/case.hpp"

namespace rw::fuzz {

/// "Does this candidate still fail the way the original did?" Must be
/// deterministic; the shrinker calls it once per candidate.
using FailPredicate = std::function<bool(const CampaignCase&)>;

/// All single-step reductions of `c`, in the fixed priority order the
/// greedy loop tries them (plan chunks, plan singles, structure, knobs).
/// Every candidate is valid (fields clamped to their floors) and
/// distinct from `c`. Exposed so the 1-minimality property test can
/// enumerate exactly the neighbourhood the shrinker searched.
[[nodiscard]] std::vector<CampaignCase> shrink_candidates(
    const CampaignCase& c);

struct ShrinkResult {
  CampaignCase minimal;      // locally 1-minimal unless at_budget
  std::size_t steps = 0;     // accepted reductions
  std::size_t attempts = 0;  // predicate evaluations
  bool at_budget = false;    // stopped on max_attempts, not minimality
};

/// Greedy fixed-point shrink. `still_fails` should already have returned
/// true for `c` (the result is just `c` otherwise).
[[nodiscard]] ShrinkResult shrink_case(const CampaignCase& c,
                                       const FailPredicate& still_fails,
                                       std::size_t max_attempts = 2'000);

}  // namespace rw::fuzz
