#include "cic/archfile.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"
#include "common/xml.hpp"

namespace rw::cic {

const char* memory_style_name(MemoryStyle s) {
  switch (s) {
    case MemoryStyle::kDistributed: return "distributed";
    case MemoryStyle::kShared: return "shared";
  }
  return "?";
}

ArchInfo ArchInfo::cell_like(std::size_t spes) {
  ArchInfo a;
  a.name = "cellish";
  a.style = MemoryStyle::kDistributed;
  a.platform.cores.push_back(
      {sim::PeClass::kRisc, mhz(800), 64 * 1024});  // PPE-ish control core
  for (std::size_t i = 0; i < spes; ++i)
    a.platform.cores.push_back({sim::PeClass::kDsp, mhz(600), 256 * 1024});
  a.platform.shared_mem_bytes = 512 * 1024;
  a.platform.shared_mem_latency = 40;  // off-chip-ish
  a.platform.interconnect = sim::PlatformConfig::Icn::kMesh;
  a.platform.mesh.width = 4;
  a.platform.mesh.height = 2;
  return a;
}

ArchInfo ArchInfo::smp_like(std::size_t cores) {
  ArchInfo a;
  a.name = "mpcoreish";
  a.style = MemoryStyle::kShared;
  for (std::size_t i = 0; i < cores; ++i)
    a.platform.cores.push_back({sim::PeClass::kRisc, mhz(400), 32 * 1024});
  a.platform.shared_mem_bytes = 1024 * 1024;
  a.platform.shared_mem_latency = 12;  // coherent L2-ish
  a.platform.interconnect = sim::PlatformConfig::Icn::kSharedBus;
  a.platform.bus.frequency = mhz(266);
  a.platform.bus.width_bytes = 8;
  return a;
}

Result<ArchInfo> parse_arch_file(const std::string& xml_text) {
  const auto doc = RW_TRY(xml::parse(xml_text));
  const xml::Element& root = *doc;
  if (root.name != "architecture")
    return make_error("root element must be <architecture>", root.line);

  ArchInfo arch;
  arch.name = std::string(root.attr("name"));
  const auto style = root.attr("style");
  if (style == "shared") {
    arch.style = MemoryStyle::kShared;
  } else if (style == "distributed" || style.empty()) {
    arch.style = MemoryStyle::kDistributed;
  } else {
    return make_error("unknown style '" + std::string(style) + "'",
                      root.line);
  }

  for (const auto* proc : root.children_named("processor")) {
    const auto cls_name = proc->attr("class");
    sim::PeClass cls;
    if (cls_name == "RISC") {
      cls = sim::PeClass::kRisc;
    } else if (cls_name == "DSP") {
      cls = sim::PeClass::kDsp;
    } else if (cls_name == "VLIW") {
      cls = sim::PeClass::kVliw;
    } else if (cls_name == "ASIP") {
      cls = sim::PeClass::kAsip;
    } else if (cls_name == "ACCEL") {
      cls = sim::PeClass::kAccel;
    } else {
      return make_error("unknown processor class '" +
                        std::string(cls_name) + "'", proc->line);
    }
    const auto freq = proc->attr_u64("freq", mhz(400));
    const auto spm = proc->attr_u64("scratchpad", 64 * 1024);
    const auto count = proc->attr_u64("count", 1);
    if (count == 0 || count > 1024)
      return make_error("bad processor count", proc->line);
    for (std::uint64_t i = 0; i < count; ++i)
      arch.platform.cores.push_back({cls, freq, spm});
  }
  if (arch.platform.cores.empty())
    return make_error("architecture has no processors", root.line);

  if (const auto* mem = root.child("memory")) {
    arch.platform.shared_mem_bytes = mem->attr_u64("bytes", 1 << 20);
    arch.platform.shared_mem_latency = mem->attr_u64("latency", 12);
  }
  if (const auto* icn = root.child("interconnect")) {
    const auto kind = icn->attr("kind");
    if (kind == "bus" || kind.empty()) {
      arch.platform.interconnect = sim::PlatformConfig::Icn::kSharedBus;
      arch.platform.bus.frequency = icn->attr_u64("freq", mhz(200));
      arch.platform.bus.width_bytes =
          static_cast<std::uint32_t>(icn->attr_u64("width", 8));
    } else if (kind == "mesh") {
      arch.platform.interconnect = sim::PlatformConfig::Icn::kMesh;
      arch.platform.mesh.width =
          static_cast<std::uint32_t>(icn->attr_u64("width", 4));
      arch.platform.mesh.height =
          static_cast<std::uint32_t>(icn->attr_u64("height", 4));
      arch.platform.mesh.link_frequency = icn->attr_u64("freq", mhz(500));
    } else {
      return make_error("unknown interconnect kind '" + std::string(kind) +
                        "'", icn->line);
    }
  }
  if (const auto* lock = root.child("lock")) {
    arch.lock_cycles = lock->attr_u64("cycles", 40);
  }
  return arch;
}

namespace {

Result<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return make_error("cannot open architecture file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Result<ArchInfo> load_arch_file(const std::string& path) {
  return read_text_file(path).and_then(
      [](const std::string& text) { return parse_arch_file(text); });
}

Status save_arch_file(const ArchInfo& arch, const std::string& path) {
  std::ofstream out(path);
  if (!out) return make_error("cannot write architecture file '" + path +
                              "'");
  out << arch_to_xml(arch);
  return out.good() ? Status::ok_status()
                    : Status(make_error("write failed for '" + path + "'"));
}

std::string arch_to_xml(const ArchInfo& arch) {
  std::string s = strformat("<architecture name=\"%s\" style=\"%s\">\n",
                            arch.name.c_str(),
                            memory_style_name(arch.style));
  for (const auto& c : arch.platform.cores) {
    s += strformat(
        "  <processor class=\"%s\" freq=\"%llu\" scratchpad=\"%llu\"/>\n",
        sim::pe_class_name(c.cls),
        static_cast<unsigned long long>(c.frequency),
        static_cast<unsigned long long>(c.scratchpad_bytes));
  }
  s += strformat("  <memory kind=\"shared\" bytes=\"%llu\" latency=\"%llu\"/>\n",
                 static_cast<unsigned long long>(
                     arch.platform.shared_mem_bytes),
                 static_cast<unsigned long long>(
                     arch.platform.shared_mem_latency));
  if (arch.platform.interconnect == sim::PlatformConfig::Icn::kSharedBus) {
    s += strformat("  <interconnect kind=\"bus\" freq=\"%llu\" width=\"%u\"/>\n",
                   static_cast<unsigned long long>(
                       arch.platform.bus.frequency),
                   arch.platform.bus.width_bytes);
  } else {
    s += strformat(
        "  <interconnect kind=\"mesh\" width=\"%u\" height=\"%u\" freq=\"%llu\"/>\n",
        arch.platform.mesh.width, arch.platform.mesh.height,
        static_cast<unsigned long long>(
            arch.platform.mesh.link_frequency));
  }
  s += strformat("  <lock cycles=\"%llu\"/>\n",
                 static_cast<unsigned long long>(arch.lock_cycles));
  s += "</architecture>\n";
  return s;
}

}  // namespace rw::cic
