#include "cic/translator.hpp"

#include <memory>

#include "common/strings.hpp"
#include "maps/mapping.hpp"
#include "sim/channel.hpp"
#include "sim/process.hpp"

namespace rw::cic {

namespace {

/// Mirror the CIC structure as a maps task graph plus PE list.
Result<std::pair<maps::TaskGraph, std::vector<maps::PeDesc>>>
to_mapping_problem(const CicProgram& prog, const ArchInfo& arch) {
  if (auto s = prog.validate(); !s.ok()) return s.error();
  maps::TaskGraph g;
  for (const auto& t : prog.tasks()) {
    const auto id = g.add_task(t.name, t.wcet);
    if (t.preferred_pe) g.task(id).preferred_pe = t.preferred_pe;
  }
  for (const auto& c : prog.channels())
    g.add_edge(maps::TaskNodeId{c.src.value()},
               maps::TaskNodeId{c.dst.value()}, c.token_bytes);
  if (!g.is_acyclic())
    return make_error("automatic mapping requires an acyclic CIC graph");
  std::vector<maps::PeDesc> pes;
  for (const auto& c : arch.platform.cores)
    pes.push_back({c.cls, c.frequency});
  return std::make_pair(std::move(g), std::move(pes));
}

}  // namespace

Result<CicMapping> CicMapping::automatic(const CicProgram& prog,
                                         const ArchInfo& arch) {
  auto problem = to_mapping_problem(prog, arch);
  if (!problem.ok()) return problem.error();
  const auto& [g, pes] = problem.value();
  const auto m = maps::heft_map(
      g, pes, maps::simple_comm_cost(nanoseconds(200), 0.002));
  CicMapping out;
  out.task_to_pe = m.task_to_pe;
  return out;
}

Result<CicMapping> CicMapping::optimized(const CicProgram& prog,
                                         const ArchInfo& arch,
                                         std::uint64_t seed,
                                         int iterations) {
  auto problem = to_mapping_problem(prog, arch);
  if (!problem.ok()) return problem.error();
  const auto& [g, pes] = problem.value();
  const auto m = maps::anneal_map(
      g, pes, maps::simple_comm_cost(nanoseconds(200), 0.002), seed,
      iterations);
  CicMapping out;
  out.task_to_pe = m.task_to_pe;
  return out;
}

Result<TargetProgram> TargetProgram::translate(CicProgram prog,
                                               ArchInfo arch,
                                               CicMapping mapping) {
  if (auto s = prog.validate(); !s.ok()) return s.error();
  if (mapping.task_to_pe.size() != prog.tasks().size())
    return make_error("mapping size != task count");
  for (const std::size_t pe : mapping.task_to_pe)
    if (pe >= arch.platform.cores.size())
      return make_error("mapping references PE " + std::to_string(pe) +
                        " but the architecture has only " +
                        std::to_string(arch.platform.cores.size()));
  return TargetProgram(std::move(prog), std::move(arch),
                       std::move(mapping));
}

namespace {

/// Digest recorded by sink tasks: must be target-independent.
Token sink_digest(std::uint32_t task_id, std::uint64_t iter,
                  const std::vector<Token>& inputs) {
  Token acc = static_cast<Token>(task_id) * 2654435761LL +
              static_cast<Token>(iter);
  for (const Token v : inputs) acc = acc * 33 + v;
  return acc;
}

struct RunCtx {
  const CicProgram& prog;
  const ArchInfo& arch;
  const CicMapping& mapping;
  sim::Platform& platform;
  std::vector<std::unique_ptr<sim::Channel<Token>>> channels;
  std::uint64_t iterations;
  TargetProgram::RunResult* result;
  std::vector<std::uint64_t> completed_iterations;
};

sim::Process task_process(RunCtx& ctx, std::size_t ti) {
  const CicTask& task = ctx.prog.tasks()[ti];
  const std::size_t pe = ctx.mapping.task_to_pe[ti];
  auto& core = ctx.platform.core(pe);
  auto& kernel = ctx.platform.kernel();
  const auto in_chans = ctx.prog.inputs_of(task.id);
  const auto out_chans = ctx.prog.outputs_of(task.id);
  const bool is_sink = out_chans.empty();

  for (std::uint64_t iter = 0; iter < ctx.iterations; ++iter) {
    // Run-time system: periodic tasks wait for their release.
    if (task.period > 0) {
      const TimePs due = iter * task.period;
      if (kernel.now() < due) co_await sim::delay(kernel, due - kernel.now());
    }

    // Receive one token per input port, paying the read-side cost.
    std::vector<Token> inputs;
    inputs.reserve(in_chans.size());
    for (const CicChannel* ch : in_chans) {
      const Token v = co_await ctx.channels[ch->id.index()]->recv();
      if (ctx.arch.style == MemoryStyle::kShared) {
        // Lock + coherent read from shared memory.
        const Cycles read_cost =
            ctx.arch.lock_cycles +
            ctx.arch.platform.shared_mem_latency *
                ((ch->token_bytes + 7) / 8);
        co_await core.compute(read_cost, task.name + ".recv");
      }
      inputs.push_back(v);
    }

    // The task body.
    co_await core.compute(task.wcet, task.name);
    const std::vector<Token> outputs = task.behavior(inputs, iter);

    // Send one token per output port, paying the write-side cost.
    for (std::size_t p = 0; p < out_chans.size(); ++p) {
      const CicChannel* ch = out_chans[p];
      const Token v = p < outputs.size() ? outputs[p] : 0;
      if (ctx.arch.style == MemoryStyle::kDistributed) {
        // DMA transfer across the interconnect to the consumer's PE.
        const auto dst_pe = ctx.mapping.task_to_pe[ch->dst.index()];
        const auto [s, f] = ctx.platform.interconnect().reserve_transfer(
            sim::CoreId{static_cast<std::uint32_t>(pe)},
            sim::CoreId{static_cast<std::uint32_t>(dst_pe)},
            ch->token_bytes, kernel.now());
        if (f > kernel.now())
          co_await sim::delay(kernel, f - kernel.now());
      } else {
        const Cycles write_cost =
            ctx.arch.lock_cycles +
            ctx.arch.platform.shared_mem_latency *
                ((ch->token_bytes + 7) / 8);
        co_await core.compute(write_cost, task.name + ".send");
      }
      co_await ctx.channels[ch->id.index()]->send(v);
      ++ctx.result->messages;
      ctx.result->bytes_moved += ch->token_bytes;
    }

    if (is_sink)
      ctx.result->sink_outputs[task.name].push_back(
          sink_digest(task.id.value(), iter, inputs));

    // Deadline accounting for annotated periodic tasks.
    if (task.period > 0 && task.deadline > 0) {
      const TimePs due = iter * task.period + task.deadline;
      if (kernel.now() > due) ++ctx.result->deadline_misses;
    }
    ++ctx.completed_iterations[ti];
  }
}

}  // namespace

TargetProgram::RunResult TargetProgram::run(std::uint64_t iterations) const {
  RunResult result;
  sim::Platform platform(arch_.platform);

  RunCtx ctx{prog_, arch_, mapping_, platform, {}, iterations, &result, {}};
  ctx.completed_iterations.assign(prog_.tasks().size(), 0);
  for (const auto& c : prog_.channels())
    ctx.channels.push_back(std::make_unique<sim::Channel<Token>>(
        platform.kernel(), c.capacity, c.name));

  for (std::size_t t = 0; t < prog_.tasks().size(); ++t)
    sim::spawn(platform.kernel(), task_process(ctx, t));

  platform.kernel().run(/*max_events=*/iterations * 1'000'000 + 1'000'000);

  result.makespan = platform.kernel().now();
  // The kernel drained: any task short of its quota is blocked forever on
  // a channel — a deadlock (typically a channel cycle with the wrong
  // capacities, or a starved input).
  for (std::size_t t = 0; t < prog_.tasks().size(); ++t) {
    if (ctx.completed_iterations[t] < iterations) {
      result.deadlocked = true;
      result.blocked_tasks.push_back(prog_.tasks()[t].name);
    }
  }
  double util = 0;
  for (std::size_t c = 0; c < platform.core_count(); ++c)
    util += platform.core(c).utilization(result.makespan);
  result.mean_core_utilization =
      platform.core_count() ? util / static_cast<double>(platform.core_count())
                            : 0;
  return result;
}

std::string TargetProgram::generated_code() const {
  const bool shared = arch_.style == MemoryStyle::kShared;
  std::string s;
  s += strformat(
      "/* === target-executable C code, synthesized by the roadworks CIC "
      "translator ===\n * program: %s\n * target:  %s (%s memory style, %zu "
      "PEs)\n */\n\n",
      prog_.name().c_str(), arch_.name.c_str(),
      memory_style_name(arch_.style), arch_.platform.cores.size());
  s += shared ? "#include \"rt/shm_ring.h\"\n#include \"rt/lock.h\"\n"
              : "#include \"rt/msgq.h\"\n#include \"rt/dma.h\"\n";
  s += "#include \"rt/sched.h\"\n\n/* --- channels --- */\n";
  for (const auto& c : prog_.channels()) {
    if (shared) {
      s += strformat(
          "static shm_ring_t ch%u; /* %s: %uB tokens, depth %zu, "
          "lock-protected in shared memory */\n",
          c.id.value(), c.name.c_str(), c.token_bytes, c.capacity);
    } else {
      s += strformat(
          "static msgq_t ch%u;    /* %s: %uB tokens, depth %zu, DMA over "
          "interconnect */\n",
          c.id.value(), c.name.c_str(), c.token_bytes, c.capacity);
    }
  }

  s += "\n/* --- task wrappers --- */\n";
  for (const auto& t : prog_.tasks()) {
    s += strformat("static void task_%s(void) {\n", t.name.c_str());
    for (const CicChannel* ch : prog_.inputs_of(t.id)) {
      s += shared ? strformat(
                        "  token_t in%zu; lock(&ch%u.mtx); "
                        "shm_ring_pop(&ch%u, &in%zu); unlock(&ch%u.mtx);\n",
                        ch->dst_port, ch->id.value(), ch->id.value(),
                        ch->dst_port, ch->id.value())
                  : strformat("  token_t in%zu = msgq_recv(&ch%u);\n",
                              ch->dst_port, ch->id.value());
    }
    s += strformat("  /* %llu cycles of task body */\n  %s_kernel();\n",
                   static_cast<unsigned long long>(t.wcet), t.name.c_str());
    for (const CicChannel* ch : prog_.outputs_of(t.id)) {
      s += shared ? strformat(
                        "  lock(&ch%u.mtx); shm_ring_push(&ch%u, out%zu); "
                        "unlock(&ch%u.mtx);\n",
                        ch->id.value(), ch->id.value(), ch->src_port,
                        ch->id.value())
                  : strformat("  dma_send(&ch%u, out%zu, /*bytes=*/%u);\n",
                              ch->id.value(), ch->src_port, ch->token_bytes);
    }
    s += "}\n";
  }

  s += "\n/* --- per-PE run-time systems --- */\n";
  for (std::size_t pe = 0; pe < arch_.platform.cores.size(); ++pe) {
    s += strformat("void pe%zu_main(void) { /* %s @ %s */\n", pe,
                   sim::pe_class_name(arch_.platform.cores[pe].cls),
                   format_hz(arch_.platform.cores[pe].frequency).c_str());
    bool any = false;
    for (std::size_t t = 0; t < prog_.tasks().size(); ++t) {
      if (mapping_.task_to_pe[t] != pe) continue;
      any = true;
      const auto& task = prog_.tasks()[t];
      if (task.period > 0) {
        s += strformat(
            "  rt_register_periodic(task_%s, /*period_ps=*/%llu, "
            "/*deadline_ps=*/%llu);\n",
            task.name.c_str(),
            static_cast<unsigned long long>(task.period),
            static_cast<unsigned long long>(task.deadline));
      } else {
        s += strformat("  rt_register_datadriven(task_%s);\n",
                       task.name.c_str());
      }
    }
    if (!any) s += "  /* idle PE */\n";
    s += "  rt_run();\n}\n";
  }
  return s;
}

}  // namespace rw::cic
