// Design-space exploration over target architectures (Sec. V).
//
// "There are many issues to be researched further in the future, which
// include optimal mapping of CIC tasks to a given target architecture,
// [and] exploration of optimal target architecture..."
//
// Because a CicProgram is architecture-independent and ArchInfo is just
// data, exploring targets is a loop: generate candidate architectures,
// map + translate + run each, collect cost/performance, return the Pareto
// front. Cost is a simple area model (core class weights + memory);
// performance is the simulated makespan for a fixed iteration count.
#pragma once

#include <vector>

#include "cic/archfile.hpp"
#include "cic/model.hpp"
#include "cic/translator.hpp"
#include "common/run_metrics.hpp"
#include "harness/harness.hpp"

namespace rw::cic {

struct DsePoint {
  ArchInfo arch;
  double area_cost = 0;       // abstract area units
  RunMetrics metrics;         // evaluation-run makespan/utilization/misses
  bool feasible = false;      // mapped + translated + ran
  bool pareto = false;        // on the cost/performance front

  [[nodiscard]] TimePs makespan() const { return metrics.makespan; }

  /// Throughput proxy: iterations per millisecond of simulated time.
  [[nodiscard]] double iterations_per_ms(std::uint64_t iterations) const {
    if (metrics.makespan == 0) return 0;
    return static_cast<double>(iterations) * 1e9 /
           static_cast<double>(metrics.makespan);
  }
};

/// Abstract area of an architecture: weighted cores + memory.
double architecture_area(const ArchInfo& arch);

struct DseConfig {
  std::uint64_t iterations = 30;  // evaluation run length
  bool use_annealing = false;     // refine each mapping (slower, better)
  /// Worker threads for candidate evaluation: 1 = serial, 0 = one per
  /// hardware thread. Candidate runs are independent single-threaded
  /// simulations, so the resulting points are bit-identical for any value.
  std::size_t threads = 0;
};

/// Evaluate every candidate; mark the Pareto-optimal ones (minimal area
/// for their makespan and vice versa). Candidates that fail to map are
/// returned with feasible=false and never Pareto. Evaluation fans out over
/// rw::harness; pass `fanout` to receive the per-run harness records
/// (wall clocks, seeds) for metrics export.
std::vector<DsePoint> explore_architectures(
    const CicProgram& prog, const std::vector<ArchInfo>& candidates,
    const DseConfig& cfg = {}, harness::ScenarioResult* fanout = nullptr);

/// A default candidate sweep: SMPs of 1..8 cores and Cell-likes of 1..8
/// SPEs (the two styles the paper's experiments used).
std::vector<ArchInfo> default_candidates(std::size_t max_cores = 8);

}  // namespace rw::cic
