#include "cic/dse.hpp"

#include "common/strings.hpp"

namespace rw::cic {

double architecture_area(const ArchInfo& arch) {
  // Abstract area units: a RISC is 1.0, a DSP 1.4 (wider datapaths), a
  // VLIW 2.2, an ASIP 0.8, an accelerator 1.6; scratchpads and shared
  // memory cost per 64 KiB.
  double area = 0;
  for (const auto& c : arch.platform.cores) {
    switch (c.cls) {
      case sim::PeClass::kRisc: area += 1.0; break;
      case sim::PeClass::kDsp: area += 1.4; break;
      case sim::PeClass::kVliw: area += 2.2; break;
      case sim::PeClass::kAsip: area += 0.8; break;
      case sim::PeClass::kAccel: area += 1.6; break;
    }
    area += static_cast<double>(c.scratchpad_bytes) / (64.0 * 1024.0) * 0.2;
  }
  area += static_cast<double>(arch.platform.shared_mem_bytes) /
          (64.0 * 1024.0) * 0.15;
  if (arch.platform.interconnect == sim::PlatformConfig::Icn::kMesh)
    area += 0.1 * static_cast<double>(arch.platform.mesh.width *
                                      arch.platform.mesh.height);
  else
    area += 0.5;  // the bus is cheap; that is its appeal
  return area;
}

std::vector<ArchInfo> default_candidates(std::size_t max_cores) {
  std::vector<ArchInfo> out;
  for (std::size_t n = 1; n <= max_cores; ++n) {
    auto smp = ArchInfo::smp_like(n);
    smp.name = strformat("smp%zu", n);
    out.push_back(std::move(smp));
    auto cell = ArchInfo::cell_like(n);
    cell.name = strformat("cell%zu", n);
    out.push_back(std::move(cell));
  }
  return out;
}

std::vector<DsePoint> explore_architectures(
    const CicProgram& prog, const std::vector<ArchInfo>& candidates,
    const DseConfig& cfg, harness::ScenarioResult* fanout) {
  std::vector<DsePoint> points(candidates.size());

  // One harness run per candidate. Each run writes only its own point, so
  // the fan-out is race-free, and nothing below depends on wall time or
  // thread identity — parallel evaluation is bit-identical to serial.
  harness::Scenario scenario("cic_dse");
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const ArchInfo& arch = candidates[i];
    scenario.add_run(
        arch.name.empty() ? strformat("candidate%zu", i) : arch.name,
        [&prog, &arch, &cfg, &pt = points[i]](const harness::RunContext&) {
          pt.arch = arch;
          pt.area_cost = architecture_area(arch);
          const auto mapping = cfg.use_annealing
                                   ? CicMapping::optimized(prog, arch)
                                   : CicMapping::automatic(prog, arch);
          if (!mapping.ok()) return RunMetrics{};
          auto target = TargetProgram::translate(prog, arch, mapping.value());
          if (!target.ok()) return RunMetrics{};
          const auto r = target.value().run(cfg.iterations);
          pt.feasible = true;
          pt.metrics.makespan = r.makespan;
          pt.metrics.mean_core_utilization = r.mean_core_utilization;
          pt.metrics.deadline_misses = r.deadline_misses;
          return pt.metrics;
        });
  }
  harness::ScenarioResult result =
      harness::Runner({cfg.threads}).run(scenario);
  if (fanout) *fanout = std::move(result);

  // Pareto marking: a feasible point dominates another when it is no
  // worse in both area and makespan and better in at least one.
  for (auto& p : points) {
    if (!p.feasible) continue;
    bool dominated = false;
    for (const auto& q : points) {
      if (!q.feasible || &q == &p) continue;
      const bool no_worse = q.area_cost <= p.area_cost &&
                            q.metrics.makespan <= p.metrics.makespan;
      const bool better = q.area_cost < p.area_cost ||
                          q.metrics.makespan < p.metrics.makespan;
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    p.pareto = !dominated;
  }
  return points;
}

}  // namespace rw::cic
