#include "cic/model.hpp"

#include <algorithm>

namespace rw::cic {

CicTaskId CicProgram::add_task(std::string name, Cycles wcet,
                               std::vector<std::string> in_ports,
                               std::vector<std::string> out_ports,
                               Behavior behavior) {
  CicTask t;
  t.id = CicTaskId{static_cast<std::uint32_t>(tasks_.size())};
  t.name = std::move(name);
  t.wcet = wcet;
  t.in_ports = std::move(in_ports);
  t.out_ports = std::move(out_ports);
  if (behavior) {
    t.behavior = std::move(behavior);
  } else {
    // Default behaviour: a deterministic mix of inputs, iteration and task
    // identity — enough to detect any cross-target divergence.
    const auto tid = t.id.value();
    const std::size_t nout = t.out_ports.size();
    t.behavior = [tid, nout](const std::vector<Token>& in,
                             std::uint64_t iter) {
      Token acc = static_cast<Token>(tid) * 1315423911LL +
                  static_cast<Token>(iter);
      for (const Token v : in) acc = acc * 31 + v;
      std::vector<Token> out(nout);
      for (std::size_t i = 0; i < nout; ++i)
        out[i] = acc + static_cast<Token>(i);
      return out;
    };
  }
  tasks_.push_back(std::move(t));
  return tasks_.back().id;
}

void CicProgram::set_period(CicTaskId t, DurationPs period) {
  tasks_.at(t.index()).period = period;
}
void CicProgram::set_deadline(CicTaskId t, DurationPs deadline) {
  tasks_.at(t.index()).deadline = deadline;
}
void CicProgram::set_preferred_pe(CicTaskId t, sim::PeClass cls) {
  tasks_.at(t.index()).preferred_pe = cls;
}

namespace {

std::optional<std::size_t> port_index(const std::vector<std::string>& ports,
                                      const std::string& name) {
  const auto it = std::find(ports.begin(), ports.end(), name);
  if (it == ports.end()) return std::nullopt;
  return static_cast<std::size_t>(it - ports.begin());
}

}  // namespace

Result<CicChannelId> CicProgram::connect(CicTaskId src,
                                         const std::string& out_port,
                                         CicTaskId dst,
                                         const std::string& in_port,
                                         std::uint32_t token_bytes,
                                         std::size_t capacity) {
  if (src.index() >= tasks_.size() || dst.index() >= tasks_.size())
    return make_error("connect: invalid task id");
  const auto sp = port_index(tasks_[src.index()].out_ports, out_port);
  if (!sp)
    return make_error("task '" + tasks_[src.index()].name +
                      "' has no output port '" + out_port + "'");
  const auto dp = port_index(tasks_[dst.index()].in_ports, in_port);
  if (!dp)
    return make_error("task '" + tasks_[dst.index()].name +
                      "' has no input port '" + in_port + "'");

  CicChannel c;
  c.id = CicChannelId{static_cast<std::uint32_t>(channels_.size())};
  c.name = tasks_[src.index()].name + "." + out_port + "->" +
           tasks_[dst.index()].name + "." + in_port;
  c.src = src;
  c.src_port = *sp;
  c.dst = dst;
  c.dst_port = *dp;
  c.token_bytes = token_bytes;
  c.capacity = std::max<std::size_t>(1, capacity);
  channels_.push_back(std::move(c));
  return channels_.back().id;
}

std::vector<const CicChannel*> CicProgram::inputs_of(CicTaskId t) const {
  std::vector<const CicChannel*> out;
  for (const auto& c : channels_)
    if (c.dst == t) out.push_back(&c);
  // Order by destination port so behaviour sees inputs in port order.
  std::sort(out.begin(), out.end(),
            [](const CicChannel* a, const CicChannel* b) {
              return a->dst_port < b->dst_port;
            });
  return out;
}

std::vector<const CicChannel*> CicProgram::outputs_of(CicTaskId t) const {
  std::vector<const CicChannel*> out;
  for (const auto& c : channels_)
    if (c.src == t) out.push_back(&c);
  std::sort(out.begin(), out.end(),
            [](const CicChannel* a, const CicChannel* b) {
              return a->src_port < b->src_port;
            });
  return out;
}

Status CicProgram::validate() const {
  for (const auto& t : tasks_) {
    // Every port wired exactly once.
    for (std::size_t p = 0; p < t.in_ports.size(); ++p) {
      int wired = 0;
      for (const auto& c : channels_)
        if (c.dst == t.id && c.dst_port == p) ++wired;
      if (wired != 1)
        return make_error("task '" + t.name + "' input port '" +
                          t.in_ports[p] + "' wired " +
                          std::to_string(wired) + " times");
    }
    for (std::size_t p = 0; p < t.out_ports.size(); ++p) {
      int wired = 0;
      for (const auto& c : channels_)
        if (c.src == t.id && c.src_port == p) ++wired;
      if (wired != 1)
        return make_error("task '" + t.name + "' output port '" +
                          t.out_ports[p] + "' wired " +
                          std::to_string(wired) + " times");
    }
    if (t.in_ports.empty() && t.period == 0)
      return make_error("source task '" + t.name +
                        "' needs a period (it has no inputs to trigger it)");
  }
  return Status::ok_status();
}

}  // namespace rw::cic
