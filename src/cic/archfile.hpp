// Architecture information file (Sec. V).
//
// "Information on the target architecture and the design constraints is
// separately described in an xml-style file, called the architecture
// information file." This parser turns such a file into a simulator
// platform configuration plus the memory-style switch the translator's
// back-end selection keys off.
//
// Example:
//   <architecture name="cellish" style="distributed">
//     <processor class="RISC" freq="400000000" count="1"/>
//     <processor class="DSP"  freq="300000000" count="6"/>
//     <memory kind="shared" bytes="1048576" latency="14"/>
//     <interconnect kind="bus" freq="200000000" width="16"/>
//   </architecture>
#pragma once

#include <string>

#include "common/result.hpp"
#include "sim/platform.hpp"

namespace rw::cic {

/// Which communication style the translator must synthesize.
enum class MemoryStyle : std::uint8_t {
  kDistributed,  // message passing over the interconnect (Cell-like)
  kShared,       // lock-protected shared-memory rings (MPCore-like)
};

const char* memory_style_name(MemoryStyle s);

struct ArchInfo {
  std::string name;
  MemoryStyle style = MemoryStyle::kDistributed;
  sim::PlatformConfig platform;
  Cycles lock_cycles = 40;  // cost of acquiring/releasing a lock (shared)

  /// Built-in reference targets for tests and examples.
  static ArchInfo cell_like(std::size_t spes = 6);
  static ArchInfo smp_like(std::size_t cores = 4);
};

/// Parse the XML text of an architecture information file.
Result<ArchInfo> parse_arch_file(const std::string& xml_text);

/// Render an ArchInfo back to XML (round-trip support / file generation).
std::string arch_to_xml(const ArchInfo& arch);

/// File-system conveniences for the tool flow (HOPES keeps architecture
/// files next to the application sources).
Result<ArchInfo> load_arch_file(const std::string& path);
Status save_arch_file(const ArchInfo& arch, const std::string& path);

}  // namespace rw::cic
