// The CIC translator (Sec. V).
//
// "the CIC translator automatically translates the task codes in the CIC
// model into the final parallel code, following the partitioning decision.
// The CIC translation involves synthesizing the interface code between
// tasks and a run-time system that schedules the mapped tasks."
//
// translate() binds a pure CicProgram to an ArchInfo + mapping and yields
// a TargetProgram that can (a) emit the synthesized per-PE C code and
// (b) execute on the corresponding simulated platform. The two back ends
// differ exactly where real ones do:
//   * distributed — channels become message queues whose transfers ride
//     the platform interconnect (DMA-style),
//   * shared     — channels become lock-protected rings in shared memory,
//     paying lock cycles and shared-memory access latency.
// Behaviour (the computed token values) must be identical across back
// ends; only timing differs. That is the retargetability contract.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cic/archfile.hpp"
#include "cic/model.hpp"

namespace rw::cic {

struct CicMapping {
  std::vector<std::size_t> task_to_pe;

  /// HEFT-based automatic mapping onto the architecture's PEs.
  static Result<CicMapping> automatic(const CicProgram& prog,
                                      const ArchInfo& arch);

  /// Simulated-annealing-refined mapping (the "optimal mapping of CIC
  /// tasks" future-work item of Sec. V). Slower; never worse than
  /// automatic() under the static cost model.
  static Result<CicMapping> optimized(const CicProgram& prog,
                                      const ArchInfo& arch,
                                      std::uint64_t seed = 1,
                                      int iterations = 1500);
};

class TargetProgram {
 public:
  static Result<TargetProgram> translate(CicProgram prog, ArchInfo arch,
                                         CicMapping mapping);

  struct RunResult {
    /// Sink task name -> the digest token it computed each iteration.
    /// Identical across back ends for the same CicProgram.
    std::map<std::string, std::vector<Token>> sink_outputs;
    TimePs makespan = 0;
    double mean_core_utilization = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes_moved = 0;
    /// Deadlock diagnosis (Sec. VII's first failure mode): true when the
    /// simulation wedged before every task finished its iterations; the
    /// blocked task names identify the cycle.
    bool deadlocked = false;
    std::vector<std::string> blocked_tasks;
  };

  /// Execute `iterations` of every task on a fresh simulated platform.
  [[nodiscard]] RunResult run(std::uint64_t iterations) const;

  /// The synthesized target-executable C code (all PEs, one listing).
  [[nodiscard]] std::string generated_code() const;

  [[nodiscard]] const CicProgram& program() const { return prog_; }
  [[nodiscard]] const ArchInfo& arch() const { return arch_; }
  [[nodiscard]] const CicMapping& mapping() const { return mapping_; }

 private:
  TargetProgram(CicProgram prog, ArchInfo arch, CicMapping mapping)
      : prog_(std::move(prog)),
        arch_(std::move(arch)),
        mapping_(std::move(mapping)) {}

  CicProgram prog_;
  ArchInfo arch_;
  CicMapping mapping_;
};

}  // namespace rw::cic
