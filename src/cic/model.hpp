// Common Intermediate Code (CIC) — the HOPES programming model (Sec. V).
//
// "In a CIC, the potential functional and data parallelism of application
// tasks are specified independently of the target architecture and design
// constraints. CIC tasks are concurrent tasks communicating with each
// other through channels."
//
// A CicProgram is therefore *pure algorithm*: tasks with behaviour,
// ports, per-iteration cost, and optional real-time annotations. Nothing
// here references a platform — the architecture lives in the separate
// architecture-information file (archfile.hpp), and only the translator
// (translator.hpp) combines the two.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"
#include "sim/core.hpp"

namespace rw::cic {

struct CicTaskTag {};
using CicTaskId = Id<CicTaskTag>;
struct CicChannelTag {};
using CicChannelId = Id<CicChannelTag>;

/// One data token. Integer payloads keep behaviour exactly reproducible
/// across back ends, which is what the retargetability check needs.
using Token = std::int64_t;

/// Task behaviour: one iteration maps one token per input port to one
/// token per output port. Must be a pure function of its inputs and the
/// iteration index so that both back ends compute identical results.
using Behavior = std::function<std::vector<Token>(
    const std::vector<Token>& inputs, std::uint64_t iteration)>;

struct CicTask {
  CicTaskId id{};
  std::string name;
  Cycles wcet = 1000;            // per iteration, on the reference RISC
  DurationPs period = 0;         // >0: timer-driven (sources); 0: data-driven
  DurationPs deadline = 0;       // relative per-iteration deadline (0=none)
  std::optional<sim::PeClass> preferred_pe;  // annotation
  std::vector<std::string> in_ports;
  std::vector<std::string> out_ports;
  Behavior behavior;  // defaulted by CicProgram::add_task when empty
};

struct CicChannel {
  CicChannelId id{};
  std::string name;
  CicTaskId src{};
  std::size_t src_port = 0;
  CicTaskId dst{};
  std::size_t dst_port = 0;
  std::uint32_t token_bytes = 8;
  std::size_t capacity = 4;
};

class CicProgram {
 public:
  explicit CicProgram(std::string name = "app") : name_(std::move(name)) {}

  CicTaskId add_task(std::string name, Cycles wcet,
                     std::vector<std::string> in_ports,
                     std::vector<std::string> out_ports,
                     Behavior behavior = {});

  /// Annotations (the "lightweight C extensions").
  void set_period(CicTaskId t, DurationPs period);
  void set_deadline(CicTaskId t, DurationPs deadline);
  void set_preferred_pe(CicTaskId t, sim::PeClass cls);

  /// Connect src.out_port -> dst.in_port (ports by name).
  Result<CicChannelId> connect(CicTaskId src, const std::string& out_port,
                               CicTaskId dst, const std::string& in_port,
                               std::uint32_t token_bytes = 8,
                               std::size_t capacity = 4);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<CicTask>& tasks() const { return tasks_; }
  [[nodiscard]] const std::vector<CicChannel>& channels() const {
    return channels_;
  }
  [[nodiscard]] const CicTask& task(CicTaskId t) const {
    return tasks_.at(t.index());
  }

  [[nodiscard]] std::vector<const CicChannel*> inputs_of(CicTaskId t) const;
  [[nodiscard]] std::vector<const CicChannel*> outputs_of(CicTaskId t) const;

  /// Structural checks: every port wired exactly once, sources (no input
  /// ports) must be periodic, behaviour arity consistent.
  [[nodiscard]] Status validate() const;

 private:
  std::string name_;
  std::vector<CicTask> tasks_;
  std::vector<CicChannel> channels_;
};

}  // namespace rw::cic
