// CSDF execution through both executors: multi-phase actors with
// per-phase rates and WCETs (the cyclo-static behaviour Sec. III's
// car-radio applications actually have — e.g. a decoder whose long frame
// phase alternates with short ones).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "dataflow/buffers.hpp"
#include "dataflow/executor.hpp"

namespace rw::dataflow {
namespace {

/// src --2--> csdf{phases (1,1)} --(1,1)--> snk (consumes 2 at once).
/// Repetition: src 1 firing, csdf 2 firings (one cycle), snk 1 firing.
Graph csdf_graph(Cycles long_phase = 30'000, Cycles short_phase = 5'000) {
  Graph g;
  const auto src = g.add_actor("src", 500, 0);
  const auto mid = g.add_actor(
      "csdf", std::vector<Cycles>{long_phase, short_phase}, 1);
  const auto snk = g.add_actor("snk", 500, 2);
  g.connect(src, mid, std::vector<std::uint32_t>{2},
            std::vector<std::uint32_t>{1, 1});
  g.connect(mid, snk, std::vector<std::uint32_t>{1, 1},
            std::vector<std::uint32_t>{2});
  return g;
}

ExecConfig csdf_cfg(std::uint64_t iters = 60) {
  ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = 3;
  cfg.source_period = microseconds(120);
  cfg.iterations = iters;
  return cfg;
}

TEST(CsdfExec, RepetitionVectorHasTwoFiringsForTwoPhases) {
  const auto rv = csdf_graph().repetition_vector();
  ASSERT_TRUE(rv.ok()) << rv.error().to_string();
  EXPECT_EQ(rv.value().firings, (std::vector<std::uint64_t>{1, 2, 1}));
  EXPECT_EQ(rv.value().cycles, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(CsdfExec, StaticScheduleHasBothPhases) {
  const auto s = compute_static_schedule(csdf_graph(), csdf_cfg());
  ASSERT_TRUE(s.ok()) << s.error().to_string();
  // Slots: src, csdf phase 0, csdf phase 1, snk.
  EXPECT_EQ(s.value().slots.size(), 4u);
  // Phase WCETs differ, so the two csdf slots have different durations.
  DurationPs durs[2];
  int found = 0;
  for (const auto& slot : s.value().slots)
    if (slot.actor == ActorId{1}) durs[found++] = slot.wcet_duration;
  ASSERT_EQ(found, 2);
  EXPECT_NE(durs[0], durs[1]);
}

TEST(CsdfExec, DataDrivenRunsClean) {
  const auto r = run_data_driven(csdf_graph(), csdf_cfg());
  EXPECT_EQ(r.sink_underruns, 0u);
  EXPECT_EQ(r.source_drops, 0u);
  EXPECT_EQ(r.internal_corruptions(), 0u);
  EXPECT_EQ(r.sink_firings, 60u);
}

TEST(CsdfExec, TimeTriggeredRunsCleanWithHonestWcets) {
  const auto r = run_time_triggered(csdf_graph(), csdf_cfg());
  EXPECT_EQ(r.internal_corruptions(), 0u);
  EXPECT_EQ(r.sink_firings, 60u);
}

TEST(CsdfExec, PhaseOverrunsCorruptOnlyTimeTriggered) {
  auto cfg = csdf_cfg(150);
  auto rng = std::make_shared<Rng>(5);
  cfg.acet = [rng](const Actor& a, std::uint64_t firing, Cycles wcet) {
    // Overrun only the long phase (phase 0) of the CSDF actor.
    if (a.name == "csdf" && firing % 2 == 0 && rng->next_bool(0.4))
      return wcet * 3;
    return wcet;
  };
  const auto tt = run_time_triggered(csdf_graph(), cfg);
  EXPECT_GT(tt.internal_corruptions(), 0u);

  auto rng2 = std::make_shared<Rng>(5);
  cfg.acet = [rng2](const Actor& a, std::uint64_t firing, Cycles wcet) {
    if (a.name == "csdf" && firing % 2 == 0 && rng2->next_bool(0.4))
      return wcet * 3;
    return wcet;
  };
  const auto dd = run_data_driven(csdf_graph(), cfg);
  EXPECT_EQ(dd.internal_corruptions(), 0u);
}

TEST(CsdfExec, BufferSizingHandlesPhaseRates) {
  const auto sizing =
      compute_buffer_capacities(csdf_graph(), csdf_cfg());
  ASSERT_TRUE(sizing.wait_free);
  // The source bursts 2 tokens per firing: both edges need >= 2.
  EXPECT_GE(sizing.capacities[0], 2u);
  EXPECT_GE(sizing.capacities[1], 2u);
  auto cfg = csdf_cfg(200);
  cfg.buffer_capacities = sizing.capacities;
  const auto r = run_data_driven(csdf_graph(), cfg);
  EXPECT_EQ(r.source_drops, 0u);
  EXPECT_EQ(r.sink_underruns, 0u);
}

TEST(CsdfExec, UnsustainablePhaseSumRejected) {
  // Long+short = 35k cycles = 87.5us per iteration; period 80us fails.
  auto cfg = csdf_cfg();
  cfg.source_period = microseconds(80);
  EXPECT_FALSE(compute_static_schedule(csdf_graph(), cfg).ok());
}

}  // namespace
}  // namespace rw::dataflow
