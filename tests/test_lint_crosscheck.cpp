// The headline experiment of the lint framework (ISSUE 2): every mapped
// corpus program runs both through the static passes and on the virtual
// platform with the vpdebug::RaceDetector armed; the static findings must
// be a conservative superset of whatever the dynamic run observes. A
// static analyzer may warn about executions that never happen — it must
// never miss one that does.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "lint/corpus.hpp"
#include "lint/pass.hpp"

namespace rw::lint {
namespace {

std::set<std::string> error_keys(const std::vector<Diagnostic>& diags) {
  std::set<std::string> out;
  for (const auto& d : diags)
    if (d.severity == Severity::kError) out.insert(d.key());
  return out;
}

TEST(LintCrossCheck, StaticFindingsAreASupersetOfDynamicObservations) {
  const auto pm = PassManager::with_default_passes();
  for (const auto& p : build_corpus()) {
    if (!p.runnable()) continue;
    const auto statics = error_keys(pm.run(p.target()).diagnostics);
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      DynamicRunConfig cfg;
      cfg.seed = seed;
      const auto obs = run_dynamic(p, cfg);
      for (const auto& d : obs.to_diagnostics(p.name))
        EXPECT_TRUE(statics.count(d.key()))
            << p.name << " seed " << seed << ": dynamic observation "
            << d.key() << " was not statically predicted";
    }
  }
}

TEST(LintCrossCheck, SeededRaceIsDynamicallyObservable) {
  // Not vacuous: the dynamic twin really does catch the seeded race in
  // at least one of a handful of schedules.
  const auto corpus = build_corpus();
  bool observed = false;
  for (const auto& p : corpus) {
    if (p.name != "racy_counter") continue;
    for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
      DynamicRunConfig cfg;
      cfg.seed = seed;
      const auto obs = run_dynamic(p, cfg);
      EXPECT_GT(obs.accesses_observed, 0u);
      if (obs.raced_vars.count("counter")) observed = true;
    }
  }
  EXPECT_TRUE(observed)
      << "racy_counter never raced dynamically across 5 seeds";
}

TEST(LintCrossCheck, SeededWaitCycleWedgesDynamically) {
  const auto corpus = build_corpus();
  for (const auto& p : corpus) {
    if (p.name != "token_cycle" && p.name != "order_inversion") continue;
    const auto obs = run_dynamic(p);
    EXPECT_FALSE(obs.blocked_tasks.empty())
        << p.name << " should wedge at the horizon";
  }
}

TEST(LintCrossCheck, CleanProgramIsDynamicallyQuiet) {
  const auto corpus = build_corpus();
  for (const auto& p : corpus) {
    if (p.name != "clean_pipeline") continue;
    for (const std::uint64_t seed : {1ull, 9ull}) {
      DynamicRunConfig cfg;
      cfg.seed = seed;
      const auto obs = run_dynamic(p, cfg);
      EXPECT_GT(obs.accesses_observed, 0u);
      EXPECT_TRUE(obs.raced_vars.empty())
          << "clean_pipeline raced dynamically (seed " << seed << ")";
      EXPECT_TRUE(obs.blocked_tasks.empty());
    }
  }
}

TEST(LintCrossCheck, DynamicRunIsDeterministicInSeed) {
  const auto corpus = build_corpus();
  for (const auto& p : corpus) {
    if (p.name != "racy_counter") continue;
    const auto a = run_dynamic(p);
    const auto b = run_dynamic(p);
    EXPECT_EQ(a.accesses_observed, b.accesses_observed);
    EXPECT_EQ(a.raced_vars, b.raced_vars);
    EXPECT_EQ(a.blocked_tasks, b.blocked_tasks);
    EXPECT_EQ(a.races.size(), b.races.size());
  }
}

TEST(LintCrossCheck, DynamicDiagnosticsUseTheSharedKeySpace) {
  const auto corpus = build_corpus();
  for (const auto& p : corpus) {
    if (p.name != "token_cycle") continue;
    const auto obs = run_dynamic(p);
    const auto diags = obs.to_diagnostics(p.name);
    ASSERT_FALSE(diags.empty());
    for (const auto& d : diags) {
      EXPECT_EQ(d.pass, "dynamic");
      EXPECT_EQ(d.severity, Severity::kError);
      EXPECT_EQ(d.location.unit, p.name);
    }
  }
}

}  // namespace
}  // namespace rw::lint
