// rw::fuzz — generator, case serialization, coverage accounting, and
// oracle sanity. The shrinker's property tests live in
// test_fuzz_shrink.cpp; the seeded-defect selftest in
// test_fuzz_defect.cpp.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "fuzz/case.hpp"
#include "fuzz/coverage.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "maps/taskgraph.hpp"

namespace {

using namespace rw;

fuzz::CampaignCase faulted_case() {
  // Seeds are cheap: scan until the draw lands on a faultable family
  // with a non-empty plan, so the round-trip tests cover the nested
  // plan document too.
  for (std::uint64_t s = 1; s < 64; ++s) {
    fuzz::CampaignCase c = fuzz::generate_case(s);
    if (fuzz::family_faultable(c.family) && !c.plan.empty()) return c;
  }
  ADD_FAILURE() << "no faulted case in 64 seeds";
  return {};
}

TEST(FuzzCase, JsonRoundTripIsByteStable) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 12345ULL}) {
    const fuzz::CampaignCase c = fuzz::generate_case(seed);
    const std::string once = c.to_json();
    const auto parsed = fuzz::CampaignCase::from_json(once);
    ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
    EXPECT_EQ(parsed.value().to_json(), once) << c.summary();
  }
}

TEST(FuzzCase, JsonRoundTripCoversANonEmptyPlan) {
  const fuzz::CampaignCase c = faulted_case();
  const std::string once = c.to_json();
  const auto parsed = fuzz::CampaignCase::from_json(once);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().plan.size(), c.plan.size());
  EXPECT_EQ(parsed.value().to_json(), once);
}

TEST(FuzzCase, FromJsonRejectsGarbage) {
  EXPECT_FALSE(fuzz::CampaignCase::from_json("not json").ok());
  EXPECT_FALSE(fuzz::CampaignCase::from_json("{}").ok());
  EXPECT_FALSE(
      fuzz::CampaignCase::from_json(R"({"schema":"wrong-schema-9"})").ok());
}

TEST(FaultPlanJson, RandomPlanRoundTripsByteStably) {
  fault::RandomSpec spec;
  spec.rate_per_ms = 50.0;
  spec.window_start = 0;
  spec.window_end = microseconds(200);
  spec.num_cores = 4;
  const fault::FaultPlan plan = fault::FaultPlan::random(99, spec);
  ASSERT_FALSE(plan.empty());
  const std::string once = plan.to_json();
  const auto parsed = fault::FaultPlan::from_json(once);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().to_json(), once);
}

TEST(FuzzGenerator, SameSeedSameCaseDifferentSeedDifferentCase) {
  const fuzz::CampaignCase a = fuzz::generate_case(7);
  const fuzz::CampaignCase b = fuzz::generate_case(7);
  const fuzz::CampaignCase c = fuzz::generate_case(8);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json(), c.to_json());
}

TEST(FuzzGenerator, TinyShrinksTheRanges) {
  for (std::uint64_t s = 1; s <= 32; ++s) {
    fuzz::GeneratorConfig cfg;
    cfg.tiny = true;
    const fuzz::CampaignCase c = fuzz::generate_case(s, cfg);
    EXPECT_LE(c.cores, 3u);
    EXPECT_LE(c.items, 8u);
    EXPECT_LE(c.compute_cycles, 10'000u);
  }
}

TEST(FuzzGenerator, FamilyMaskRestrictsTheDraw) {
  fuzz::GeneratorConfig cfg;
  cfg.family_mask = fuzz::family_bit(fuzz::Family::kMaps);
  for (std::uint64_t s = 1; s <= 16; ++s)
    EXPECT_EQ(fuzz::generate_case(s, cfg).family, fuzz::Family::kMaps);
}

TEST(FuzzGenerator, DirectedTargetPinsTheCellAxes) {
  fuzz::DirectedTarget t;
  t.family = fuzz::Family::kFaultPipeline;
  t.kind = static_cast<int>(fault::FaultKind::kCoreStall);
  t.policy = sim::QueuePolicy::kBinaryHeap;
  t.parallel = true;
  fuzz::GeneratorConfig cfg;
  cfg.target = &t;
  for (std::uint64_t s = 1; s <= 16; ++s) {
    const fuzz::CampaignCase c = fuzz::generate_case(s, cfg);
    EXPECT_EQ(c.family, fuzz::Family::kFaultPipeline);
    EXPECT_EQ(c.queue, sim::QueuePolicy::kBinaryHeap);
    EXPECT_GE(c.tiles, 2u);
    for (const fault::FaultEvent& e : c.plan.events())
      EXPECT_EQ(e.kind, fault::FaultKind::kCoreStall);
  }
}

TEST(FuzzCoverage, ReachableMatrixHasTheDocumentedShape) {
  // 5 faultable families x (8 kinds + fault-free) x 2 policies x 2 exec
  // modes, plus maps (fault-free only, 2x2) and ert (one cell).
  EXPECT_EQ(fuzz::CoverageMatrix::reachable_count(), 185u);
  const auto cells = fuzz::CoverageMatrix::reachable();
  EXPECT_EQ(cells.size(), 185u);
  const std::set<fuzz::CoverageCell> unique(cells.begin(), cells.end());
  EXPECT_EQ(unique.size(), cells.size());
}

TEST(FuzzCoverage, MarksAccumulateAndUnreachableHitsDoNotInflate) {
  fuzz::CoverageMatrix m;
  EXPECT_EQ(m.hit_count(), 0u);
  EXPECT_DOUBLE_EQ(m.fraction(), 0.0);
  fuzz::CoverageCell cell;
  cell.family = fuzz::Family::kPipeline;
  cell.kind = fuzz::CoverageCell::kFaultFree;
  m.mark(cell);
  m.mark(cell);  // idempotent
  EXPECT_EQ(m.hit_count(), 1u);
  EXPECT_TRUE(m.hit(cell));
  EXPECT_EQ(m.unhit_reachable().size(),
            fuzz::CoverageMatrix::reachable_count() - 1);

  fuzz::CoverageCell alien;  // maps never takes faults
  alien.family = fuzz::Family::kMaps;
  alien.kind = 0;
  m.mark(alien);
  EXPECT_DOUBLE_EQ(m.fraction(),
                   1.0 / static_cast<double>(
                             fuzz::CoverageMatrix::reachable_count()));
}

TEST(FuzzCoverage, MergeUnionsTheHitSets) {
  const auto cells = fuzz::CoverageMatrix::reachable();
  fuzz::CoverageMatrix a;
  fuzz::CoverageMatrix b;
  a.mark(cells[0]);
  b.mark(cells[1]);
  a.merge(b);
  EXPECT_EQ(a.hit_count(), 2u);
}

TEST(FuzzOracle, SampleSeedsRunGreenAndFillOutcomes) {
  for (std::uint64_t s = 1; s <= 6; ++s) {
    fuzz::GeneratorConfig cfg;
    cfg.tiny = true;
    const fuzz::CampaignCase c = fuzz::generate_case(s, cfg);
    const fuzz::CaseOutcome out = fuzz::run_case(c);
    EXPECT_TRUE(out.ok()) << c.summary() << ": "
                          << (out.violations.empty()
                                  ? std::string()
                                  : out.violations.front().invariant);
    EXPECT_GT(out.sub_runs, 0u);
    EXPECT_FALSE(out.cells.empty());
  }
}

TEST(FuzzOracle, OutcomesAreDeterministic) {
  const fuzz::CampaignCase c = faulted_case();
  const fuzz::CaseOutcome a = fuzz::run_case(c);
  const fuzz::CaseOutcome b = fuzz::run_case(c);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.sub_runs, b.sub_runs);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(FuzzOracle, CaseGraphIsAcyclicWithTheRequestedTasks) {
  for (std::uint64_t s = 1; s <= 12; ++s) {
    fuzz::CampaignCase c = fuzz::generate_case(s);
    c.family = fuzz::Family::kMaps;
    const maps::TaskGraph g = fuzz::build_case_graph(c);
    EXPECT_EQ(g.tasks().size(), c.graph_tasks);
    EXPECT_TRUE(g.is_acyclic());
  }
}

TEST(FuzzOracle, InvariantNamesAreStableAndNonEmpty) {
  const auto& names = fuzz::invariant_names();
  EXPECT_GE(names.size(), 9u);
  for (const std::string& n : names) EXPECT_NE(n.find('.'), std::string::npos);
}

}  // namespace
