#include <gtest/gtest.h>

#include "recoder/parser.hpp"
#include "recoder/shared_report.hpp"

namespace rw::recoder {
namespace {

std::vector<ArrayReport> report_of(const char* src) {
  auto p = parse_program(src);
  EXPECT_TRUE(p.ok()) << p.error().to_string();
  return analyze_shared_accesses(p.value(),
                                 *p.value().find_function("main"));
}

TEST(SharedReport, ChannelizablePattern) {
  const auto reps = report_of(R"(
    int buf[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) { buf[i] = i; }
      int s = 0;
      for (int j = 0; j < 8; j = j + 1) { s = s + buf[j]; }
      return s;
    })");
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].recommendation, Recommendation::kChannelizable);
  ASSERT_EQ(reps[0].sites.size(), 2u);
  EXPECT_TRUE(reps[0].sites[0].writes);
  EXPECT_FALSE(reps[0].sites[0].reads);
  EXPECT_TRUE(reps[0].sites[1].reads);
  EXPECT_TRUE(reps[0].sites[0].index_disciplined);
}

TEST(SharedReport, SplittableDisjointRanges) {
  const auto reps = report_of(R"(
    int buf[8];
    int main() {
      for (int i = 0; i < 4; i = i + 1) { buf[i] = i; }
      for (int i = 4; i < 8; i = i + 1) { buf[i] = i * 2; }
      return 0;
    })");
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].recommendation, Recommendation::kSplittable);
}

TEST(SharedReport, OverlappingMixedAccessKeepsShared) {
  const auto reps = report_of(R"(
    int buf[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) { buf[i] = i; }
      for (int i = 0; i < 8; i = i + 1) { buf[i] = buf[i] + 1; }
      for (int i = 0; i < 8; i = i + 1) { buf[i] = buf[i] * 2; }
      return 0;
    })");
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].recommendation, Recommendation::kKeepShared);
}

TEST(SharedReport, UndisciplinedIndexNotAnalyzable) {
  const auto reps = report_of(R"(
    int buf[8];
    int main() {
      for (int i = 0; i < 4; i = i + 1) { buf[i * 2] = i; }
      return 0;
    })");
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].recommendation, Recommendation::kNotAnalyzable);
}

TEST(SharedReport, UseOutsideLoopsNotAnalyzable) {
  const auto reps = report_of(R"(
    int buf[8];
    int main() {
      buf[0] = 1;
      for (int i = 0; i < 8; i = i + 1) { buf[i] = i; }
      return 0;
    })");
  EXPECT_EQ(reps[0].recommendation, Recommendation::kNotAnalyzable);
}

TEST(SharedReport, RenderMentionsEverything) {
  const auto reps = report_of(R"(
    int buf[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) { buf[i] = i; }
      int s = 0;
      for (int j = 0; j < 8; j = j + 1) { s = s + buf[j]; }
      return s;
    })");
  const std::string text = render_report(reps);
  EXPECT_NE(text.find("buf[8]"), std::string::npos);
  EXPECT_NE(text.find("channelizable"), std::string::npos);
  EXPECT_NE(text.find("range [0,8)"), std::string::npos);
}

TEST(SharedReport, EmptyFunctionBodyReportsNothing) {
  auto p = parse_program(R"(
    int buf[8];
    int main() { return 0; }
  )");
  ASSERT_TRUE(p.ok());
  const auto reps =
      analyze_shared_accesses(p.value(), *p.value().find_function("main"));
  // The global is visible but main never touches it: sites stay empty and
  // nothing is recommended beyond "not analyzable".
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_TRUE(reps[0].sites.empty());
  EXPECT_EQ(reps[0].recommendation, Recommendation::kNotAnalyzable);
}

TEST(SharedReport, NonCanonicalLoopStepNotAnalyzable) {
  // Stride-2 induction: the loop is well-formed but the access pattern is
  // not the canonical i++ the channelizer reasons about.
  const auto reps = report_of(R"(
    int buf[8];
    int main() {
      for (int i = 0; i < 8; i = i + 2) { buf[i] = i; }
      return 0;
    })");
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].recommendation, Recommendation::kNotAnalyzable);
}

TEST(SharedReport, DownwardCountingLoopNotAnalyzable) {
  const auto reps = report_of(R"(
    int buf[8];
    int main() {
      for (int i = 7; i > 0 - 1; i = i - 1) { buf[i] = i; }
      return 0;
    })");
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].recommendation, Recommendation::kNotAnalyzable);
}

TEST(SharedReport, WhileLoopAccessIsOutsideCanonicalForm) {
  const auto reps = report_of(R"(
    int buf[8];
    int main() {
      int i = 0;
      while (i < 8) { buf[i] = i; i = i + 1; }
      return 0;
    })");
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].recommendation, Recommendation::kNotAnalyzable);
}

TEST(SharedReport, IgnoresScalarsAndOtherFunctions) {
  auto p = parse_program(R"(
    int x;
    int other[4];
    void helper() { other[0] = 1; }
    int main() { x = 1; return x; }
  )");
  ASSERT_TRUE(p.ok());
  const auto reps =
      analyze_shared_accesses(p.value(), *p.value().find_function("main"));
  // `other` appears with no sites in main -> not analyzable; `x` (scalar)
  // is not reported at all.
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].array, "other");
  EXPECT_TRUE(reps[0].sites.empty());
}

}  // namespace
}  // namespace rw::recoder
