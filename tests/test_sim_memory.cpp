#include "sim/memory.hpp"

#include <gtest/gtest.h>

namespace rw::sim {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  Kernel kernel;
  Tracer tracer;
  MemorySystem mem{kernel, tracer};
};

TEST_F(MemoryTest, ReadWriteRoundTrip) {
  mem.add_region("spm", 0x1000, 4096, 1, CoreId{0});
  mem.write_u64(CoreId{0}, 0x1000, 0x1122334455667788ULL);
  EXPECT_EQ(mem.read_u64(CoreId{0}, 0x1000), 0x1122334455667788ULL);
  mem.write_u32(CoreId{0}, 0x1100, 0xcafebabe);
  EXPECT_EQ(mem.read_u32(CoreId{0}, 0x1100), 0xcafebabeu);
}

TEST_F(MemoryTest, RegionsStartZeroed) {
  mem.add_region("r", 0, 64, 1);
  EXPECT_EQ(mem.read_u64(CoreId{0}, 0), 0u);
}

TEST_F(MemoryTest, RejectsOverlappingRegions) {
  mem.add_region("a", 0x1000, 0x100, 1);
  EXPECT_THROW(mem.add_region("b", 0x10ff, 0x100, 1),
               std::invalid_argument);
  EXPECT_NO_THROW(mem.add_region("c", 0x1100, 0x100, 1));
}

TEST_F(MemoryTest, UnmappedAccessThrows) {
  mem.add_region("r", 0x1000, 0x100, 1);
  EXPECT_THROW(mem.read_u64(CoreId{0}, 0x2000), std::out_of_range);
  // Access straddling the end of a region is also illegal.
  EXPECT_THROW(mem.read_u64(CoreId{0}, 0x10fc), std::out_of_range);
}

TEST_F(MemoryTest, LocalityEnforcementFaultsForeignAccess) {
  mem.add_region("spm0", 0x1000, 0x100, 1, CoreId{0});
  mem.add_region("shared", 0x8000, 0x100, 10);
  mem.set_enforce_locality(true);
  // Owner and shared accesses pass.
  EXPECT_NO_THROW(mem.write_u64(CoreId{0}, 0x1000, 1));
  EXPECT_NO_THROW(mem.write_u64(CoreId{1}, 0x8000, 1));
  // Foreign scratchpad access faults and is counted.
  EXPECT_THROW(mem.write_u64(CoreId{1}, 0x1000, 1), std::runtime_error);
  EXPECT_EQ(mem.locality_violations(), 1u);
}

TEST_F(MemoryTest, LocalityOffAllowsForeignAccess) {
  mem.add_region("spm0", 0x1000, 0x100, 1, CoreId{0});
  EXPECT_NO_THROW(mem.write_u64(CoreId{1}, 0x1000, 7));
  EXPECT_EQ(mem.read_u64(CoreId{0}, 0x1000), 7u);
}

TEST_F(MemoryTest, ObserversSeeAllAccesses) {
  mem.add_region("r", 0, 256, 1);
  std::vector<MemAccess> seen;
  mem.add_observer([&](const MemAccess& a) { seen.push_back(a); });
  mem.write_u32(CoreId{2}, 16, 99);
  mem.read_u32(CoreId{3}, 16);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0].is_write);
  EXPECT_EQ(seen[0].core, CoreId{2});
  EXPECT_EQ(seen[0].value, 99u);
  EXPECT_FALSE(seen[1].is_write);
  EXPECT_EQ(seen[1].value, 99u);
}

TEST_F(MemoryTest, BlockTransfer) {
  mem.add_region("r", 0, 256, 1);
  std::vector<std::uint8_t> in{1, 2, 3, 4, 5};
  mem.write_block(CoreId{0}, 10, in);
  std::vector<std::uint8_t> out(5);
  mem.read_block(CoreId{0}, 10, out);
  EXPECT_EQ(out, in);
}

TEST_F(MemoryTest, PokePeekBypassObservers) {
  mem.add_region("r", 0, 64, 1);
  int notified = 0;
  mem.add_observer([&](const MemAccess&) { ++notified; });
  std::vector<std::uint8_t> v{42};
  mem.poke(3, v);
  std::vector<std::uint8_t> out(1);
  mem.peek(3, out);
  EXPECT_EQ(out[0], 42);
  EXPECT_EQ(notified, 0);
}

TEST_F(MemoryTest, LatencyLookup) {
  mem.add_region("fast", 0, 64, 1);
  mem.add_region("slow", 0x100, 64, 20);
  EXPECT_EQ(mem.latency_for(0), 1u);
  EXPECT_EQ(mem.latency_for(0x100), 20u);
}

TEST_F(MemoryTest, TracesAccessesWhenEnabled) {
  tracer.set_enabled(true);
  mem.add_region("r", 0, 64, 1);
  mem.write_u64(CoreId{1}, 0, 5);
  mem.read_u64(CoreId{1}, 0);
  EXPECT_EQ(tracer.filter(TraceKind::kMemWrite).size(), 1u);
  EXPECT_EQ(tracer.filter(TraceKind::kMemRead).size(), 1u);
}

TEST_F(MemoryTest, FindRegion) {
  mem.add_region("a", 0x1000, 0x100, 1);
  ASSERT_NE(mem.find_region(0x1050), nullptr);
  EXPECT_EQ(mem.find_region(0x1050)->name, "a");
  EXPECT_EQ(mem.find_region(0x2000), nullptr);
}

}  // namespace
}  // namespace rw::sim
