#include <gtest/gtest.h>

#include "cic/dse.hpp"

namespace rw::cic {
namespace {

CicProgram parallel_app(std::uint32_t branches = 3) {
  CicProgram p("fanout");
  std::vector<std::string> outs;
  for (std::uint32_t b = 0; b < branches; ++b)
    outs.push_back("o" + std::to_string(b));
  const auto src = p.add_task("src", 2'000, {}, outs);
  p.set_period(src, microseconds(600));
  std::vector<std::string> ins;
  for (std::uint32_t b = 0; b < branches; ++b)
    ins.push_back("i" + std::to_string(b));
  const auto snk = p.add_task("snk", 3'000, ins, {});
  for (std::uint32_t b = 0; b < branches; ++b) {
    const auto w = p.add_task("work" + std::to_string(b), 120'000, {"in"},
                              {"out"});
    p.connect(src, "o" + std::to_string(b), w, "in", 1024);
    p.connect(w, "out", snk, "i" + std::to_string(b), 512);
  }
  return p;
}

TEST(Dse, AreaModelMonotoneInCores) {
  EXPECT_LT(architecture_area(ArchInfo::smp_like(2)),
            architecture_area(ArchInfo::smp_like(6)));
  // A DSP-heavy cell-like machine is bigger per core than a small SMP.
  EXPECT_GT(architecture_area(ArchInfo::cell_like(4)),
            architecture_area(ArchInfo::smp_like(2)));
}

TEST(Dse, DefaultCandidatesCoverBothStyles) {
  const auto cands = default_candidates(4);
  EXPECT_EQ(cands.size(), 8u);
  int dist = 0, shared = 0;
  for (const auto& c : cands) {
    dist += c.style == MemoryStyle::kDistributed;
    shared += c.style == MemoryStyle::kShared;
  }
  EXPECT_EQ(dist, 4);
  EXPECT_EQ(shared, 4);
}

TEST(Dse, ExploresAndMarksPareto) {
  const auto prog = parallel_app(3);
  const auto points =
      explore_architectures(prog, default_candidates(4), {20, false});
  ASSERT_EQ(points.size(), 8u);

  int feasible = 0, pareto = 0;
  for (const auto& p : points) {
    feasible += p.feasible;
    pareto += p.pareto;
    if (p.pareto) EXPECT_TRUE(p.feasible);
  }
  EXPECT_EQ(feasible, 8);
  EXPECT_GE(pareto, 1);
  EXPECT_LT(pareto, 8);  // something must be dominated

  // No Pareto point is dominated by any feasible point.
  for (const auto& p : points) {
    if (!p.pareto) continue;
    for (const auto& q : points) {
      if (!q.feasible || &q == &p) continue;
      const bool dominates = q.area_cost <= p.area_cost &&
                             q.makespan() <= p.makespan() &&
                             (q.area_cost < p.area_cost ||
                              q.makespan() < p.makespan());
      EXPECT_FALSE(dominates)
          << q.arch.name << " dominates " << p.arch.name;
    }
  }
}

TEST(Dse, MoreCoresNeverHurtMakespanWithinStyle) {
  const auto prog = parallel_app(4);
  std::vector<ArchInfo> smps;
  for (std::size_t n : {1u, 2u, 4u, 8u}) smps.push_back(ArchInfo::smp_like(n));
  const auto points = explore_architectures(prog, smps, {20, false});
  for (std::size_t i = 1; i < points.size(); ++i) {
    ASSERT_TRUE(points[i].feasible);
    EXPECT_LE(points[i].makespan(),
              points[i - 1].makespan() + points[i - 1].makespan() / 20);
  }
}

TEST(Dse, OptimizedMappingNeverWorseStatically) {
  const auto prog = parallel_app(3);
  const auto arch = ArchInfo::smp_like(3);
  const auto a = CicMapping::automatic(prog, arch);
  const auto o = CicMapping::optimized(prog, arch, 5, 600);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(o.ok());
  // Both valid mappings over the same PEs.
  EXPECT_EQ(a.value().task_to_pe.size(), o.value().task_to_pe.size());
  auto ta = TargetProgram::translate(prog, arch, a.value());
  auto to = TargetProgram::translate(prog, arch, o.value());
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(to.ok());
  // And identical computed outputs, of course.
  EXPECT_EQ(ta.value().run(10).sink_outputs,
            to.value().run(10).sink_outputs);
}

TEST(Dse, InfeasibleCandidatesReported) {
  // A program with a hard PE preference no candidate can satisfy still
  // maps (preferences are soft in the mapper), so force infeasibility via
  // an invalid program instead: unconnected port.
  CicProgram broken("broken");
  broken.add_task("a", 100, {}, {"out"});
  const auto points =
      explore_architectures(broken, default_candidates(2), {5, false});
  for (const auto& p : points) {
    EXPECT_FALSE(p.feasible);
    EXPECT_FALSE(p.pareto);
  }
}

}  // namespace
}  // namespace rw::cic
