// rw::fuzz — the seeded-defect selftest. Builds with
// -DRW_SEEDED_DEFECT=ON compile in the PR-5 compute-revalidation bug
// behind a runtime switch; this test arms it, runs a bounded campaign,
// and requires the fuzzer to find it, pin it to integrity.compute, and
// shrink it. On stock builds the whole suite skips.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/campaign.hpp"
#include "sim/core.hpp"

namespace {

using namespace rw;

class SeededDefect : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!sim::seeded_defect_compiled())
      GTEST_SKIP() << "build without RW_SEEDED_DEFECT";
    sim::set_seeded_defect(true);
  }
  void TearDown() override {
    if (sim::seeded_defect_compiled()) sim::set_seeded_defect(false);
  }
};

TEST_F(SeededDefect, CampaignFindsShrinksAndStubsItWithin200Seeds) {
  fuzz::CampaignConfig cfg;
  cfg.seeds = 200;
  cfg.max_failures = 1;  // one reproducer is the acceptance bar
  const fuzz::CampaignReport report = fuzz::run_campaign(cfg);

  ASSERT_FALSE(report.green()) << "defect armed but campaign stayed green";
  const fuzz::FailureReport& f = report.failures.front();
  EXPECT_EQ(f.violation.invariant, "integrity.compute");
  EXPECT_TRUE(f.shrunk);
  EXPECT_FALSE(f.shrink_at_budget);
  EXPECT_GT(f.shrink_steps, 0u);
  // The minimal case must still reproduce standalone — the same check
  // the committed regression stub performs.
  const fuzz::CaseOutcome outcome = fuzz::run_case(f.minimal);
  EXPECT_TRUE(outcome.violates("integrity.compute"));

  const std::string stub = f.regression_stub();
  EXPECT_NE(stub.find("integrity.compute"), std::string::npos);
  EXPECT_NE(stub.find("FuzzRegression"), std::string::npos);
  EXPECT_NE(stub.find(std::to_string(f.case_seed)), std::string::npos);
}

TEST_F(SeededDefect, DisarmedRunsStayGreenInTheSameBuild) {
  sim::set_seeded_defect(false);
  fuzz::CampaignConfig cfg;
  cfg.seeds = 50;
  cfg.tiny = true;
  EXPECT_TRUE(fuzz::run_campaign(cfg).green());
}

}  // namespace
