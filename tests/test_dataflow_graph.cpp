#include "dataflow/graph.hpp"

#include <gtest/gtest.h>

namespace rw::dataflow {
namespace {

TEST(Graph, BuildsChain) {
  Graph g;
  const auto a = g.add_actor("src", 100);
  const auto b = g.add_actor("f", 200);
  const auto c = g.add_actor("snk", 50);
  g.connect(a, b, 1, 1);
  g.connect(b, c, 1, 1);
  EXPECT_EQ(g.actors().size(), 3u);
  EXPECT_EQ(g.edges().size(), 2u);
  EXPECT_TRUE(g.validate().ok());
  EXPECT_EQ(g.in_edges(b).size(), 1u);
  EXPECT_EQ(g.out_edges(b).size(), 1u);
  EXPECT_TRUE(g.in_edges(a).empty());
  EXPECT_TRUE(g.out_edges(c).empty());
}

TEST(Graph, RepetitionVectorUniformRates) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.connect(a, b, 1, 1);
  const auto rv = g.repetition_vector();
  ASSERT_TRUE(rv.ok());
  EXPECT_EQ(rv.value().firings, (std::vector<std::uint64_t>{1, 1}));
}

TEST(Graph, RepetitionVectorMultiRate) {
  // a -(2:3)-> b: q_a * 2 = q_b * 3 -> q = (3, 2).
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.connect(a, b, 2, 3);
  const auto rv = g.repetition_vector();
  ASSERT_TRUE(rv.ok());
  EXPECT_EQ(rv.value().firings, (std::vector<std::uint64_t>{3, 2}));
}

TEST(Graph, RepetitionVectorDownUpSampleChain) {
  // src -(1:4)-> dec -(1:1)-> interp -(3:1)-> snk
  Graph g;
  const auto s = g.add_actor("src", 1);
  const auto d = g.add_actor("dec", 1);
  const auto i = g.add_actor("int", 1);
  const auto k = g.add_actor("snk", 1);
  g.connect(s, d, 1, 4);
  g.connect(d, i, 1, 1);
  g.connect(i, k, 3, 1);
  const auto rv = g.repetition_vector();
  ASSERT_TRUE(rv.ok());
  EXPECT_EQ(rv.value().firings, (std::vector<std::uint64_t>{4, 1, 1, 3}));
}

TEST(Graph, InconsistentGraphRejected) {
  // Triangle with incompatible rates has no repetition vector.
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  const auto c = g.add_actor("c", 1);
  g.connect(a, b, 1, 1);
  g.connect(b, c, 1, 1);
  g.connect(a, c, 2, 1);  // forces q_c = 2 q_a but chain gives q_c = q_a
  const auto rv = g.repetition_vector();
  EXPECT_FALSE(rv.ok());
}

TEST(Graph, CsdfPhases) {
  Graph g;
  // 2-phase actor consuming (1,2) and producing (2,1).
  const auto a = g.add_actor("src", 1);
  const auto b = g.add_actor("csdf", std::vector<Cycles>{10, 20});
  const auto c = g.add_actor("snk", 1);
  g.connect(a, b, std::vector<std::uint32_t>{3},
            std::vector<std::uint32_t>{1, 2});
  g.connect(b, c, std::vector<std::uint32_t>{2, 1},
            std::vector<std::uint32_t>{3});
  ASSERT_TRUE(g.validate().ok());
  const auto rv = g.repetition_vector();
  ASSERT_TRUE(rv.ok());
  // Per CSDF cycle: b consumes 3, produces 3; rates balance 1:1:1 cycles.
  EXPECT_EQ(rv.value().cycles, (std::vector<std::uint64_t>{1, 1, 1}));
  // b has two phases -> 2 firings per iteration.
  EXPECT_EQ(rv.value().firings, (std::vector<std::uint64_t>{1, 2, 1}));
}

TEST(Graph, ValidateCatchesRateArityMismatch) {
  Graph g;
  const auto a = g.add_actor("a", std::vector<Cycles>{1, 2});  // 2 phases
  const auto b = g.add_actor("b", 1);
  g.connect(a, b, std::vector<std::uint32_t>{1},  // should be 2 entries
            std::vector<std::uint32_t>{1});
  EXPECT_FALSE(g.validate().ok());
}

TEST(Graph, ValidateCatchesZeroRates) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.connect(a, b, 0, 1);
  EXPECT_FALSE(g.validate().ok());
}

TEST(Graph, ValidateCatchesEmptyPhases) {
  Graph g;
  g.add_actor("a", std::vector<Cycles>{});
  EXPECT_FALSE(g.validate().ok());
}

TEST(Graph, DisconnectedComponentsEachNormalized) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  const auto c = g.add_actor("c", 1);
  const auto d = g.add_actor("d", 1);
  g.connect(a, b, 1, 2);
  g.connect(c, d, 1, 1);
  const auto rv = g.repetition_vector();
  ASSERT_TRUE(rv.ok());
  EXPECT_EQ(rv.value().firings, (std::vector<std::uint64_t>{2, 1, 1, 1}));
}

TEST(Graph, WcetHelpers) {
  Actor a;
  a.phase_wcet = {10, 30, 20};
  EXPECT_EQ(a.phases(), 3u);
  EXPECT_EQ(a.wcet_sum(), 60u);
  EXPECT_EQ(a.max_wcet(), 30u);
}

TEST(Graph, EdgeAutoNaming) {
  Graph g;
  const auto a = g.add_actor("alpha", 1);
  const auto b = g.add_actor("beta", 1);
  const auto e = g.connect(a, b, 1, 1);
  EXPECT_EQ(g.edge(e).name, "alpha->beta");
}

TEST(Graph, CyclicGraphWithInitialTokensConsistent) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.connect(a, b, 1, 1);
  g.connect(b, a, 1, 1, /*initial_tokens=*/1);
  const auto rv = g.repetition_vector();
  ASSERT_TRUE(rv.ok());
  EXPECT_EQ(rv.value().firings, (std::vector<std::uint64_t>{1, 1}));
}

}  // namespace
}  // namespace rw::dataflow
