// Deadlock detection across both layers: design-time on dataflow graphs
// and run-time diagnosis in the CIC translator's simulated execution
// (Sec. VII: "System deadlocks, race conditions and starvation...").
#include <gtest/gtest.h>

#include "cic/archfile.hpp"
#include "cic/translator.hpp"
#include "dataflow/deadlock.hpp"

namespace rw {
namespace {

// --------------------------------------------------------- dataflow layer

TEST(DataflowDeadlock, AcyclicGraphNeverDeadlocks) {
  dataflow::Graph g;
  const auto a = g.add_actor("a", 10);
  const auto b = g.add_actor("b", 10);
  g.connect(a, b, 2, 3);
  const auto rep = dataflow::detect_deadlock(g);
  EXPECT_FALSE(rep.deadlocked);
  EXPECT_NE(rep.to_string().find("no deadlock"), std::string::npos);
}

TEST(DataflowDeadlock, CycleWithEnoughTokensIsLive) {
  dataflow::Graph g;
  const auto a = g.add_actor("a", 10);
  const auto b = g.add_actor("b", 10);
  g.connect(a, b, 1, 1);
  g.connect(b, a, 1, 1, /*initial_tokens=*/1);
  EXPECT_FALSE(dataflow::detect_deadlock(g).deadlocked);
}

TEST(DataflowDeadlock, TokenlessCycleDeadlocks) {
  dataflow::Graph g;
  const auto a = g.add_actor("alpha", 10);
  const auto b = g.add_actor("beta", 10);
  g.connect(a, b, 1, 1);
  g.connect(b, a, 1, 1);  // no initial tokens: nobody can ever fire
  const auto rep = dataflow::detect_deadlock(g);
  ASSERT_TRUE(rep.deadlocked);
  EXPECT_EQ(rep.blocked.size(), 2u);
  EXPECT_NE(rep.to_string().find("alpha"), std::string::npos);
  EXPECT_NE(rep.to_string().find("starved"), std::string::npos);
}

TEST(DataflowDeadlock, MultiRateCycleNeedsEnoughTokens) {
  // b consumes 3 per firing from the back edge but only 2 circulate.
  dataflow::Graph g;
  const auto a = g.add_actor("a", 10);
  const auto b = g.add_actor("b", 10);
  g.connect(a, b, 3, 3);
  g.connect(b, a, 3, 3, /*initial_tokens=*/2);
  const auto rep = dataflow::detect_deadlock(g);
  ASSERT_TRUE(rep.deadlocked);
  // The starved actor reports how many tokens it sees vs needs.
  EXPECT_EQ(rep.blocked[0].tokens_present, 2u);
  EXPECT_EQ(rep.blocked[0].tokens_needed, 3u);
}

TEST(DataflowDeadlock, PartialProgressStillReported) {
  // Source feeds a tokenless cycle: the source fires, the cycle wedges.
  dataflow::Graph g;
  const auto s = g.add_actor("src", 10);
  const auto a = g.add_actor("a", 10);
  const auto b = g.add_actor("b", 10);
  g.connect(s, a, 1, 1);
  g.connect(a, b, 1, 1);
  g.connect(b, a, 1, 1);  // cycle a<->b, no tokens on the back edge
  const auto rep = dataflow::detect_deadlock(g);
  ASSERT_TRUE(rep.deadlocked);
  // src completed; a and b are the blocked pair. a has its input from src
  // but is starved on the back edge from b.
  EXPECT_EQ(rep.blocked.size(), 2u);
}

TEST(DataflowDeadlock, ZeroTokenSelfCycleDeadlocksImmediately) {
  // A self-loop with no initial tokens: the actor waits on itself.
  dataflow::Graph g;
  const auto a = g.add_actor("self", 10);
  g.connect(a, a, 1, 1);
  const auto rep = dataflow::detect_deadlock(g);
  ASSERT_TRUE(rep.deadlocked);
  ASSERT_EQ(rep.blocked.size(), 1u);
  EXPECT_EQ(rep.blocked[0].tokens_present, 0u);
  EXPECT_EQ(rep.blocked[0].tokens_needed, 1u);
}

TEST(DataflowDeadlock, SelfCycleWithTokenIsLive) {
  dataflow::Graph g;
  const auto a = g.add_actor("self", 10);
  g.connect(a, a, 1, 1, /*initial_tokens=*/1);
  EXPECT_FALSE(dataflow::detect_deadlock(g).deadlocked);
}

TEST(DataflowDeadlock, TwoIndependentCyclesBothReported) {
  // Two disjoint tokenless cycles wedge independently; all four actors
  // must show up blocked, not just the first cycle found.
  dataflow::Graph g;
  const auto a = g.add_actor("a1", 10);
  const auto b = g.add_actor("a2", 10);
  const auto c = g.add_actor("b1", 10);
  const auto d = g.add_actor("b2", 10);
  g.connect(a, b, 1, 1);
  g.connect(b, a, 1, 1);
  g.connect(c, d, 1, 1);
  g.connect(d, c, 1, 1);
  const auto rep = dataflow::detect_deadlock(g);
  ASSERT_TRUE(rep.deadlocked);
  EXPECT_EQ(rep.blocked.size(), 4u);
}

TEST(DataflowDeadlock, LiveCycleFeedingDeadCycleOnlyDeadPartBlocked) {
  // Cycle {a,b} has a token and turns forever at the abstract level;
  // cycle {c,d} is tokenless. Only the dead pair may be reported.
  dataflow::Graph g;
  const auto a = g.add_actor("live_a", 10);
  const auto b = g.add_actor("live_b", 10);
  const auto c = g.add_actor("dead_c", 10);
  const auto d = g.add_actor("dead_d", 10);
  g.connect(a, b, 1, 1, 1);
  g.connect(b, a, 1, 1);
  g.connect(b, c, 1, 1);  // feed the dead cycle from the live one
  g.connect(c, d, 1, 1);
  g.connect(d, c, 1, 1);
  const auto rep = dataflow::detect_deadlock(g);
  ASSERT_TRUE(rep.deadlocked);
  for (const auto& blk : rep.blocked)
    EXPECT_NE(blk.actor_name.find("dead_"), std::string::npos)
        << "live actor " << blk.actor_name << " wrongly reported blocked";
}

// -------------------------------------------------------------- cic layer

TEST(CicDeadlock, ChannelCycleDiagnosedAtRuntime) {
  // Two tasks that each wait for the other's token first: classic wait
  // cycle. Validation passes (structurally fine); the run diagnoses it.
  cic::CicProgram p("cycle");
  const auto a = p.add_task("ping", 1'000, {"in"}, {"out"});
  p.set_period(a, microseconds(10));  // period makes validate() happy —
  // but ping still blocks on its input port before producing.
  const auto b = p.add_task("pong", 1'000, {"in"}, {"out"});
  EXPECT_TRUE(p.connect(a, "out", b, "in").ok());
  EXPECT_TRUE(p.connect(b, "out", a, "in").ok());
  ASSERT_TRUE(p.validate().ok());

  cic::CicMapping m;
  m.task_to_pe = {0, 1};
  auto tp = cic::TargetProgram::translate(p, cic::ArchInfo::smp_like(2), m);
  ASSERT_TRUE(tp.ok());
  const auto r = tp.value().run(5);
  EXPECT_TRUE(r.deadlocked);
  ASSERT_EQ(r.blocked_tasks.size(), 2u);
  EXPECT_EQ(r.blocked_tasks[0], "ping");
  EXPECT_EQ(r.blocked_tasks[1], "pong");
}

TEST(CicDeadlock, HealthyPipelineNotFlagged) {
  cic::CicProgram p("ok");
  const auto src = p.add_task("src", 1'000, {}, {"o"});
  p.set_period(src, microseconds(50));
  const auto snk = p.add_task("snk", 1'000, {"i"}, {});
  EXPECT_TRUE(p.connect(src, "o", snk, "i").ok());
  const auto arch = cic::ArchInfo::smp_like(2);
  auto tp = cic::TargetProgram::translate(
      p, arch, cic::CicMapping::automatic(p, arch).value());
  ASSERT_TRUE(tp.ok());
  const auto r = tp.value().run(10);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(r.blocked_tasks.empty());
}

}  // namespace
}  // namespace rw
