#include "sim/peripherals.hpp"

#include <gtest/gtest.h>

#include "sim/interconnect.hpp"

namespace rw::sim {
namespace {

class PeriphTest : public ::testing::Test {
 protected:
  Kernel kernel;
  Tracer tracer;
  InterruptController irqc{kernel, tracer};
};

TEST_F(PeriphTest, IrqDispatchesHandler) {
  int fired = -1;
  irqc.set_handler(3, [&](std::size_t line) { fired = static_cast<int>(line); });
  irqc.raise(3);
  EXPECT_EQ(fired, -1);  // dispatch is an event, not re-entrant
  kernel.run();
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(irqc.is_pending(3));
  irqc.ack(3);
  EXPECT_FALSE(irqc.is_pending(3));
}

TEST_F(PeriphTest, MaskedIrqStaysPendingAndFiresOnUnmask) {
  // The Sec. VII "wrongly masked interrupt" scenario.
  int fires = 0;
  irqc.set_handler(5, [&](std::size_t) { ++fires; });
  irqc.set_masked(5, true);
  irqc.raise(5);
  kernel.run();
  EXPECT_EQ(fires, 0);
  EXPECT_TRUE(irqc.is_pending(5));
  EXPECT_TRUE(irqc.line_signal(5).level());  // visible on the wire!
  irqc.set_masked(5, false);
  kernel.run();
  EXPECT_EQ(fires, 1);
}

TEST_F(PeriphTest, LineSignalObservable) {
  bool saw_rise = false;
  irqc.line_signal(2).add_observer(
      [&](const Signal& s, bool old) { saw_rise = !old && s.level(); });
  irqc.raise(2);
  EXPECT_TRUE(saw_rise);
}

TEST_F(PeriphTest, IrqRegisterFile) {
  irqc.raise(0);
  irqc.raise(4);
  EXPECT_EQ(irqc.read_reg(InterruptController::kRegPending), 0b10001u);
  irqc.write_reg(InterruptController::kRegPending, 0b1);  // W1C
  EXPECT_EQ(irqc.read_reg(InterruptController::kRegPending), 0b10000u);
  irqc.write_reg(InterruptController::kRegMask, 0b100);
  EXPECT_TRUE(irqc.is_masked(2));
  EXPECT_EQ(irqc.read_reg(InterruptController::kRegRaisedCount), 2u);
  EXPECT_THROW(irqc.read_reg(99), std::out_of_range);
}

TEST_F(PeriphTest, TimerPeriodicFires) {
  TimerPeripheral timer(kernel, tracer, irqc, 7);
  int ticks = 0;
  irqc.set_handler(7, [&](std::size_t) {
    ++ticks;
    irqc.ack(7);
  });
  timer.start_periodic(microseconds(10));
  kernel.run_until(microseconds(95));
  EXPECT_EQ(ticks, 9);
  EXPECT_EQ(timer.fire_count(), 9u);
}

TEST_F(PeriphTest, TimerOneshotFiresOnce) {
  TimerPeripheral timer(kernel, tracer, irqc, 7);
  timer.start_oneshot(microseconds(5));
  kernel.run_until(microseconds(100));
  EXPECT_EQ(timer.fire_count(), 1u);
  EXPECT_FALSE(timer.running());
}

TEST_F(PeriphTest, TimerStopCancelsPendingFire) {
  TimerPeripheral timer(kernel, tracer, irqc, 7);
  timer.start_periodic(microseconds(10));
  kernel.run_until(microseconds(25));
  EXPECT_EQ(timer.fire_count(), 2u);
  timer.stop();
  kernel.run_until(microseconds(100));
  EXPECT_EQ(timer.fire_count(), 2u);
}

TEST_F(PeriphTest, TimerRestartInvalidatesOldSchedule) {
  TimerPeripheral timer(kernel, tracer, irqc, 7);
  timer.start_periodic(microseconds(10));
  timer.start_periodic(microseconds(3));
  kernel.run_until(microseconds(10));
  EXPECT_EQ(timer.fire_count(), 3u);  // fires at 3, 6, 9 — not also at 10
}

TEST_F(PeriphTest, TimerRegisterInterface) {
  TimerPeripheral timer(kernel, tracer, irqc, 7);
  timer.write_reg(TimerPeripheral::kRegPeriodPs, microseconds(2));
  timer.write_reg(TimerPeripheral::kRegCtrl, 0b11);  // enable periodic
  EXPECT_TRUE(timer.running());
  kernel.run_until(microseconds(7));
  EXPECT_EQ(timer.read_reg(TimerPeripheral::kRegFireCount), 3u);
  timer.write_reg(TimerPeripheral::kRegCtrl, 0);
  EXPECT_FALSE(timer.running());
}

TEST_F(PeriphTest, TimerRejectsZeroPeriod) {
  TimerPeripheral timer(kernel, tracer, irqc, 7);
  EXPECT_THROW(timer.start_periodic(0), std::invalid_argument);
}

TEST_F(PeriphTest, DmaCopiesAndInterrupts) {
  MemorySystem mem(kernel, tracer);
  mem.add_region("src", 0x0, 256, 1);
  mem.add_region("dst", 0x1000, 256, 1);
  SharedBus bus(kernel, {});
  DmaEngine dma(kernel, tracer, mem, &bus, irqc, 1);

  std::vector<std::uint8_t> payload{9, 8, 7, 6};
  mem.poke(0x10, payload);

  bool irq_seen = false;
  irqc.set_handler(1, [&](std::size_t) { irq_seen = true; });

  bool cb_seen = false;
  dma.start(0x10, 0x1000, 4, [&] { cb_seen = true; });
  EXPECT_TRUE(dma.busy());
  EXPECT_TRUE(dma.busy_signal().level());
  kernel.run();
  EXPECT_FALSE(dma.busy());
  EXPECT_TRUE(cb_seen);
  EXPECT_TRUE(irq_seen);
  std::vector<std::uint8_t> out(4);
  mem.peek(0x1000, out);
  EXPECT_EQ(out, payload);
}

TEST_F(PeriphTest, DmaRejectsConcurrentStart) {
  MemorySystem mem(kernel, tracer);
  mem.add_region("r", 0, 256, 1);
  DmaEngine dma(kernel, tracer, mem, nullptr, irqc, 1);
  dma.start(0, 128, 16);
  EXPECT_THROW(dma.start(0, 128, 16), std::runtime_error);
  kernel.run();
  EXPECT_NO_THROW(dma.start(0, 128, 16));
}

TEST_F(PeriphTest, DmaRegisterKickoff) {
  MemorySystem mem(kernel, tracer);
  mem.add_region("r", 0, 256, 1);
  DmaEngine dma(kernel, tracer, mem, nullptr, irqc, 1);
  std::vector<std::uint8_t> payload{1, 2};
  mem.poke(0, payload);
  dma.write_reg(DmaEngine::kRegSrc, 0);
  dma.write_reg(DmaEngine::kRegDst, 100);
  dma.write_reg(DmaEngine::kRegLen, 2);
  dma.write_reg(DmaEngine::kRegStatus, 1);
  EXPECT_EQ(dma.read_reg(DmaEngine::kRegStatus), 1u);
  kernel.run();
  EXPECT_EQ(dma.read_reg(DmaEngine::kRegStatus), 0u);
  EXPECT_EQ(dma.read_reg(DmaEngine::kRegDoneCount), 1u);
  std::vector<std::uint8_t> out(2);
  mem.peek(100, out);
  EXPECT_EQ(out, payload);
}

TEST_F(PeriphTest, SemaphoreAcquireRelease) {
  HwSemaphores sem(kernel, tracer, 4);
  EXPECT_TRUE(sem.try_acquire(0, CoreId{1}));
  EXPECT_FALSE(sem.try_acquire(0, CoreId{2}));
  EXPECT_TRUE(sem.held(0));
  EXPECT_EQ(sem.holder(0), CoreId{1});
  EXPECT_THROW(sem.release(0, CoreId{2}), std::logic_error);
  sem.release(0, CoreId{1});
  EXPECT_FALSE(sem.held(0));
  EXPECT_TRUE(sem.try_acquire(0, CoreId{2}));
}

TEST_F(PeriphTest, SemaphoreRegisterView) {
  HwSemaphores sem(kernel, tracer, 2);
  EXPECT_EQ(sem.read_reg(0), 0u);
  sem.try_acquire(0, CoreId{3});
  EXPECT_EQ(sem.read_reg(0), 4u);  // holder id + 1
  sem.write_reg(0, 0);             // force release (debugger poke)
  EXPECT_FALSE(sem.held(0));
  EXPECT_EQ(sem.registers().size(), 2u);
}

TEST_F(PeriphTest, PeripheralsExposeSignals) {
  TimerPeripheral timer(kernel, tracer, irqc, 7);
  EXPECT_FALSE(irqc.signals().empty());
  EXPECT_EQ(timer.signals().size(), 1u);
  EXPECT_EQ(timer.signals()[0]->name(), "timer.expired");
}

}  // namespace
}  // namespace rw::sim
