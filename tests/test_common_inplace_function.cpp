#include "common/inplace_function.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace rw::common {
namespace {

using Fn = InplaceFunction<void(), 48>;

TEST(InplaceFunction, DefaultIsEmptyAndThrowsOnCall) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_THROW(f(), std::bad_function_call);
  Fn g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InplaceFunction, InvokesStoredCallable) {
  int hits = 0;
  Fn f = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, ReturnsValuesAndTakesArguments) {
  InplaceFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 40), 42);
}

TEST(InplaceFunction, SmallCapturesStayInline) {
  // The kernel's hot-path captures: handles, this-pointers, small ints.
  struct Capture {
    void* a;
    void* b;
    std::uint64_t c;
    void operator()() const {}
  };
  static_assert(Fn::stores_inline<Capture>);
  // A capture bigger than the buffer must still work (heap fallback).
  struct Big {
    char blob[96];
    void operator()() const {}
  };
  static_assert(!Fn::stores_inline<Big>);
  Big big{};
  big.blob[0] = 7;
  Fn f = big;
  f();  // must not crash; dispatches through the heap slot
}

TEST(InplaceFunction, MoveTransfersOwnership) {
  int hits = 0;
  Fn a = [&hits] { ++hits; };
  Fn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  Fn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, MoveOnlyCapturesWork) {
  // std::function rejects move-only captures; the event type must not.
  auto p = std::make_unique<int>(5);
  InplaceFunction<int()> f = [p = std::move(p)] { return *p; };
  InplaceFunction<int()> g = std::move(f);
  EXPECT_EQ(g(), 5);
}

TEST(InplaceFunction, DestroysInlineAndHeapCapturesExactlyOnce) {
  struct Probe {
    std::shared_ptr<int> token;
    void operator()() const {}
  };
  auto token = std::make_shared<int>(1);
  {
    Fn f = Probe{token};
    Fn g = std::move(f);
    EXPECT_EQ(token.use_count(), 2);  // exactly one live copy inside g
  }
  EXPECT_EQ(token.use_count(), 1);

  struct BigProbe {
    std::shared_ptr<int> token;
    char pad[80];
    void operator()() const {}
  };
  static_assert(!Fn::stores_inline<BigProbe>);
  {
    Fn f = BigProbe{token, {}};
    Fn g = std::move(f);
    f = BigProbe{token, {}};  // assign into a moved-from function
    EXPECT_EQ(token.use_count(), 3);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InplaceFunction, AssignmentReplacesPreviousCallable) {
  int first = 0, second = 0;
  Fn f = [&first] { ++first; };
  f = [&second] { ++second; };
  f();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunction, WrapsACopyableStdFunction) {
  // Existing call sites hand std::function lvalues to the scheduler; they
  // are copied into the inline buffer (std::function itself fits).
  int hits = 0;
  std::function<void()> sf = [&hits] { ++hits; };
  static_assert(Fn::stores_inline<std::function<void()>>);
  Fn f = sf;
  sf = nullptr;
  f();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace rw::common
