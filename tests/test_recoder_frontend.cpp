#include <gtest/gtest.h>

#include "recoder/analysis.hpp"
#include "recoder/interp.hpp"
#include "recoder/parser.hpp"
#include "recoder/printer.hpp"

namespace rw::recoder {
namespace {

TEST(Parser, ParsesMinimalFunction) {
  auto r = parse_program("int main() { return 42; }");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  ASSERT_EQ(r.value().functions.size(), 1u);
  EXPECT_EQ(r.value().functions[0].name, "main");
  EXPECT_TRUE(r.value().functions[0].returns_value);
}

TEST(Parser, ParsesGlobalsAndArrays) {
  auto r = parse_program(R"(
    int total;
    int data[16];
    int main() { return 0; }
  )");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  ASSERT_EQ(r.value().globals.size(), 2u);
  EXPECT_EQ(r.value().globals[1]->name, "data");
  EXPECT_TRUE(r.value().globals[1]->is_array);
  EXPECT_EQ(r.value().globals[1]->array_size, 16);
}

TEST(Parser, ParsesControlFlow) {
  auto r = parse_program(R"(
    int f(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
      }
      while (s > 100) { s = s / 2; }
      return s;
    }
  )");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
}

TEST(Parser, ParsesPointersAndCalls) {
  auto r = parse_program(R"(
    int a[8];
    int get(int i) { return a[i]; }
    int main() {
      int *p = &a[2];
      *p = 5;
      *(p + 1) = 6;
      return get(2) + get(3);
    }
  )");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
}

TEST(Parser, OperatorPrecedence) {
  auto e = parse_expression("1 + 2 * 3 == 7 && 4 < 5");
  ASSERT_TRUE(e.ok());
  // Top node should be &&.
  EXPECT_EQ(e.value()->op, "&&");
  EXPECT_EQ(e.value()->kids[0]->op, "==");
}

TEST(Parser, CommentsIgnored) {
  auto r = parse_program(R"(
    // line comment
    int main() { /* block
      comment */ return 1; }
  )");
  ASSERT_TRUE(r.ok());
}

TEST(Parser, ErrorsCarryLocation) {
  auto r = parse_program("int main() {\n  return @;\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().line, 2);
}

TEST(Parser, RejectsBrokenInput) {
  EXPECT_FALSE(parse_program("int main() {").ok());
  EXPECT_FALSE(parse_program("float x;").ok());
  EXPECT_FALSE(parse_program("int main() { 1 = 2; }").ok());
  EXPECT_FALSE(parse_program("int a[x];").ok());  // non-literal size
}

TEST(Printer, RoundTripsPrograms) {
  const char* src = R"(
    int buf[4];
    int add(int a, int b) { return a + b; }
    int main() {
      int s = 0;
      for (int i = 0; i < 4; i = i + 1) {
        buf[i] = add(i, 2 * i);
        s = s + buf[i];
      }
      if (s > 10) { s = s - 10; }
      return s;
    }
  )";
  auto p1 = parse_program(src);
  ASSERT_TRUE(p1.ok());
  const std::string text1 = print_program(p1.value());
  auto p2 = parse_program(text1);
  ASSERT_TRUE(p2.ok()) << p2.error().to_string() << "\n" << text1;
  EXPECT_EQ(print_program(p2.value()), text1);  // printing is a fixpoint
}

TEST(Printer, ParenthesizesCorrectly) {
  auto e = parse_expression("(1 + 2) * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(print_expr(*e.value()), "(1 + 2) * 3");
  auto e2 = parse_expression("1 + 2 * 3");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(print_expr(*e2.value()), "1 + 2 * 3");
}

TEST(Interp, Arithmetic) {
  auto p = parse_program("int main() { return (3 + 4) * 2 - 10 / 5; }");
  ASSERT_TRUE(p.ok());
  auto r = interpret(p.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().return_value, 12);
}

TEST(Interp, LoopsAndArrays) {
  auto p = parse_program(R"(
    int out[5];
    int main() {
      for (int i = 0; i < 5; i = i + 1) { out[i] = i * i; }
      return out[4];
    })");
  ASSERT_TRUE(p.ok());
  auto r = interpret(p.value());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().return_value, 16);
  EXPECT_EQ(r.value().globals.at("out"),
            (std::vector<std::int64_t>{0, 1, 4, 9, 16}));
}

TEST(Interp, FunctionsAndRecursion) {
  auto p = parse_program(R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(10); })");
  ASSERT_TRUE(p.ok());
  auto r = interpret(p.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().return_value, 55);
}

TEST(Interp, ArrayParamsByReference) {
  auto p = parse_program(R"(
    void fill(int v[], int n) {
      for (int i = 0; i < n; i = i + 1) { v[i] = 7; }
    }
    int data[3];
    int main() { fill(data, 3); return data[2]; })");
  ASSERT_TRUE(p.ok());
  auto r = interpret(p.value());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().return_value, 7);
}

TEST(Interp, PointerSemantics) {
  auto p = parse_program(R"(
    int a[4];
    int main() {
      int *p = &a[1];
      *p = 10;
      *(p + 2) = 30;
      return a[1] + a[3];
    })");
  ASSERT_TRUE(p.ok());
  auto r = interpret(p.value());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().return_value, 40);
}

TEST(Interp, ChannelBuiltins) {
  auto p = parse_program(R"(
    int main() {
      chan_send(1, 11);
      chan_send(1, 22);
      int a = chan_recv(1);
      int b = chan_recv(1);
      return a * 100 + b;
    })");
  ASSERT_TRUE(p.ok());
  auto r = interpret(p.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().return_value, 1122);
}

TEST(Interp, RuntimeErrors) {
  auto oob = parse_program("int a[2]; int main() { return a[5]; }");
  ASSERT_TRUE(oob.ok());
  EXPECT_FALSE(interpret(oob.value()).ok());

  auto div0 = parse_program("int main() { return 1 / 0; }");
  ASSERT_TRUE(div0.ok());
  EXPECT_FALSE(interpret(div0.value()).ok());

  auto inf = parse_program("int main() { while (1) { } return 0; }");
  ASSERT_TRUE(inf.ok());
  EXPECT_FALSE(interpret(inf.value(), "main", {}, 1000).ok());

  auto empty_recv = parse_program("int main() { return chan_recv(0); }");
  ASSERT_TRUE(empty_recv.ok());
  EXPECT_FALSE(interpret(empty_recv.value()).ok());
}

TEST(Interp, MainArguments) {
  auto p = parse_program("int main(int x, int y) { return x * y; }");
  ASSERT_TRUE(p.ok());
  auto r = interpret(p.value(), "main", {6, 7});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().return_value, 42);
}

TEST(Analysis, VarUses) {
  auto p = parse_program(R"(
    int a[4];
    int main() {
      int x = 1;
      a[x] = x + 2;
      return a[0];
    })");
  ASSERT_TRUE(p.ok());
  const VarUse u = body_uses(p.value().functions[0].body);
  EXPECT_TRUE(u.writes.count("x"));
  EXPECT_TRUE(u.writes.count("a"));
  EXPECT_TRUE(u.reads.count("x"));
  EXPECT_TRUE(u.reads.count("a"));
}

TEST(Analysis, CanonicalLoopRecognition) {
  auto p = parse_program(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) { s = s + i; }
      for (int j = 10; j > 0; j = j - 1) { s = s - 1; }
      return s;
    })");
  ASSERT_TRUE(p.ok());
  const auto& body = p.value().functions[0].body;
  const auto cl = canonical_loop(*body[1]);
  ASSERT_TRUE(cl.has_value());
  EXPECT_EQ(cl->var, "i");
  EXPECT_EQ(cl->lower, 0);
  EXPECT_EQ(cl->upper, 10);
  EXPECT_FALSE(canonical_loop(*body[2]).has_value());  // descending
  EXPECT_FALSE(canonical_loop(*body[0]).has_value());  // not a loop
}

TEST(Analysis, DataParallelLoop) {
  auto p = parse_program(R"(
    int a[8];
    int b[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) {
        int t = a[i] * 2;
        b[i] = t;
      }
      int s = 0;
      for (int i = 0; i < 8; i = i + 1) { s = s + b[i]; }
      return s;
    })");
  ASSERT_TRUE(p.ok());
  const auto& body = p.value().functions[0].body;
  EXPECT_TRUE(loop_is_data_parallel(*body[0]));
  EXPECT_FALSE(loop_is_data_parallel(*body[2]));  // s is loop-carried
}

TEST(Analysis, PointerDetection) {
  auto p = parse_program(R"(
    int a[4];
    int clean() { return a[0]; }
    int dirty() { int *p = &a[0]; return *p; }
  )");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(uses_pointers(p.value().functions[0]));
  EXPECT_TRUE(uses_pointers(p.value().functions[1]));
}

TEST(Analysis, LineDiff) {
  EXPECT_EQ(line_diff("a\nb\nc", "a\nb\nc"), 0u);
  EXPECT_EQ(line_diff("a\nb", "a\nx\nb"), 1u);   // one line added
  EXPECT_EQ(line_diff("a\nb\nc", "a\nc"), 1u);   // one removed
  EXPECT_EQ(line_diff("a", "b"), 2u);            // replace = add + remove
}

TEST(Analysis, NodeCount) {
  auto p = parse_program("int main() { return 1 + 2; }");
  ASSERT_TRUE(p.ok());
  // return stmt + binary + two literals = 4.
  EXPECT_EQ(count_nodes(p.value()), 4u);
}

}  // namespace
}  // namespace rw::recoder
