// Sec. VII: "Peripheral access watchpoints allow suspending execution
// when a specific core or DMA is writing to a shared resource."
#include <gtest/gtest.h>

#include "vpdebug/debugger.hpp"

namespace rw::vpdebug {
namespace {

TEST(DmaWatch, WatchpointFiresOnDmaWrite) {
  auto cfg = sim::PlatformConfig::homogeneous(2, mhz(400));
  cfg.trace_enabled = true;
  sim::Platform p(std::move(cfg));
  Debugger dbg(p);

  const sim::Addr src = p.scratchpad_base(sim::CoreId{0});
  const sim::Addr dst = p.shared_base() + 256;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5, 6, 7, 8};
  p.memory().poke(src, payload);

  dbg.watch_memory(dst, 8, /*on_write=*/true);
  p.dma().start(src, dst, 8);
  const auto stop = dbg.resume();
  EXPECT_EQ(stop.kind, StopKind::kWatchpointMem);
  // The access came from the DMA, not a core.
  EXPECT_NE(stop.detail.find("999"), std::string::npos);
  // Data is already in place when the system suspends.
  EXPECT_EQ(dbg.read_mem_u64(dst), 0x0807060504030201ULL);
}

TEST(DmaWatch, DmaBusySignalWatch) {
  auto cfg = sim::PlatformConfig::homogeneous(1, mhz(400));
  cfg.trace_enabled = true;
  sim::Platform p(std::move(cfg));
  Debugger dbg(p);
  dbg.watch_signal("dma.busy");
  p.memory().poke(p.shared_base(), std::vector<std::uint8_t>{9});
  p.dma().start(p.shared_base(), p.shared_base() + 64, 1);
  // The busy signal rose synchronously at start(); the stop is pending and
  // surfaces on the next event boundary.
  const auto stop = dbg.resume();
  EXPECT_EQ(stop.kind, StopKind::kWatchpointSignal);
}

TEST(DmaWatch, ReadWatchpointSeesDmaSourceRead) {
  auto cfg = sim::PlatformConfig::homogeneous(1, mhz(400));
  cfg.trace_enabled = true;
  sim::Platform p(std::move(cfg));
  Debugger dbg(p);
  const sim::Addr src = p.shared_base();
  dbg.watch_memory(src, 16, /*on_write=*/false, /*on_read=*/true);
  p.dma().start(src, src + 1024, 16);
  const auto stop = dbg.resume();
  EXPECT_EQ(stop.kind, StopKind::kWatchpointMem);
  EXPECT_NE(stop.detail.find("read"), std::string::npos);
}

}  // namespace
}  // namespace rw::vpdebug
