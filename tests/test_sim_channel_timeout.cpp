// Channel send_for/recv_for edge cases: silent peers, exact-deadline
// ties, destroyed peers, and the stale-deadline/address-reuse regression
// (a timeout event outliving its awaitable must never forge a timeout
// for a successor awaitable at the same frame address).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/kernel.hpp"
#include "sim/process.hpp"

namespace rw::sim {
namespace {

using Chan = Channel<int>;

Process recv_once(Kernel& k, Chan& ch, DurationPs timeout,
                  std::vector<std::string>& log) {
  auto r = co_await ch.recv_for(timeout);
  if (r.ok())
    log.push_back("recv:" + std::to_string(r.value()) + "@" +
                  std::to_string(k.now()));
  else
    log.push_back("timeout@" + std::to_string(k.now()));
}

Process send_later(Kernel& k, Chan& ch, int v, TimePs at) {
  co_await delay(k, at - k.now());
  co_await ch.send(v);
}

TEST(ChannelTimeout, RecvTimesOutOnSilentChannel) {
  Kernel k;
  Chan ch(k, 2, "silent");
  std::vector<std::string> log;
  spawn(k, recv_once(k, ch, microseconds(5), log));
  k.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "timeout@" + std::to_string(microseconds(5)));
  EXPECT_EQ(k.now(), microseconds(5));
  EXPECT_EQ(ch.total_received(), 0u);
}

TEST(ChannelTimeout, DeliveryBeforeDeadlineDefusesTimeout) {
  Kernel k;
  Chan ch(k, 2, "fast");
  std::vector<std::string> log;
  spawn(k, recv_once(k, ch, microseconds(5), log));
  spawn(k, send_later(k, ch, 42, microseconds(2)));
  k.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "recv:42@" + std::to_string(microseconds(2)));
  // The defused deadline event still drains, but must be a no-op: the
  // kernel advances to 5us with nothing further logged.
  EXPECT_EQ(k.now(), microseconds(5));
}

// A tie at the exact deadline: data arrives at t == now + timeout. Both
// the delivery event and the deadline event carry the same timestamp, so
// the kernel's (time, priority, seq) order decides — deterministically.
// The deadline event is scheduled at await_suspend (recv at t=0); the
// delivery event is scheduled by the sender at t=5us. Same time, lower
// seq wins: the deadline fires first, so the tie resolves to timeout.
TEST(ChannelTimeout, ExactDeadlineTieIsDeterministicallyTimeout) {
  auto run = [] {
    Kernel k;
    Chan ch(k, 2, "tie");
    std::vector<std::string> log;
    spawn(k, recv_once(k, ch, microseconds(5), log));
    spawn(k, send_later(k, ch, 7, microseconds(5)));
    k.run();
    return log;
  };
  const std::vector<std::string> a = run();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], "timeout@" + std::to_string(microseconds(5)));
  EXPECT_EQ(a, run());  // identical on rerun: no hidden nondeterminism
}

// Flip the tie: if the waiter parks *after* the message's delivery event
// is already scheduled... impossible for a recv (delivery requires a
// parked waiter), so probe the send side instead: a send_for on a full
// channel whose receiver frees a slot exactly at the deadline. The slot
// free-up (refill_from_sender) runs inside the receiver's resume event,
// scheduled at 5us *after* the sender's deadline event (seq order), so
// the deadline wins again — and the message is dropped.
Process recv_at(Kernel& k, Chan& ch, TimePs at, std::vector<int>& got) {
  co_await delay(k, at - k.now());
  got.push_back(co_await ch.recv());
}

Process send_for_once(Kernel& k, Chan& ch, int v, DurationPs timeout,
                      std::vector<std::string>& log) {
  auto st = co_await ch.send_for(v, timeout);
  log.push_back((st.ok() ? std::string("sent@") : std::string("drop@")) +
                std::to_string(k.now()));
}

TEST(ChannelTimeout, SendForExactDeadlineTieDropsTheMessage) {
  Kernel k;
  Chan ch(k, 1, "full");
  std::vector<std::string> log;
  std::vector<int> got;
  ASSERT_TRUE(ch.try_send(1));  // fill the single slot
  spawn(k, send_for_once(k, ch, 2, microseconds(5), log));
  spawn(k, recv_at(k, ch, microseconds(5), got));
  k.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "drop@" + std::to_string(microseconds(5)));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 1);          // the buffered message, not the dropped one
  EXPECT_EQ(ch.total_sent(), 1u);
}

// Regression for the address-reuse bug: a retry loop's successive timed
// awaitables occupy the same coroutine-frame address. The first recv's
// deadline event (10us) outlives it (delivery at 5us). When that stale
// event fires, the second recv_for is parked at the *same address* — the
// stale event must not forge a timeout for it; real data at 12us must
// arrive normally.
Process recv_twice_with_reuse(Kernel& k, Chan& ch,
                              std::vector<std::string>& log) {
  for (int i = 0; i < 2; ++i) {
    auto r = co_await ch.recv_for(microseconds(10));
    if (r.ok())
      log.push_back("recv:" + std::to_string(r.value()) + "@" +
                    std::to_string(k.now()));
    else
      log.push_back("timeout@" + std::to_string(k.now()));
  }
}

TEST(ChannelTimeout, StaleDeadlineNeverForgesTimeoutForSuccessor) {
  Kernel k;
  Chan ch(k, 2, "reuse");
  std::vector<std::string> log;
  spawn(k, recv_twice_with_reuse(k, ch, log));
  spawn(k, send_later(k, ch, 1, microseconds(5)));
  spawn(k, send_later(k, ch, 2, microseconds(12)));
  k.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "recv:1@" + std::to_string(microseconds(5)));
  // Before the generation-tag fix this read "timeout@10000000": the first
  // recv's stale deadline matched the second recv's registration by
  // address and resumed it with a forged timeout.
  EXPECT_EQ(log[1], "recv:2@" + std::to_string(microseconds(12)));
}

// Peer destroyed without ever being spawned: the receiver waits on a
// channel nobody will ever write. recv_for is precisely the survival
// mechanism — it must resolve to an error instead of hanging the sim.
TEST(ChannelTimeout, RecvSurvivesDestroyedPeer) {
  Kernel k;
  Chan ch(k, 2, "orphan");
  std::vector<std::string> log;
  {
    // Created and destroyed without spawn(): the would-be producer's
    // frame is gone before the kernel ever runs.
    Process dead_peer = send_later(k, ch, 99, microseconds(1));
  }
  spawn(k, recv_once(k, ch, microseconds(8), log));
  k.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "timeout@" + std::to_string(microseconds(8)));
  EXPECT_EQ(ch.total_sent(), 0u);
}

// A stale deadline firing after the waiter's whole coroutine finished
// must be a no-op (exercised under ASan in CI: any dangling-pointer
// dereference in the timeout path would trip it).
TEST(ChannelTimeout, StaleDeadlineAfterWaiterFinishedIsNoOp) {
  Kernel k;
  Chan ch(k, 2, "done");
  std::vector<std::string> log;
  spawn(k, recv_once(k, ch, microseconds(20), log));
  spawn(k, send_later(k, ch, 5, microseconds(1)));
  k.run();  // drains the stale 20us deadline long after the frame finished
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "recv:5@" + std::to_string(microseconds(1)));
  EXPECT_EQ(k.now(), microseconds(20));
}

// A coroutine destroyed *while parked* in recv_for (suspended, never
// resumed) leaves an armed deadline event behind. The awaitable's
// destructor must untrack the registration and unpark the waiter, so the
// deadline later drains as a no-op instead of resuming a freed frame
// (exercised under ASan in CI).
Process recv_never_resumed(Chan& ch, std::vector<std::string>& log) {
  auto r = co_await ch.recv_for(microseconds(10));
  log.push_back(r.ok() ? "recv" : "timeout");  // must never run
}

TEST(ChannelTimeout, DeadlineOfWaiterDestroyedMidRunIsDefused) {
  Kernel k;
  Chan ch(k, 2, "doomed");
  std::vector<std::string> log;
  Process p = recv_never_resumed(ch, log);
  auto h = p.release();
  h.resume();  // runs to the recv_for suspension; deadline armed at 10us
  h.destroy();  // mid-run destruction of the suspended waiter
  k.run();  // the 10us deadline drains without touching the freed frame
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(k.now(), microseconds(10));
}

// The reverse teardown order: the channel dies before the parked waiter's
// frame does. The channel clears the waiter's armed slot on destruction,
// so the frame's later destructor must not call back into the dead
// channel.
TEST(ChannelTimeout, ChannelDestroyedBeforeParkedWaiterFrameIsSafe) {
  Kernel k;
  auto ch = std::make_unique<Chan>(k, 1, "short-lived");
  std::vector<std::string> log;
  Process p = recv_never_resumed(*ch, log);
  auto h = p.release();
  h.resume();   // parked with an armed deadline
  ch.reset();   // channel gone first
  h.destroy();  // frame destructor: must be a no-op w.r.t. the channel
  EXPECT_TRUE(log.empty());
}

// Same for the send side: a sender parked on a full channel and then
// destroyed must defuse its deadline and leave the waiter deque.
Process send_never_resumed(Chan& ch, std::vector<std::string>& log) {
  auto st = co_await ch.send_for(7, microseconds(10));
  log.push_back(st.ok() ? "sent" : "drop");  // must never run
}

TEST(ChannelTimeout, SendDeadlineOfDestroyedWaiterIsDefused) {
  Kernel k;
  Chan ch(k, 1, "full-doomed");
  ASSERT_TRUE(ch.try_send(1));  // fill the single slot so send_for parks
  std::vector<std::string> log;
  Process p = send_never_resumed(ch, log);
  auto h = p.release();
  h.resume();
  h.destroy();
  k.run();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(ch.total_sent(), 1u);  // the parked message died with its frame
  EXPECT_EQ(k.now(), microseconds(10));
}

}  // namespace
}  // namespace rw::sim
