#include <gtest/gtest.h>

#include "recoder/recoder.hpp"

namespace rw::recoder {
namespace {

/// Helper: both programs must compute identical results.
void expect_equivalent(const RecoderSession& session,
                       const InterpResult& reference) {
  const auto r = session.execute();
  ASSERT_TRUE(r.ok()) << r.error().to_string() << "\nsource:\n"
                      << session.source();
  EXPECT_EQ(r.value(), reference) << session.source();
}

InterpResult reference_of(const RecoderSession& s) {
  auto r = s.execute();
  EXPECT_TRUE(r.ok());
  return r.value();
}

RecoderSession open(const char* src) {
  auto s = RecoderSession::from_source(src);
  EXPECT_TRUE(s.ok()) << s.error().to_string();
  return std::move(s).take();
}

// --------------------------------------------------------------- split_loop

const char* kDataParallelSrc = R"(
  int in[16];
  int out[16];
  int main() {
    for (int i = 0; i < 16; i = i + 1) { in[i] = i * 3; }
    for (int i = 0; i < 16; i = i + 1) {
      int t = in[i] + 1;
      out[i] = t * t;
    }
    int s = 0;
    for (int i = 0; i < 16; i = i + 1) { s = s + out[i]; }
    return s;
  }
)";

TEST(SplitLoop, PreservesSemantics) {
  auto s = open(kDataParallelSrc);
  const auto ref = reference_of(s);
  ASSERT_TRUE(s.cmd_split_loop("main", 1, 4).ok());
  expect_equivalent(s, ref);
  // The split produced 4 loops where 1 stood: 3 + 3 = 6 total loops.
  EXPECT_NE(s.source().find("i = 4"), std::string::npos);
  EXPECT_NE(s.source().find("i = 12"), std::string::npos);
}

TEST(SplitLoop, UnevenPartsCoverRange) {
  auto s = open(kDataParallelSrc);
  const auto ref = reference_of(s);
  ASSERT_TRUE(s.cmd_split_loop("main", 1, 3).ok());  // 16 = 6+6+4
  expect_equivalent(s, ref);
}

TEST(SplitLoop, RefusesLoopCarriedDependence) {
  auto s = open(kDataParallelSrc);
  // Loop 2 accumulates into s: not data parallel.
  const auto st = s.cmd_split_loop("main", 2, 2);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("dependence"), std::string::npos);
}

TEST(SplitLoop, RefusesUnknownFunctionOrLoop) {
  auto s = open(kDataParallelSrc);
  EXPECT_FALSE(s.cmd_split_loop("nope", 0, 2).ok());
  EXPECT_FALSE(s.cmd_split_loop("main", 9, 2).ok());
}

// ------------------------------------------------------------ split_vector

TEST(SplitVector, AfterLoopSplitPreservesSemantics) {
  auto s = open(kDataParallelSrc);
  const auto ref0 = s.execute();
  ASSERT_TRUE(ref0.ok());
  // Split the two data-parallel loops 2-ways (the accumulator loop stays
  // whole — and so must the `out` array), then split `in` to match.
  ASSERT_TRUE(s.cmd_split_loop("main", 1, 2).ok());
  ASSERT_TRUE(s.cmd_split_loop("main", 0, 2).ok());
  ASSERT_TRUE(s.cmd_split_vector("main", "in", 2).ok()) << s.source();

  // Globals changed names, so compare return value only.
  const auto r = s.execute();
  ASSERT_TRUE(r.ok()) << r.error().to_string() << s.source();
  EXPECT_EQ(r.value().return_value, ref0.value().return_value);
  EXPECT_NE(s.source().find("int in_0[8]"), std::string::npos);
  EXPECT_NE(s.source().find("int in_1[8]"), std::string::npos);
  EXPECT_EQ(s.source().find("int in[16]"), std::string::npos);
}

TEST(SplitVector, RefusesRangeSpanningPartitions) {
  auto s = open(kDataParallelSrc);
  const auto st = s.cmd_split_vector("main", "in", 2);
  EXPECT_FALSE(st.ok());  // unsplit loops span both halves
}

TEST(SplitVector, RefusesUnknownArray) {
  auto s = open(kDataParallelSrc);
  EXPECT_FALSE(s.cmd_split_vector("main", "ghost", 2).ok());
}

// --------------------------------------------------------------- localize

TEST(Localize, MovesScalarIntoLoop) {
  auto s = open(R"(
    int out[8];
    int main() {
      int t;
      for (int i = 0; i < 8; i = i + 1) {
        t = i * 2;
        out[i] = t + 1;
      }
      return out[7];
    })");
  const auto ref = reference_of(s);
  ASSERT_TRUE(s.cmd_localize("main", "t").ok()) << s.source();
  expect_equivalent(s, ref);
  // After localization the loop can be split.
  ASSERT_TRUE(s.cmd_split_loop("main", 0, 2).ok()) << s.source();
  expect_equivalent(s, ref);
}

TEST(Localize, RefusesValueCarriedAcrossIterations) {
  auto s = open(R"(
    int out[8];
    int main() {
      int acc;
      acc = 0;
      for (int i = 0; i < 8; i = i + 1) {
        acc = acc + i;
        out[i] = acc;
      }
      return out[7];
    })");
  EXPECT_FALSE(s.cmd_localize("main", "acc").ok());
}

// ---------------------------------------------------------- insert_channel

TEST(InsertChannel, ReplacesArrayWithChannel) {
  auto s = open(R"(
    int mid[8];
    int out[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) { mid[i] = i * i; }
      for (int j = 0; j < 8; j = j + 1) { out[j] = mid[j] + mid[j]; }
      int r = 0;
      for (int k = 0; k < 8; k = k + 1) { r = r + out[k]; }
      return r;
    })");
  const auto before = s.execute();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(s.cmd_insert_channel("main", "mid", 3).ok()) << s.source();
  const auto after = s.execute();
  ASSERT_TRUE(after.ok()) << after.error().to_string() << s.source();
  EXPECT_EQ(after.value().return_value, before.value().return_value);
  EXPECT_NE(s.source().find("chan_send(3"), std::string::npos);
  EXPECT_NE(s.source().find("chan_recv(3"), std::string::npos);
  EXPECT_EQ(s.source().find("int mid[8]"), std::string::npos);
}

TEST(InsertChannel, RefusesMismatchedRanges) {
  auto s = open(R"(
    int mid[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) { mid[i] = i; }
      int r = 0;
      for (int j = 0; j < 4; j = j + 1) { r = r + mid[j]; }
      return r;
    })");
  EXPECT_FALSE(s.cmd_insert_channel("main", "mid", 1).ok());
}

TEST(InsertChannel, RefusesConsumerBeforeProducer) {
  auto s = open(R"(
    int mid[4];
    int main() {
      int r = 0;
      for (int j = 0; j < 4; j = j + 1) { r = r + mid[j]; }
      for (int i = 0; i < 4; i = i + 1) { mid[i] = i; }
      return r;
    })");
  EXPECT_FALSE(s.cmd_insert_channel("main", "mid", 1).ok());
}

// -------------------------------------------------------- pointer_to_index

TEST(PointerRecoding, RewritesPointerExpressions) {
  auto s = open(R"(
    int a[8];
    int main() {
      int *p = &a[2];
      *p = 5;
      *(p + 1) = 7;
      *(p - 1) = 3;
      int *q = a;
      q[5] = 11;
      return a[1] + a[2] + a[3] + a[5];
    })");
  const auto ref = reference_of(s);
  ASSERT_TRUE(s.cmd_pointer_to_index("main").ok()) << s.source();
  expect_equivalent(s, ref);
  EXPECT_EQ(s.source().find('*'), std::string::npos);  // pointer-free
  EXPECT_EQ(s.source().find('&'), std::string::npos);
  EXPECT_NE(s.source().find("a[2 + 1]"), std::string::npos);
}

TEST(PointerRecoding, RefusesReassignedPointer) {
  auto s = open(R"(
    int a[8];
    int main() {
      int *p = &a[0];
      p = p + 1;
      *p = 5;
      return a[1];
    })");
  EXPECT_FALSE(s.cmd_pointer_to_index("main").ok());
}

TEST(PointerRecoding, NoopWithoutPointers) {
  auto s = open("int main() { return 3; }");
  EXPECT_TRUE(s.cmd_pointer_to_index("main").ok());
}

// ----------------------------------------------------------- prune_control

TEST(PruneControl, RemovesDeadBranchesAndFoldsConstants) {
  auto s = open(R"(
    int main() {
      int x = 0;
      if (1) { x = x + 2 * 3; } else { x = 999; }
      if (0) { x = 777; }
      while (0) { x = 888; }
      if (2 > 5) { x = 666; }
      return x;
    })");
  const auto ref = reference_of(s);
  ASSERT_TRUE(s.cmd_prune_control("main").ok());
  expect_equivalent(s, ref);
  const std::string out = s.source();
  EXPECT_EQ(out.find("999"), std::string::npos);
  EXPECT_EQ(out.find("777"), std::string::npos);
  EXPECT_EQ(out.find("888"), std::string::npos);
  EXPECT_EQ(out.find("666"), std::string::npos);
  EXPECT_EQ(out.find("if"), std::string::npos);
  EXPECT_NE(out.find("x + 6"), std::string::npos);  // folded 2*3
}

TEST(PruneControl, KeepsConditionsWithCalls) {
  auto s = open(R"(
    int g;
    int bump() { g = g + 1; return 0; }
    int main() {
      if (bump() && 0) { g = 100; }
      return g;
    })");
  const auto ref = reference_of(s);
  ASSERT_TRUE(s.cmd_prune_control("main").ok());
  expect_equivalent(s, ref);
  EXPECT_NE(s.source().find("bump()"), std::string::npos);
}

// ---------------------------------------------------------------- outline

TEST(Outline, ExtractsRegionIntoFunction) {
  auto s = open(R"(
    int data[8];
    int main() {
      int n = 8;
      for (int i = 0; i < 8; i = i + 1) { data[i] = i; }
      for (int i = 0; i < 8; i = i + 1) { data[i] = data[i] * 2; }
      int r = 0;
      for (int i = 0; i < 8; i = i + 1) { r = r + data[i]; }
      return r;
    })");
  const auto ref = reference_of(s);
  ASSERT_TRUE(s.cmd_outline("main", 1, 3, "prepare").ok()) << s.source();
  expect_equivalent(s, ref);
  EXPECT_NE(s.source().find("void prepare("), std::string::npos);
  EXPECT_NE(s.source().find("prepare()"), std::string::npos);
}

TEST(Outline, PassesReadScalarsAsParams) {
  auto s = open(R"(
    int data[8];
    int main() {
      int n = 8;
      for (int i = 0; i < n; i = i + 1) { data[i] = i; }
      return data[5];
    })");
  const auto ref = reference_of(s);
  ASSERT_TRUE(s.cmd_outline("main", 1, 2, "fill").ok()) << s.source();
  expect_equivalent(s, ref);
  EXPECT_NE(s.source().find("void fill(int n)"), std::string::npos);
  EXPECT_NE(s.source().find("fill(n)"), std::string::npos);
}

TEST(Outline, RefusesRegionWritingOuterScalar) {
  auto s = open(R"(
    int main() {
      int r = 0;
      r = r + 1;
      return r;
    })");
  EXPECT_FALSE(s.cmd_outline("main", 1, 2, "bump").ok());
}

TEST(Outline, RefusesDuplicateName) {
  auto s = open(R"(
    int helper() { return 1; }
    int main() { int x = 1; x = 2; return helper(); })");
  EXPECT_FALSE(s.cmd_outline("main", 0, 1, "helper").ok());
}

// -------------------------------------------------------- distribute_loop

TEST(DistributeLoop, FissionWithScalarExpansion) {
  auto s = open(R"(
    int a[8];
    int b[8];
    int c[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) {
        int t = i * 2;
        a[i] = t + 1;
        b[i] = t * t;
        c[i] = a[i] + b[i];
      }
      return c[7];
    })");
  const auto ref = reference_of(s);
  ASSERT_TRUE(s.cmd_distribute_loop("main", 0).ok()) << s.source();
  const auto r = s.execute();
  ASSERT_TRUE(r.ok()) << r.error().to_string() << s.source();
  EXPECT_EQ(r.value().return_value, ref.return_value);
  // Scalar t was expanded into an array.
  EXPECT_NE(s.source().find("int t_x[8]"), std::string::npos);
  // Pipeline stages: 4 loops now (t, a, b, c).
  std::size_t count = 0, pos = 0;
  while ((pos = s.source().find("for (", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  EXPECT_EQ(count, 4u);
}

TEST(DistributeLoop, RefusesBackwardDependence) {
  auto s = open(R"(
    int a[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) {
        int t;
        a[i] = t;
        t = i;
      }
      return a[7];
    })");
  EXPECT_FALSE(s.cmd_distribute_loop("main", 0).ok());
}

// --------------------------------------------------------------- sessions

TEST(Session, JournalRecordsCommandsAndEffort) {
  auto s = open(kDataParallelSrc);
  ASSERT_TRUE(s.cmd_split_loop("main", 1, 4).ok());
  EXPECT_FALSE(s.cmd_split_loop("main", 99, 2).ok());
  ASSERT_EQ(s.journal().size(), 2u);
  EXPECT_TRUE(s.journal()[0].ok);
  EXPECT_GT(s.journal()[0].lines_changed, 0u);
  EXPECT_FALSE(s.journal()[1].ok);
  EXPECT_FALSE(s.journal()[1].message.empty());
  EXPECT_EQ(s.commands_applied(), 1u);
  EXPECT_EQ(s.total_lines_changed(), s.journal()[0].lines_changed);
}

TEST(Session, UndoRedoRestoresText) {
  auto s = open(kDataParallelSrc);
  const std::string original = s.source();
  ASSERT_TRUE(s.cmd_split_loop("main", 1, 2).ok());
  const std::string transformed = s.source();
  ASSERT_NE(original, transformed);
  EXPECT_TRUE(s.undo());
  EXPECT_EQ(s.source(), original);
  EXPECT_TRUE(s.redo());
  EXPECT_EQ(s.source(), transformed);
  EXPECT_FALSE(s.redo());
}

TEST(Session, FailedCommandLeavesProgramUntouched) {
  auto s = open(kDataParallelSrc);
  const std::string original = s.source();
  EXPECT_FALSE(s.cmd_split_loop("main", 2, 2).ok());
  EXPECT_EQ(s.source(), original);
  EXPECT_FALSE(s.undo());  // nothing to undo
}

TEST(Session, DirectTextEditKeepsAstInSync) {
  auto s = open("int main() { return 1; }");
  ASSERT_TRUE(s.cmd_edit_text("int main() { return 2; }").ok());
  auto r = s.execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().return_value, 2);
  // Broken edits are rejected and the AST stays intact.
  EXPECT_FALSE(s.cmd_edit_text("int main() {").ok());
  EXPECT_EQ(s.execute().value().return_value, 2);
}

TEST(Session, FullRecodingPipeline) {
  // The paper's canonical flow: split loops -> split vectors -> localize ->
  // channels, ending in an analyzable parallel-shaped program.
  auto s = open(R"(
    int stage1[12];
    int stage2[12];
    int main() {
      int t;
      for (int i = 0; i < 12; i = i + 1) {
        t = i * 5;
        stage1[i] = t + 2;
      }
      for (int i = 0; i < 12; i = i + 1) {
        stage2[i] = stage1[i] * 3;
      }
      int r = 0;
      for (int i = 0; i < 12; i = i + 1) { r = r + stage2[i]; }
      return r;
    })");
  const auto ref = s.execute();
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(s.cmd_localize("main", "t").ok()) << s.source();
  ASSERT_TRUE(s.cmd_insert_channel("main", "stage1", 7).ok()) << s.source();
  const auto r = s.execute();
  ASSERT_TRUE(r.ok()) << r.error().to_string() << s.source();
  EXPECT_EQ(r.value().return_value, ref.value().return_value);
  EXPECT_GE(s.commands_applied(), 2u);
  EXPECT_GT(s.total_lines_changed(), 4u);
}

}  // namespace
}  // namespace rw::recoder
