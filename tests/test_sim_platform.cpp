#include "sim/platform.hpp"

#include <gtest/gtest.h>

#include "sim/process.hpp"

namespace rw::sim {
namespace {

TEST(Platform, HomogeneousBuild) {
  Platform p(PlatformConfig::homogeneous(8, mhz(500)));
  EXPECT_EQ(p.core_count(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(p.core(i).pe_class(), PeClass::kRisc);
    EXPECT_EQ(p.core(i).frequency(), mhz(500));
  }
}

TEST(Platform, HeterogeneousBuild) {
  Platform p(PlatformConfig::heterogeneous(2, 3));
  EXPECT_EQ(p.core_count(), 5u);
  EXPECT_EQ(p.core(0).pe_class(), PeClass::kRisc);
  EXPECT_EQ(p.core(4).pe_class(), PeClass::kDsp);
}

TEST(Platform, RejectsEmptyConfig) {
  PlatformConfig cfg;
  EXPECT_THROW(Platform{cfg}, std::invalid_argument);
}

TEST(Platform, MemoryMapHasScratchpadsAndShared) {
  Platform p(PlatformConfig::homogeneous(4));
  // Each core's scratchpad is mapped at its base.
  for (std::uint32_t i = 0; i < 4; ++i) {
    const Addr base = p.scratchpad_base(CoreId{i});
    const Region* r = p.memory().find_region(base);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->owner, CoreId{i});
  }
  const Region* shared = p.memory().find_region(p.shared_base());
  ASSERT_NE(shared, nullptr);
  EXPECT_FALSE(shared->is_local());
}

TEST(Platform, SharedMemorySlowerThanScratchpad) {
  Platform p(PlatformConfig::homogeneous(2));
  EXPECT_GT(p.memory().latency_for(p.shared_base()),
            p.memory().latency_for(p.scratchpad_base(CoreId{0})));
}

TEST(Platform, InterconnectSelection) {
  PlatformConfig cfg = PlatformConfig::homogeneous(4);
  cfg.interconnect = PlatformConfig::Icn::kMesh;
  cfg.mesh.width = 2;
  cfg.mesh.height = 2;
  Platform p(std::move(cfg));
  EXPECT_NE(p.interconnect().describe().find("mesh"), std::string::npos);

  Platform q(PlatformConfig::homogeneous(4));
  EXPECT_NE(q.interconnect().describe().find("bus"), std::string::npos);
}

TEST(Platform, PeripheralsPresent) {
  Platform p(PlatformConfig::homogeneous(2));
  const auto periphs = p.peripherals();
  ASSERT_EQ(periphs.size(), 4u);
  EXPECT_EQ(periphs[0]->name(), "irqc");
  EXPECT_EQ(periphs[1]->name(), "timer");
  EXPECT_EQ(periphs[2]->name(), "dma");
  EXPECT_EQ(periphs[3]->name(), "hwsem");
}

Process writer_task(Platform& p, CoreId core, Addr addr, std::uint64_t v) {
  co_await p.core(core).compute(100, "write_task");
  p.memory().write_u64(core, addr, v);
}

TEST(Platform, EndToEndSmoke) {
  PlatformConfig cfg = PlatformConfig::homogeneous(2, ghz(1));
  cfg.trace_enabled = true;
  Platform p(std::move(cfg));
  const Addr shared = p.shared_base();
  spawn(p.kernel(), writer_task(p, CoreId{0}, shared, 111));
  spawn(p.kernel(), writer_task(p, CoreId{1}, shared + 8, 222));
  p.kernel().run();
  EXPECT_EQ(p.memory().read_u64(CoreId{0}, shared), 111u);
  EXPECT_EQ(p.memory().read_u64(CoreId{0}, shared + 8), 222u);
  EXPECT_FALSE(p.tracer().events().empty());
}

TEST(Platform, ScratchpadTooLargeRejected) {
  PlatformConfig cfg = PlatformConfig::homogeneous(1);
  cfg.cores[0].scratchpad_bytes = kScratchpadStride + 1;
  EXPECT_THROW(Platform{std::move(cfg)}, std::invalid_argument);
}

TEST(Platform, LocalityFlagPropagates) {
  PlatformConfig cfg = PlatformConfig::homogeneous(2);
  cfg.enforce_locality = true;
  Platform p(std::move(cfg));
  EXPECT_THROW(
      p.memory().write_u64(CoreId{1}, p.scratchpad_base(CoreId{0}), 1),
      std::runtime_error);
}

}  // namespace
}  // namespace rw::sim
