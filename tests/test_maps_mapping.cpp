#include <gtest/gtest.h>

#include "maps/concurrency.hpp"
#include "maps/mapping.hpp"
#include "maps/osip.hpp"
#include "maps/partition.hpp"
#include "maps/workloads.hpp"

namespace rw::maps {
namespace {

std::vector<PeDesc> homogeneous_pes(std::size_t n) {
  return std::vector<PeDesc>(n, PeDesc{sim::PeClass::kRisc, mhz(400)});
}

CommCost cheap_comm() { return simple_comm_cost(nanoseconds(100), 0.004); }

TEST(Heft, SingleTaskTrivial) {
  TaskGraph g;
  g.add_task("only", 1000);
  const auto m = heft_map(g, homogeneous_pes(4), cheap_comm());
  EXPECT_EQ(m.makespan, cycles_to_ps(1000, mhz(400)));
  EXPECT_EQ(m.slots.size(), 1u);
}

TEST(Heft, ForkJoinUsesMultiplePes) {
  TaskGraph g;
  const auto src = g.add_task("src", 100);
  const auto join = g.add_task("join", 100);
  for (int i = 0; i < 4; ++i) {
    const auto t = g.add_task("mid" + std::to_string(i), 10'000);
    g.add_edge(src, t, 64);
    g.add_edge(t, join, 64);
  }
  const auto m = heft_map(g, homogeneous_pes(4), cheap_comm());
  std::set<std::size_t> used(m.task_to_pe.begin(), m.task_to_pe.end());
  EXPECT_GE(used.size(), 3u);
  const auto seq = best_sequential_time(g, homogeneous_pes(4));
  EXPECT_GT(m.speedup_vs(seq), 2.0);
}

TEST(Heft, RespectsDependences) {
  const auto part = partition_program(jpeg_encoder_program(8), {4, 1.0});
  const auto m = heft_map(part.graph, homogeneous_pes(4), cheap_comm());
  // Every edge: consumer starts after producer finishes.
  std::vector<TimePs> start(part.graph.tasks().size()),
      finish(part.graph.tasks().size());
  for (const auto& s : m.slots) {
    start[s.task.index()] = s.start;
    finish[s.task.index()] = s.finish;
  }
  for (const auto& e : part.graph.edges())
    EXPECT_GE(start[e.dst.index()], finish[e.src.index()]);
}

TEST(Heft, PreferredPeHonoured) {
  TaskGraph g;
  const auto a = g.add_task("dsp_task", 1000);
  g.task(a).preferred_pe = sim::PeClass::kDsp;
  std::vector<PeDesc> pes{{sim::PeClass::kRisc, mhz(400)},
                          {sim::PeClass::kDsp, mhz(300)}};
  const auto m = heft_map(g, pes, cheap_comm());
  EXPECT_EQ(m.task_to_pe[0], 1u);
}

TEST(Heft, UnsatisfiablePreferenceFallsBack) {
  TaskGraph g;
  const auto a = g.add_task("t", 1000);
  g.task(a).preferred_pe = sim::PeClass::kAccel;
  const auto m = heft_map(g, homogeneous_pes(2), cheap_comm());
  EXPECT_LT(m.task_to_pe[0], 2u);  // mapped anyway
}

TEST(Heft, HeterogeneousPlacementUsesFastPe) {
  // A DSP-friendly task graph should land mostly on DSPs.
  auto g = h264_encoder_taskgraph(2);
  std::vector<PeDesc> pes{{sim::PeClass::kRisc, mhz(400)},
                          {sim::PeClass::kDsp, mhz(400)},
                          {sim::PeClass::kDsp, mhz(400)}};
  const auto m = heft_map(g, pes, cheap_comm());
  int on_dsp = 0;
  for (std::size_t t = 0; t < g.tasks().size(); ++t)
    if (pes[m.task_to_pe[t]].cls == sim::PeClass::kDsp) ++on_dsp;
  EXPECT_GT(on_dsp, static_cast<int>(g.tasks().size()) / 2);
}

TEST(Heft, MoreCoresNeverSlower) {
  const auto part = partition_program(jpeg_encoder_program(16), {8, 1.0});
  TimePs prev = UINT64_MAX;
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    const auto m = heft_map(part.graph, homogeneous_pes(n), cheap_comm());
    EXPECT_LE(m.makespan, prev + prev / 10);  // allow tiny heuristic noise
    prev = m.makespan;
  }
}

TEST(Anneal, NeverWorseThanHeft) {
  const auto part = partition_program(jpeg_encoder_program(8), {6, 1.0});
  std::vector<PeDesc> pes{{sim::PeClass::kRisc, mhz(400)},
                          {sim::PeClass::kRisc, mhz(400)},
                          {sim::PeClass::kDsp, mhz(300)}};
  const auto h = heft_map(part.graph, pes, cheap_comm());
  const auto a = anneal_map(part.graph, pes, cheap_comm(), 7, 800);
  EXPECT_LE(a.makespan, h.makespan);
}

TEST(Anneal, DeterministicForSeed) {
  const auto part = partition_program(jpeg_encoder_program(8), {6, 1.0});
  const auto pes = homogeneous_pes(3);
  const auto a = anneal_map(part.graph, pes, cheap_comm(), 11, 500);
  const auto b = anneal_map(part.graph, pes, cheap_comm(), 11, 500);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.task_to_pe, b.task_to_pe);
}

TEST(Dynamic, CompletesAllTasks) {
  const auto g = h264_encoder_taskgraph(3);
  const auto m = dynamic_schedule(g, homogeneous_pes(4), cheap_comm());
  EXPECT_EQ(m.slots.size(), g.tasks().size());
  EXPECT_GT(m.makespan, 0u);
}

TEST(Dynamic, RespectsDependences) {
  const auto g = h264_encoder_taskgraph(2);
  const auto m = dynamic_schedule(g, homogeneous_pes(3), cheap_comm());
  std::vector<TimePs> start(g.tasks().size()), finish(g.tasks().size());
  for (const auto& s : m.slots) {
    start[s.task.index()] = s.start;
    finish[s.task.index()] = s.finish;
  }
  for (const auto& e : g.edges())
    EXPECT_GE(start[e.dst.index()], finish[e.src.index()]);
}

TEST(Mapping, ExecuteOnPlatformMatchesEstimateShape) {
  const auto part = partition_program(jpeg_encoder_program(8), {4, 1.0});
  const auto pes = homogeneous_pes(4);
  const auto m = heft_map(part.graph, pes, cheap_comm());

  sim::Platform platform(sim::PlatformConfig::homogeneous(4, mhz(400)));
  const TimePs measured =
      execute_on_platform(part.graph, m.task_to_pe, platform);
  // The platform has real contention, so measured >= some fraction of the
  // estimate and not wildly larger.
  EXPECT_GT(measured, m.makespan / 2);
  EXPECT_LT(measured, m.makespan * 3);
}

TEST(Mapping, CyclicGraphRejected) {
  TaskGraph g;
  const auto a = g.add_task("a", 10);
  const auto b = g.add_task("b", 10);
  g.add_edge(a, b, 1);
  g.add_edge(b, a, 1);
  EXPECT_THROW(heft_map(g, homogeneous_pes(2), cheap_comm()),
               std::invalid_argument);
}

TEST(Concurrency, WorstCaseClique) {
  ConcurrencyGraph cg;
  const auto mp3 = cg.add_app("mp3", 0.2);
  const auto call = cg.add_app("call", 0.5);
  const auto video = cg.add_app("video", 0.9);
  const auto sync = cg.add_app("sync", 0.3);
  // mp3 can overlap call and sync; video overlaps sync only.
  cg.add_conflict(mp3, call);
  cg.add_conflict(mp3, sync);
  cg.add_conflict(video, sync);
  cg.add_conflict(call, sync);
  const auto wc = cg.worst_case_load();
  // Heaviest clique: {video, sync} = 1.2? vs {mp3, call, sync} = 1.0.
  EXPECT_NEAR(wc.load, 1.2, 1e-9);
  EXPECT_EQ(wc.clique.size(), 2u);
}

TEST(Concurrency, SingleAppWorstCase) {
  ConcurrencyGraph cg;
  cg.add_app("solo", 0.7);
  EXPECT_NEAR(cg.worst_case_load().load, 0.7, 1e-12);
  EXPECT_EQ(cg.cores_needed(0.5), 2u);
}

TEST(Concurrency, CompleteGraphSumsEverything) {
  ConcurrencyGraph cg;
  for (int i = 0; i < 5; ++i) cg.add_app("a" + std::to_string(i), 0.4);
  for (int i = 0; i < 5; ++i)
    for (int j = i + 1; j < 5; ++j) cg.add_conflict(i, j);
  EXPECT_NEAR(cg.worst_case_load().load, 2.0, 1e-9);
  EXPECT_EQ(cg.cores_needed(1.0), 2u);
}

TEST(Osip, LowerOverheadThanRisc) {
  const auto r = simulate_dispatch(1000, 5'000, 8, mhz(400),
                                   risc_dispatcher());
  const auto o = simulate_dispatch(1000, 5'000, 8, mhz(400),
                                   osip_dispatcher());
  EXPECT_LT(o.makespan, r.makespan);
  EXPECT_GT(o.pe_utilization, r.pe_utilization);
  EXPECT_LT(o.dispatch_overhead, r.dispatch_overhead);
}

TEST(Osip, FineGrainAmplifiesTheGap) {
  // The Sec. IV claim: OSIP "enable[s] higher PE utilization via more
  // fine-grained tasks".
  auto gap_at = [](Cycles grain) {
    const auto r = simulate_dispatch(2000, grain, 8, mhz(400),
                                     risc_dispatcher());
    const auto o = simulate_dispatch(2000, grain, 8, mhz(400),
                                     osip_dispatcher());
    return o.pe_utilization - r.pe_utilization;
  };
  EXPECT_GT(gap_at(500), gap_at(50'000));
  EXPECT_GT(gap_at(500), 0.3);  // the gap is dramatic at fine grain
}

TEST(Osip, CoarseGrainBothFine) {
  const auto r = simulate_dispatch(100, 1'000'000, 4, mhz(400),
                                   risc_dispatcher());
  EXPECT_GT(r.pe_utilization, 0.9);
}

TEST(Osip, EmptyInputs) {
  const auto r = simulate_dispatch(0, 1000, 4, mhz(400), risc_dispatcher());
  EXPECT_EQ(r.makespan, 0u);
  EXPECT_EQ(simulate_dispatch(10, 1000, 0, mhz(400), risc_dispatcher())
                .makespan,
            0u);
}

}  // namespace
}  // namespace rw::maps
