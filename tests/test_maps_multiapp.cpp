#include <gtest/gtest.h>

#include "maps/multiapp.hpp"
#include "maps/workloads.hpp"

namespace rw::maps {
namespace {

TaskGraph small_app(const std::string& name, Cycles work,
                    DurationPs period, sched::Criticality crit,
                    DurationPs deadline = 0) {
  TaskGraph g;
  g.name = name;
  const auto a = g.add_task(name + "_in", work / 4);
  const auto b = g.add_task(name + "_mid", work / 2);
  const auto c = g.add_task(name + "_out", work / 4);
  g.add_edge(a, b, 256);
  g.add_edge(b, c, 256);
  g.annotation.period = period;
  g.annotation.deadline = deadline;
  g.annotation.criticality = crit;
  return g;
}

MultiAppConfig four_pes() {
  MultiAppConfig cfg;
  cfg.pes.assign(4, PeDesc{sim::PeClass::kRisc, mhz(400)});
  cfg.comm = simple_comm_cost(nanoseconds(100), 0.004);
  return cfg;
}

TEST(MultiApp, SingleHardAppMeetsDeadlines) {
  // 100k cycles = 250us of work per 1ms period on 4 PEs: easy.
  const auto app = small_app("ctl", 100'000, milliseconds(1),
                             sched::Criticality::kHard);
  const auto r = simulate_multiapp({app}, four_pes());
  ASSERT_EQ(r.apps.size(), 1u);
  EXPECT_GT(r.apps[0].jobs_released, 10u);
  EXPECT_EQ(r.apps[0].jobs_completed, r.apps[0].jobs_released);
  EXPECT_EQ(r.apps[0].deadline_misses, 0u);
  EXPECT_GT(r.apps[0].worst_latency, 0u);
}

TEST(MultiApp, HardProtectedFromBestEffortLoad) {
  // A hard app plus an oversubscribing best-effort hog: the hard app must
  // keep meeting deadlines; the hog absorbs the overload.
  const auto hard = small_app("hard", 200'000, milliseconds(1),
                              sched::Criticality::kHard);
  const auto hog = small_app("hog", 3'200'000, milliseconds(2),
                             sched::Criticality::kBestEffort);
  const auto r = simulate_multiapp({hog, hard}, four_pes());
  const auto& hard_res = r.apps[1];
  const auto& hog_res = r.apps[0];
  EXPECT_EQ(hard_res.deadline_misses, 0u);
  EXPECT_GT(hog_res.deadline_misses, 0u);
  EXPECT_EQ(r.hard_misses(), 0u);
}

TEST(MultiApp, SoftOutranksBestEffort) {
  const auto soft = small_app("soft", 1'000'000, milliseconds(2),
                              sched::Criticality::kSoft);
  const auto be = small_app("be", 1'000'000, milliseconds(2),
                            sched::Criticality::kBestEffort);
  MultiAppConfig cfg;
  cfg.pes.assign(1, PeDesc{sim::PeClass::kRisc, mhz(400)});
  cfg.comm = simple_comm_cost(0, 0);
  const auto r = simulate_multiapp({be, soft}, cfg);
  // Together they oversubscribe the single PE (2x2.5ms per 2ms); the soft
  // app's latency must be strictly better than the best-effort one's.
  EXPECT_LT(r.apps[1].mean_latency, r.apps[0].mean_latency);
}

TEST(MultiApp, UtilizationReflectsLoad) {
  const auto app = small_app("a", 400'000, milliseconds(1),
                             sched::Criticality::kSoft);
  const auto r = simulate_multiapp({app}, four_pes());
  // 1ms of work per 1ms period over 4 PEs = 25% utilization.
  EXPECT_NEAR(r.pe_utilization, 0.25, 0.03);
}

TEST(MultiApp, HonoursExplicitHorizon) {
  auto cfg = four_pes();
  cfg.horizon = milliseconds(4);
  const auto app = small_app("a", 10'000, milliseconds(1),
                             sched::Criticality::kSoft);
  const auto r = simulate_multiapp({app}, cfg);
  EXPECT_EQ(r.apps[0].jobs_released, 4u);
}

TEST(MultiApp, RejectsUnannotatedApp) {
  TaskGraph g;
  g.add_task("t", 100);
  EXPECT_THROW(simulate_multiapp({g}, four_pes()),
               std::invalid_argument);
}

TEST(MultiApp, PreferredPeRespected) {
  TaskGraph g = small_app("dspapp", 400'000, milliseconds(1),
                          sched::Criticality::kSoft);
  for (auto& t : g.tasks()) t.preferred_pe = sim::PeClass::kDsp;
  MultiAppConfig cfg;
  cfg.pes = {PeDesc{sim::PeClass::kRisc, mhz(400)},
             PeDesc{sim::PeClass::kDsp, mhz(300)}};
  cfg.comm = simple_comm_cost(0, 0);
  const auto r = simulate_multiapp({g}, cfg);
  // Every job completed despite only one allowed PE.
  EXPECT_EQ(r.apps[0].jobs_completed, r.apps[0].jobs_released);
}

TEST(MultiApp, WirelessTerminalScenario) {
  // The paper's motivating mix: a hard radio stack, a soft codec, and a
  // best-effort UI sharing one heterogeneous terminal.
  const auto radio = small_app("radio", 300'000, milliseconds(1),
                               sched::Criticality::kHard);
  auto codec = h264_encoder_taskgraph(2);
  codec.annotation.period = milliseconds(12);
  codec.annotation.criticality = sched::Criticality::kSoft;
  const auto ui = small_app("ui", 2'000'000, milliseconds(16),
                            sched::Criticality::kBestEffort);

  MultiAppConfig cfg;
  cfg.pes = {PeDesc{sim::PeClass::kRisc, mhz(400)},
             PeDesc{sim::PeClass::kRisc, mhz(400)},
             PeDesc{sim::PeClass::kDsp, mhz(300)},
             PeDesc{sim::PeClass::kDsp, mhz(300)}};
  cfg.comm = simple_comm_cost(nanoseconds(150), 0.004);
  cfg.horizon = milliseconds(96);

  const auto r = simulate_multiapp({radio, codec, ui}, cfg);
  EXPECT_EQ(r.hard_misses(), 0u);
  for (const auto& a : r.apps)
    EXPECT_EQ(a.jobs_completed, a.jobs_released) << a.name;
  EXPECT_GT(r.pe_utilization, 0.1);
  EXPECT_LE(r.pe_utilization, 1.0);
}

TEST(MultiApp, Deterministic) {
  const auto a = small_app("a", 500'000, milliseconds(1),
                           sched::Criticality::kSoft);
  const auto b = small_app("b", 700'000, milliseconds(3),
                           sched::Criticality::kHard);
  const auto r1 = simulate_multiapp({a, b}, four_pes());
  const auto r2 = simulate_multiapp({a, b}, four_pes());
  for (std::size_t i = 0; i < r1.apps.size(); ++i) {
    EXPECT_EQ(r1.apps[i].worst_latency, r2.apps[i].worst_latency);
    EXPECT_EQ(r1.apps[i].deadline_misses, r2.apps[i].deadline_misses);
  }
}

}  // namespace
}  // namespace rw::maps
