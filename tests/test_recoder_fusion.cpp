#include <gtest/gtest.h>

#include "recoder/recoder.hpp"

namespace rw::recoder {
namespace {

RecoderSession open_src(const char* src) {
  auto s = RecoderSession::from_source(src);
  EXPECT_TRUE(s.ok()) << s.error().to_string();
  return std::move(s).take();
}

TEST(FuseLoops, MergesProducerConsumer) {
  auto s = open_src(R"(
    int a[8];
    int b[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) { a[i] = i * 3; }
      for (int j = 0; j < 8; j = j + 1) { b[j] = a[j] + 1; }
      int r = 0;
      for (int i = 0; i < 8; i = i + 1) { r = r + b[i]; }
      return r;
    })");
  const auto ref = s.execute();
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(s.cmd_fuse_loops("main", 0).ok()) << s.source();
  const auto after = s.execute();
  ASSERT_TRUE(after.ok()) << after.error().to_string() << s.source();
  EXPECT_EQ(after.value().return_value, ref.value().return_value);
  // One loop fewer; the second body got the first loop's variable.
  std::size_t count = 0, pos = 0;
  while ((pos = s.source().find("for (", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(s.source().find("b[i] = a[i] + 1"), std::string::npos);
}

TEST(FuseLoops, InverseOfDistribute) {
  const char* src = R"(
    int a[8];
    int b[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) {
        a[i] = i * 2;
        b[i] = a[i] + 5;
      }
      return b[7];
    })";
  auto s = open_src(src);
  const auto ref = s.execute();
  ASSERT_TRUE(s.cmd_distribute_loop("main", 0).ok()) << s.source();
  ASSERT_TRUE(s.cmd_fuse_loops("main", 0).ok()) << s.source();
  const auto after = s.execute();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().return_value, ref.value().return_value);
}

TEST(FuseLoops, RefusesDifferentRanges) {
  auto s = open_src(R"(
    int a[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) { a[i] = i; }
      for (int i = 0; i < 4; i = i + 1) { a[i] = a[i] + 1; }
      return a[0];
    })");
  EXPECT_FALSE(s.cmd_fuse_loops("main", 0).ok());
}

TEST(FuseLoops, RefusesNonAdjacentLoops) {
  auto s = open_src(R"(
    int a[4];
    int main() {
      for (int i = 0; i < 4; i = i + 1) { a[i] = i; }
      a[0] = 9;
      for (int i = 0; i < 4; i = i + 1) { a[i] = a[i] + 1; }
      return a[0];
    })");
  EXPECT_FALSE(s.cmd_fuse_loops("main", 0).ok());
}

TEST(FuseLoops, RefusesUndisciplinedIndex) {
  // Loop 2 reads a[i+1]-style: fusion would read a slot the (fused) first
  // half has not produced yet.
  auto s = open_src(R"(
    int a[9];
    int b[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) { a[i + 1] = i; }
      for (int i = 0; i < 8; i = i + 1) { b[i] = a[i + 1]; }
      return b[7];
    })");
  EXPECT_FALSE(s.cmd_fuse_loops("main", 0).ok());
}

TEST(FuseLoops, RefusesCollidingLocals) {
  auto s = open_src(R"(
    int a[4];
    int b[4];
    int main() {
      for (int i = 0; i < 4; i = i + 1) { int t = i; a[i] = t; }
      for (int i = 0; i < 4; i = i + 1) { int t = 2; b[i] = a[i] * t; }
      return b[3];
    })");
  EXPECT_FALSE(s.cmd_fuse_loops("main", 0).ok());
}

TEST(FuseLoops, ReadOnlySharedScalarIsFine) {
  auto s = open_src(R"(
    int a[4];
    int b[4];
    int main() {
      int k = 5;
      for (int i = 0; i < 4; i = i + 1) { a[i] = i * k; }
      for (int i = 0; i < 4; i = i + 1) { b[i] = a[i] + k; }
      return b[3];
    })");
  const auto ref = s.execute();
  ASSERT_TRUE(s.cmd_fuse_loops("main", 0).ok()) << s.source();
  EXPECT_EQ(s.execute().value().return_value, ref.value().return_value);
}

TEST(FuseLoops, RefusesOutOfRangeIndex) {
  auto s = open_src("int main() { return 0; }");
  EXPECT_FALSE(s.cmd_fuse_loops("main", 0).ok());
}

}  // namespace
}  // namespace rw::recoder
