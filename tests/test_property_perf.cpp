// Property sweeps for the static performance contracts (ISSUE 7):
// randomly generated consistent CSDF graphs and randomly mapped task
// graphs on random platform configs must respect the conservativeness
// contract that the hand-built corpus tests check pointwise —
//
//   * the guaranteed period is schedulable and >= the measured minimal
//     sustainable period,
//   * the static buffer capacities run deadlock-free dynamically,
//   * the static makespan bound dominates the list-scheduler estimate
//     and the contended platform replay, for bus and mesh fabrics.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/throughput.hpp"
#include "lint/perf_contract.hpp"
#include "maps/mapping.hpp"
#include "maps/perf_bounds.hpp"
#include "maps/taskgraph.hpp"
#include "sim/platform.hpp"

namespace rw::lint {
namespace {

/// Random *consistent* CSDF chain with an optional token-primed back
/// edge. Per-actor cycle counts q are drawn first and the edge rates are
/// derived from them (prod = q_dst/g, cons = q_src/g, g = gcd), so the
/// balance equations hold by construction and rv.cycles == q. Source and
/// sink keep q = 1, satisfying the static scheduler's boundary condition.
dataflow::Graph random_csdf(Rng& rng, std::vector<std::uint64_t>& q_out) {
  const std::size_t n = 4 + rng.next_below(3);  // 4..6 actors
  std::vector<std::uint64_t> q(n, 1);
  for (std::size_t i = 1; i + 1 < n; ++i) q[i] = 1 + rng.next_below(3);

  dataflow::Graph g;
  std::vector<dataflow::ActorId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    ids.push_back(g.add_actor("a" + std::to_string(i),
                              100 + rng.next_below(1900),
                              rng.next_below(3)));
  auto rates = [&q](std::size_t src, std::size_t dst) {
    const std::uint64_t gg = std::gcd(q[src], q[dst]);
    return std::pair<std::uint32_t, std::uint32_t>{
        static_cast<std::uint32_t>(q[dst] / gg),
        static_cast<std::uint32_t>(q[src] / gg)};
  };
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto [prod, cons] = rates(i, i + 1);
    g.connect(ids[i], ids[i + 1], prod, cons);
  }
  // Back edge j -> i primed with one iteration's consumption: the
  // consumer completes a full iteration before needing any production,
  // so the cycle cannot deadlock.
  if (rng.next_bool(0.6)) {
    const std::size_t i = 1 + rng.next_below(n - 3);
    const std::size_t j = i + 1 + rng.next_below(n - 2 - i);
    const auto [prod, cons] = rates(j, i);
    g.connect(ids[j], ids[i], prod, cons,
              static_cast<std::uint32_t>(q[i] * cons));
  }
  q_out = q;
  return g;
}

/// Random mapped task DAG (forward edges only) plus a random platform:
/// 2..4 homogeneous cores behind a shared bus or a 2x2 mesh.
struct RandomMapped {
  maps::TaskGraph graph;
  std::vector<std::size_t> task_to_pe;
  sim::PlatformConfig platform;
};

RandomMapped random_mapped(Rng& rng) {
  RandomMapped m;
  m.graph.name = "prop";
  const std::size_t n = 4 + rng.next_below(5);  // 4..8 tasks
  std::vector<maps::TaskNodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    ids.push_back(m.graph.add_task("t" + std::to_string(i),
                                   500 + rng.next_below(19'500)));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (j == i + 1 || rng.next_bool(0.35))
        m.graph.add_edge(ids[i], ids[j], 64 + rng.next_below(4'032));

  const std::size_t cores = 2 + rng.next_below(3);  // 2..4
  m.platform = sim::PlatformConfig::homogeneous(cores);
  if (rng.next_bool(0.5)) {
    m.platform.interconnect = sim::PlatformConfig::Icn::kMesh;
    m.platform.mesh.width = 2;
    m.platform.mesh.height = 2;
  }
  m.task_to_pe.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    m.task_to_pe[i] = rng.next_below(cores);
  return m;
}

class PerfProperty : public ::testing::TestWithParam<int> {};

TEST_P(PerfProperty, PeriodBoundIsSchedulableAndConservative) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6'700'417 + 5);
  std::vector<std::uint64_t> q;
  const dataflow::Graph g = random_csdf(rng, q);

  const auto rv = g.repetition_vector();
  ASSERT_TRUE(rv.ok()) << rv.error().to_string();
  for (std::size_t i = 0; i < q.size(); ++i)
    EXPECT_EQ(rv.value().cycles[i], q[i]) << "actor " << i;

  dataflow::ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = 1 + rng.next_below(3);
  const DurationPs w = guaranteed_period(g, cfg.frequency);
  ASSERT_GT(w, 0u);

  // The guarantee half: W is accepted by the static scheduler.
  cfg.source_period = w;
  EXPECT_TRUE(dataflow::compute_static_schedule(g, cfg).ok())
      << "seed " << GetParam() << ": period " << w << " ps infeasible";

  // The conservativeness half: no measured period beats the bound's
  // direction — the true minimum is never above W.
  const DurationPs measured = dataflow::min_sustainable_period(g, cfg);
  if (measured > 0) {
    EXPECT_LE(measured, w) << "seed " << GetParam();
  }
}

TEST_P(PerfProperty, StaticCapacitiesRunDeadlockFreeDynamically) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 179'424'673 + 13);
  std::vector<std::uint64_t> q;
  const dataflow::Graph g = random_csdf(rng, q);

  const auto caps = deadlock_free_capacities(g);
  ASSERT_EQ(caps.size(), g.edges().size()) << "seed " << GetParam();
  for (const std::size_t c : caps) EXPECT_GT(c, 0u);

  const auto rv = g.repetition_vector();
  ASSERT_TRUE(rv.ok());
  std::uint64_t iteration = 0;
  for (const std::uint64_t f : rv.value().firings) iteration += f;

  dataflow::ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = 1 + rng.next_below(3);
  cfg.source_period = guaranteed_period(g, cfg.frequency);
  ASSERT_GT(cfg.source_period, 0u);
  cfg.buffer_capacities = caps;
  cfg.iterations = 6;
  const auto r = dataflow::run_data_driven(g, cfg);
  EXPECT_GE(r.firings, iteration)
      << "seed " << GetParam() << ": wedged under the static capacities";
  EXPECT_EQ(r.internal_corruptions(), 0u) << "seed " << GetParam();
}

TEST_P(PerfProperty, MakespanBoundDominatesEstimateAndReplay) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2'147'483'629 + 3);
  RandomMapped m = random_mapped(rng);
  ASSERT_TRUE(m.graph.is_acyclic());

  const auto pes = maps::pes_from_platform(m.platform);
  const auto comm = maps::comm_cost_from_platform(m.platform);
  const auto b =
      maps::static_makespan_bound(m.graph, pes, comm, m.task_to_pe);
  EXPECT_EQ(b.bound, b.work + b.comm);
  EXPECT_LE(b.critical_path, b.bound);

  const TimePs estimate =
      maps::evaluate_mapping(m.graph, pes, comm, m.task_to_pe);
  EXPECT_LE(estimate, b.bound) << "seed " << GetParam();

  const auto mr = maps::heft_map(m.graph, pes, comm);
  const auto hb =
      maps::static_makespan_bound(m.graph, pes, comm, mr.task_to_pe);
  EXPECT_LE(mr.makespan, hb.bound) << "seed " << GetParam();

  sim::Platform platform(std::move(m.platform));
  const TimePs measured =
      maps::execute_on_platform(m.graph, m.task_to_pe, platform);
  EXPECT_LE(measured, b.bound)
      << "seed " << GetParam()
      << ": simulated makespan exceeds the static bound ("
      << platform.interconnect().describe() << ")";
}

TEST_P(PerfProperty, AnyGangBoundDominatesRandomAssignments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15'485'863 + 7);
  RandomMapped m = random_mapped(rng);

  const maps::PeDesc pe{};
  const auto comm = maps::simple_comm_cost(nanoseconds(50), 0.01);
  const auto any = maps::static_makespan_bound_any_gang(m.graph, pe, comm);
  for (const std::size_t gang : {1u, 2u, 3u, 8u}) {
    const std::vector<maps::PeDesc> pes(gang, pe);
    std::vector<std::size_t> assign(m.graph.tasks().size());
    for (auto& a : assign) a = rng.next_below(gang);
    const auto fixed =
        maps::static_makespan_bound(m.graph, pes, comm, assign);
    EXPECT_LE(fixed.bound, any.bound)
        << "seed " << GetParam() << " gang=" << gang;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PerfProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace rw::lint
