#include <gtest/gtest.h>

#include <string>

#include "common/result.hpp"

namespace rw {
namespace {

Result<int> parse_positive(int v) {
  if (v <= 0) return make_error("not positive", 3, 7);
  return v;
}

TEST(Result, MapTransformsValueAndPropagatesError) {
  const auto doubled = parse_positive(21).map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 42);

  const auto failed = parse_positive(-1).map([](int v) { return v * 2; });
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().message, "not positive");
  EXPECT_EQ(failed.error().line, 3);
}

TEST(Result, MapCanChangeType) {
  const auto text = parse_positive(5).map(
      [](int v) { return std::to_string(v) + "!"; });
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "5!");
}

TEST(Result, AndThenChainsFallibleSteps) {
  const auto ok = parse_positive(4).and_then(
      [](int v) { return parse_positive(v - 3); });
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 1);

  // Second step fails; its error surfaces.
  const auto second_fails = parse_positive(4).and_then(
      [](int v) { return parse_positive(v - 10); });
  ASSERT_FALSE(second_fails.ok());

  // First step fails; lambda must not run.
  bool ran = false;
  const auto first_fails = parse_positive(-2).and_then(
      [&ran](int v) {
        ran = true;
        return parse_positive(v);
      });
  EXPECT_FALSE(first_fails.ok());
  EXPECT_FALSE(ran);
}

TEST(Result, ErrorOr) {
  EXPECT_EQ(parse_positive(1).error_or(make_error("fallback")).message,
            "fallback");
  EXPECT_EQ(parse_positive(0).error_or(make_error("fallback")).message,
            "not positive");

  Status good;
  EXPECT_EQ(good.error_or(make_error("fb")).message, "fb");
  Status bad{make_error("broken")};
  EXPECT_EQ(bad.error_or(make_error("fb")).message, "broken");
}

Result<int> try_sum(int a, int b) {
  const int av = RW_TRY(parse_positive(a));
  const int bv = RW_TRY(parse_positive(b));
  return av + bv;
}

Status try_check(int v) {
  RW_TRY_STATUS(parse_positive(v));
  return Status::ok_status();
}

TEST(Result, RwTryUnwrapsOrEarlyReturns) {
  const auto ok = try_sum(2, 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);

  const auto fail = try_sum(2, -3);
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.error().message, "not positive");

  EXPECT_TRUE(try_check(1).ok());
  EXPECT_FALSE(try_check(-1).ok());
  EXPECT_EQ(try_check(-1).error().column, 7);
}

}  // namespace
}  // namespace rw
