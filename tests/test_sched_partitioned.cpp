#include <gtest/gtest.h>

#include "sched/partitioned.hpp"
#include "sched/uniproc.hpp"

namespace rw::sched {
namespace {

RtTask make_task(const std::string& name, Cycles wcet, DurationPs period) {
  RtTask t;
  t.name = name;
  t.wcet = wcet;
  t.period = period;
  return t;
}

/// n identical tasks of utilization u each (at 100 MHz).
std::vector<RtTask> uniform_tasks(int n, double u,
                                  DurationPs period = milliseconds(10)) {
  std::vector<RtTask> out;
  for (int i = 0; i < n; ++i) {
    const auto wcet = static_cast<Cycles>(
        u * static_cast<double>(period) / 1e12 * mhz(100));
    out.push_back(make_task("t" + std::to_string(i), wcet, period));
  }
  return out;
}

TEST(Partitioned, TrivialFit) {
  const auto r = partition_tasks(uniform_tasks(4, 0.2), 1, mhz(100),
                                 PackingHeuristic::kFirstFit);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cores_used, 1u);
  EXPECT_NEAR(r.max_core_utilization, 0.8, 0.01);
}

TEST(Partitioned, SpillsAcrossCores) {
  // 6 tasks of U=0.4: 2.4 total -> needs >= 3 cores under EDF.
  const auto tasks = uniform_tasks(6, 0.4);
  EXPECT_FALSE(partition_tasks(tasks, 2, mhz(100),
                               PackingHeuristic::kFirstFit)
                   .feasible);
  const auto r3 = partition_tasks(tasks, 3, mhz(100),
                                  PackingHeuristic::kFirstFit);
  EXPECT_TRUE(r3.feasible);
  EXPECT_EQ(r3.cores_used, 3u);
}

TEST(Partitioned, UnplacedTasksReported) {
  const auto tasks = uniform_tasks(5, 0.6);
  const auto r = partition_tasks(tasks, 2, mhz(100),
                                 PackingHeuristic::kFirstFit);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.unplaced.size(), 3u);  // one 0.6 task per core, three left
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const bool placed = r.task_to_core[i] >= 0;
    const bool listed =
        std::find(r.unplaced.begin(), r.unplaced.end(), i) !=
        r.unplaced.end();
    EXPECT_NE(placed, listed);
  }
}

TEST(Partitioned, WorstFitBalances) {
  const auto tasks = uniform_tasks(4, 0.3);
  const auto wf = partition_tasks(tasks, 4, mhz(100),
                                  PackingHeuristic::kWorstFit);
  ASSERT_TRUE(wf.feasible);
  // Worst-fit spreads: every core holds exactly one task.
  EXPECT_EQ(wf.cores_used, 4u);
  EXPECT_NEAR(wf.max_core_utilization, 0.3, 0.01);
  // First-fit packs: everything on core 0 (0.9 <= 1 for EDF... 4*0.3=1.2
  // so 3 on core 0, 1 on core 1).
  const auto ff = partition_tasks(tasks, 4, mhz(100),
                                  PackingHeuristic::kFirstFit);
  ASSERT_TRUE(ff.feasible);
  EXPECT_LE(ff.cores_used, 2u);
}

TEST(Partitioned, FirstFitDecreasingHandlesMixedSizes) {
  // Classic bin-packing trap: big items last defeats plain first-fit.
  std::vector<RtTask> tasks;
  for (int i = 0; i < 3; ++i)
    tasks.push_back(make_task("small" + std::to_string(i),
                              350'000, milliseconds(10)));  // U=0.35
  for (int i = 0; i < 3; ++i)
    tasks.push_back(make_task("big" + std::to_string(i),
                              650'000, milliseconds(10)));  // U=0.65
  // FFD pairs each big with a small: 3 cores suffice.
  const auto ffd = partition_tasks(tasks, 3, mhz(100),
                                   PackingHeuristic::kFirstFitDecreasing);
  EXPECT_TRUE(ffd.feasible);
  // Plain first-fit packs smalls together (1.05 > 1 -> 2+1 split), then
  // bigs each need their own core: needs 4.
  const auto ff = partition_tasks(tasks, 3, mhz(100),
                                  PackingHeuristic::kFirstFit);
  EXPECT_FALSE(ff.feasible);
}

TEST(Partitioned, RtaTestStricterThanEdf) {
  // U=0.9 on one core: fine for EDF, infeasible for fixed-priority RM/DM
  // with these periods (two tasks, U > RM bound, critical instant fails).
  std::vector<RtTask> tasks{make_task("a", 500'000, milliseconds(10)),
                            make_task("b", 800'000, milliseconds(20))};
  EXPECT_TRUE(partition_tasks(tasks, 1, mhz(100),
                              PackingHeuristic::kFirstFit,
                              PerCoreTest::kEdfDensity)
                  .feasible);
  // Under RTA the set is actually schedulable (RTA is exact, not the
  // utilization bound), so verify agreement with simulation instead.
  const auto rta = partition_tasks(tasks, 1, mhz(100),
                                   PackingHeuristic::kFirstFit,
                                   PerCoreTest::kResponseTime);
  if (rta.feasible) {
    TaskSet ts = rta.per_core[0];
    assign_dm_priorities(ts);
    const auto sim = simulate_uniproc(ts, milliseconds(200),
                                      {Policy::kFixedPriority});
    EXPECT_EQ(sim.total_misses(), 0u);
  }
}

TEST(Partitioned, PlacedCoresSimulateClean) {
  // Soundness: every core the partitioner fills must simulate without
  // misses under EDF.
  const auto tasks = uniform_tasks(7, 0.28, milliseconds(8));
  const auto r = partition_tasks(tasks, 3, mhz(100),
                                 PackingHeuristic::kBestFit);
  ASSERT_TRUE(r.feasible);
  for (const auto& core_set : r.per_core) {
    if (core_set.tasks.empty()) continue;
    const auto sim =
        simulate_uniproc(core_set, milliseconds(160), {Policy::kEdf});
    EXPECT_EQ(sim.total_misses(), 0u);
  }
}

TEST(Partitioned, MinCoresNeeded) {
  const auto tasks = uniform_tasks(6, 0.4);
  const auto n = min_cores_needed(tasks, mhz(100),
                                  PackingHeuristic::kFirstFitDecreasing);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 3u);

  // An impossible single task (U > 1) can never be placed.
  const auto impossible = min_cores_needed(
      {make_task("x", 20'000'000, milliseconds(10))}, mhz(100),
      PackingHeuristic::kFirstFit, 8);
  EXPECT_FALSE(impossible.has_value());
}

TEST(Partitioned, PackingNames) {
  EXPECT_STREQ(packing_name(PackingHeuristic::kBestFit), "best-fit");
  EXPECT_STREQ(packing_name(PackingHeuristic::kFirstFitDecreasing),
               "first-fit-decr");
}

}  // namespace
}  // namespace rw::sched
