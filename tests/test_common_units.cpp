#include "common/units.hpp"

#include <gtest/gtest.h>

namespace rw {
namespace {

TEST(Units, CyclesToPsExactAtRoundFrequencies) {
  // 1 GHz -> 1000 ps per cycle.
  EXPECT_EQ(cycles_to_ps(1, ghz(1)), 1000u);
  EXPECT_EQ(cycles_to_ps(1000, ghz(1)), 1'000'000u);
  // 500 MHz -> 2000 ps per cycle.
  EXPECT_EQ(cycles_to_ps(3, mhz(500)), 6000u);
}

TEST(Units, CyclesToPsRoundsUp) {
  // 3 Hz: period is 333333333333.33 ps; 1 cycle must round up.
  EXPECT_EQ(cycles_to_ps(1, 3), 333'333'333'334u);
  // and 3 cycles are exactly one second.
  EXPECT_EQ(cycles_to_ps(3, 3), kPsPerSecond);
}

TEST(Units, CyclesToPsZeroFrequencyIsZero) {
  EXPECT_EQ(cycles_to_ps(100, 0), 0u);
}

TEST(Units, PsToCyclesInverse) {
  const HertzT f = mhz(400);
  for (Cycles c : {1ULL, 7ULL, 1000ULL, 123456ULL}) {
    const DurationPs d = cycles_to_ps(c, f);
    EXPECT_GE(ps_to_cycles(d, f), c);  // round-up then floor >= original
    EXPECT_LE(ps_to_cycles(d, f), c + 1);
  }
}

TEST(Units, HigherFrequencyIsFaster) {
  EXPECT_LT(cycles_to_ps(1000, ghz(2)), cycles_to_ps(1000, ghz(1)));
  EXPECT_LT(cycles_to_ps(1000, ghz(1)), cycles_to_ps(1000, mhz(100)));
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(500), "500ps");
  EXPECT_EQ(format_time(1'500), "1.500ns");
  EXPECT_EQ(format_time(2'000'000), "2.000us");
  EXPECT_EQ(format_time(3'500'000'000ULL), "3.500ms");
  EXPECT_EQ(format_time(kPsPerSecond), "1.000s");
}

TEST(Units, FormatHz) {
  EXPECT_EQ(format_hz(mhz(400)), "400MHz");
  EXPECT_EQ(format_hz(ghz(1)), "1GHz");
  EXPECT_EQ(format_hz(999), "999Hz");
}

TEST(Units, HelperScales) {
  EXPECT_EQ(milliseconds(1), 1'000'000'000ULL);
  EXPECT_EQ(microseconds(1), 1'000'000ULL);
  EXPECT_EQ(nanoseconds(1), 1'000ULL);
  EXPECT_EQ(mhz(1), 1'000'000ULL);
  EXPECT_EQ(ghz(1), 1'000'000'000ULL);
}

}  // namespace
}  // namespace rw
