#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace rw {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t\na b\r\n"), "a b");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto v = split("a,,b,", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[2], "b");
  EXPECT_EQ(v[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto v = split("abc", ',');
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "abc");
}

TEST(Strings, SplitWsDropsEmpties) {
  const auto v = split_ws("  a\t b \n c ");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "c");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("hello", "hello!"));
  EXPECT_TRUE(ends_with("hello", "lo"));
  EXPECT_FALSE(ends_with("lo", "hello"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("abc", "x", "y"), "abc");
  EXPECT_EQ(replace_all("ab", "", "y"), "ab");
  // Replacement containing the needle must not loop forever.
  EXPECT_EQ(replace_all("a", "a", "aa"), "aa");
}

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strformat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Strings, ParseU64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("123", v));
  EXPECT_EQ(v, 123u);
  EXPECT_TRUE(parse_u64("  99 ", v));
  EXPECT_EQ(v, 99u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));  // UINT64_MAX
  EXPECT_FALSE(parse_u64("18446744073709551616", v)); // overflow
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("12x", v));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("3.5", v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(parse_double("-2e3", v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("1.5abc", v));
}

}  // namespace
}  // namespace rw
