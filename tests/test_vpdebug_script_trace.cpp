#include <gtest/gtest.h>

#include "sim/process.hpp"
#include "vpdebug/script.hpp"

namespace rw::vpdebug {
namespace {

sim::Process worker(sim::Platform& p, std::size_t core, const char* label) {
  for (int i = 0; i < 3; ++i) {
    co_await p.core(core).compute(4'000, label);
    co_await sim::delay(p.kernel(), microseconds(2));
  }
}

class ScriptTraceTest : public ::testing::Test {
 protected:
  ScriptTraceTest() {
    auto cfg = sim::PlatformConfig::homogeneous(2, mhz(400));
    cfg.trace_enabled = true;
    platform = std::make_unique<sim::Platform>(std::move(cfg));
    dbg = std::make_unique<Debugger>(*platform);
    script = std::make_unique<ScriptEngine>(*dbg);
  }
  std::unique_ptr<sim::Platform> platform;
  std::unique_ptr<Debugger> dbg;
  std::unique_ptr<ScriptEngine> script;
};

TEST_F(ScriptTraceTest, HistoryCommandListsBlocks) {
  sim::spawn(platform->kernel(), worker(*platform, 0, "decode"));
  ASSERT_TRUE(script->execute_script("run\nhistory 0").ok());
  const auto& t = script->transcript();
  EXPECT_NE(t.find("core0 executed 3 blocks"), std::string::npos);
  EXPECT_NE(t.find("decode"), std::string::npos);
}

TEST_F(ScriptTraceTest, GanttCommandRendersTimeline) {
  sim::spawn(platform->kernel(), worker(*platform, 0, "tx"));
  sim::spawn(platform->kernel(), worker(*platform, 1, "rx"));
  ASSERT_TRUE(script->execute_script("run\ngantt 32").ok());
  const auto& t = script->transcript();
  EXPECT_NE(t.find("core0"), std::string::npos);
  EXPECT_NE(t.find("core1"), std::string::npos);
  EXPECT_NE(t.find("legend:"), std::string::npos);
  EXPECT_NE(t.find("tx"), std::string::npos);
  EXPECT_NE(t.find("rx"), std::string::npos);
}

TEST_F(ScriptTraceTest, BadArgumentsRejected) {
  EXPECT_FALSE(script->execute_line("history").ok());
  EXPECT_FALSE(script->execute_line("history abc").ok());
  EXPECT_FALSE(script->execute_line("gantt zero").ok());
}

}  // namespace
}  // namespace rw::vpdebug
