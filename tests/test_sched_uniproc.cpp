#include "sched/uniproc.hpp"

#include <gtest/gtest.h>

#include "sched/analysis.hpp"

namespace rw::sched {
namespace {

TaskSet buttazzo_set() {
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("t1", 100'000, milliseconds(4));   // 1ms / 4ms
  ts.add("t2", 200'000, milliseconds(6));   // 2ms / 6ms
  ts.add("t3", 300'000, milliseconds(12));  // 3ms / 12ms
  return ts;
}

TEST(Uniproc, RmMeetsAllDeadlinesOnFeasibleSet) {
  const auto res = simulate_uniproc(buttazzo_set(), milliseconds(120),
                                    {Policy::kRateMonotonic});
  EXPECT_EQ(res.total_misses(), 0u);
  EXPECT_EQ(res.tasks[0].released, 30u);
  EXPECT_EQ(res.tasks[0].completed, 30u);
  EXPECT_EQ(res.tasks[1].released, 20u);
  EXPECT_EQ(res.tasks[2].released, 10u);
}

TEST(Uniproc, SimulatedWorstResponseMatchesAnalysis) {
  // Soundness cross-check: simulated worst response <= analytic bound,
  // and for the critical-instant release pattern (all at t=0) the first
  // job should hit the analytic value exactly.
  TaskSet ts = buttazzo_set();
  assign_rm_priorities(ts);
  const auto rta = response_time_analysis(ts);
  const auto res = simulate_uniproc(ts, milliseconds(120),
                                    {Policy::kFixedPriority});
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    ASSERT_TRUE(rta.per_task[i].has_value());
    EXPECT_LE(res.tasks[i].worst_response, *rta.per_task[i]);
  }
  // t3's critical instant: exactly the analytic 10 ms.
  EXPECT_EQ(res.tasks[2].worst_response, milliseconds(10));
}

TEST(Uniproc, OverloadedSetMissesUnderRm) {
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("a", 300'000, milliseconds(4));
  ts.add("b", 300'000, milliseconds(6));  // U = 1.25
  const auto res =
      simulate_uniproc(ts, milliseconds(60), {Policy::kRateMonotonic});
  EXPECT_GT(res.total_misses(), 0u);
  // The lower-priority task absorbs the misses under RM.
  EXPECT_EQ(res.tasks[0].deadline_misses, 0u);
  EXPECT_GT(res.tasks[1].deadline_misses, 0u);
}

TEST(Uniproc, EdfSchedulesFullUtilization) {
  // U = 1.0 exactly: EDF schedules it, RM cannot.
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("a", 200'000, milliseconds(4));   // 0.5
  ts.add("b", 300'000, milliseconds(6));   // 0.5
  const auto edf = simulate_uniproc(ts, milliseconds(120), {Policy::kEdf});
  EXPECT_EQ(edf.total_misses(), 0u);
  const auto rm =
      simulate_uniproc(ts, milliseconds(120), {Policy::kRateMonotonic});
  EXPECT_GT(rm.total_misses(), 0u);
}

TEST(Uniproc, UtilizationMatchesLoad) {
  const auto res = simulate_uniproc(buttazzo_set(), milliseconds(120),
                                    {Policy::kRateMonotonic});
  // U = 0.25 + 1/3 + 0.25 = 0.8333
  EXPECT_NEAR(res.utilization(), 0.8333, 0.01);
}

TEST(Uniproc, ContextSwitchOverheadIncreasesResponse) {
  UniprocConfig no_ovh{Policy::kRateMonotonic, 0};
  UniprocConfig ovh{Policy::kRateMonotonic, 50'000};  // 0.5ms per switch
  const auto a = simulate_uniproc(buttazzo_set(), milliseconds(120), no_ovh);
  const auto b = simulate_uniproc(buttazzo_set(), milliseconds(120), ovh);
  EXPECT_GT(b.tasks[2].worst_response, a.tasks[2].worst_response);
  EXPECT_GT(b.busy_time, a.busy_time);
}

TEST(Uniproc, PreemptionsCounted) {
  const auto res = simulate_uniproc(buttazzo_set(), milliseconds(120),
                                    {Policy::kRateMonotonic});
  EXPECT_GT(res.preemptions, 0u);
  EXPECT_GT(res.context_switches, res.preemptions);
}

TEST(Uniproc, RoundRobinSharesFairly) {
  TaskSet ts;
  ts.frequency = mhz(100);
  // Two identical CPU-bound tasks.
  ts.add("a", 500'000, milliseconds(20));
  ts.add("b", 500'000, milliseconds(20));
  UniprocConfig cfg{Policy::kRoundRobin, 0, microseconds(500)};
  const auto res = simulate_uniproc(ts, milliseconds(100), cfg);
  EXPECT_EQ(res.tasks[0].completed, res.tasks[1].completed);
  // RR interleaves: mean responses within one quantum of each other.
  EXPECT_NEAR(res.tasks[0].mean_response, res.tasks[1].mean_response,
              static_cast<double>(microseconds(600)));
}

TEST(Uniproc, AcetHookInjectsOverruns) {
  TaskSet ts = buttazzo_set();
  // Every third job of t3 runs 4x its WCET.
  const AcetFn acet = [](const RtTask& t, std::uint64_t idx) {
    if (t.name == "t3" && idx % 3 == 0) return t.wcet * 4;
    return t.wcet;
  };
  const auto res = simulate_uniproc(ts, milliseconds(120),
                                    {Policy::kRateMonotonic}, acet);
  EXPECT_GT(res.total_misses(), 0u);
}

TEST(Uniproc, AcetBelowWcetAlsoWorks) {
  TaskSet ts = buttazzo_set();
  const AcetFn acet = [](const RtTask& t, std::uint64_t) {
    return t.wcet / 2;
  };
  const auto res = simulate_uniproc(ts, milliseconds(120),
                                    {Policy::kRateMonotonic}, acet);
  EXPECT_EQ(res.total_misses(), 0u);
  EXPECT_NEAR(res.utilization(), 0.8333 / 2, 0.01);
}

TEST(Uniproc, DeterministicAcrossRuns) {
  const auto a = simulate_uniproc(buttazzo_set(), milliseconds(120),
                                  {Policy::kEdf});
  const auto b = simulate_uniproc(buttazzo_set(), milliseconds(120),
                                  {Policy::kEdf});
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.busy_time, b.busy_time);
  for (std::size_t i = 0; i < a.tasks.size(); ++i)
    EXPECT_EQ(a.tasks[i].worst_response, b.tasks[i].worst_response);
}

TEST(Uniproc, PolicyNames) {
  EXPECT_STREQ(policy_name(Policy::kEdf), "EDF");
  EXPECT_STREQ(policy_name(Policy::kRoundRobin), "RR");
}

// Property sweep: any feasible (RTA-passing) set must simulate clean under
// fixed-priority scheduling; this is the soundness contract between
// analysis.cpp and uniproc.cpp.
class RtaSoundness : public ::testing::TestWithParam<int> {};

TEST_P(RtaSoundness, AnalysisAcceptedImpliesNoMisses) {
  const int seed = GetParam();
  // Deterministic pseudo-random task set from the seed.
  TaskSet ts;
  ts.frequency = mhz(200);
  std::uint64_t x = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
  auto rnd = [&x](std::uint64_t lo, std::uint64_t hi) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return lo + x % (hi - lo + 1);
  };
  const int n = static_cast<int>(rnd(2, 5));
  for (int i = 0; i < n; ++i) {
    const DurationPs period = milliseconds(rnd(2, 40));
    // Keep per-task utilization small enough that many sets pass RTA.
    const Cycles wcet = static_cast<Cycles>(
        static_cast<double>(period) / 1e12 * mhz(200) * 0.15);
    ts.add("t" + std::to_string(i), std::max<Cycles>(wcet, 1), period);
  }
  assign_rm_priorities(ts);
  if (!response_time_analysis(ts).all_schedulable(ts)) GTEST_SKIP();
  const auto res = simulate_uniproc(ts, hyperperiod(ts),
                                    {Policy::kFixedPriority});
  EXPECT_EQ(res.total_misses(), 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RtaSoundness, ::testing::Range(0, 25));

}  // namespace
}  // namespace rw::sched
