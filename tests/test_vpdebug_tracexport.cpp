#include <gtest/gtest.h>

#include "common/strings.hpp"
#include "sim/process.hpp"
#include "vpdebug/tracexport.hpp"

namespace rw::vpdebug {
namespace {

sim::Process busy_task(sim::Platform& p, std::size_t core, Cycles c,
                       const char* label, int reps) {
  for (int i = 0; i < reps; ++i) {
    co_await p.core(core).compute(c, label);
    co_await sim::delay(p.kernel(), microseconds(5));
  }
}

class TraceExportTest : public ::testing::Test {
 protected:
  TraceExportTest() {
    auto cfg = sim::PlatformConfig::homogeneous(2, ghz(1));
    cfg.trace_enabled = true;
    platform = std::make_unique<sim::Platform>(std::move(cfg));
  }
  std::unique_ptr<sim::Platform> platform;
};

TEST_F(TraceExportTest, FunctionHistoryPairsStartsAndEnds) {
  sim::spawn(platform->kernel(),
             busy_task(*platform, 0, 10'000, "fir", 3));
  sim::spawn(platform->kernel(),
             busy_task(*platform, 1, 5'000, "iir", 2));
  platform->kernel().run();

  const auto h0 = function_history(platform->tracer().events(),
                                   sim::CoreId{0});
  ASSERT_EQ(h0.size(), 3u);
  for (const auto& b : h0) {
    EXPECT_EQ(b.label, "fir");
    EXPECT_EQ(b.end - b.start, cycles_to_ps(10'000, ghz(1)));
  }
  // Blocks are time-ordered and non-overlapping on one core.
  EXPECT_LE(h0[0].end, h0[1].start);
  EXPECT_LE(h0[1].end, h0[2].start);

  const auto h1 = function_history(platform->tracer().events(),
                                   sim::CoreId{1});
  EXPECT_EQ(h1.size(), 2u);
  EXPECT_EQ(h1[0].label, "iir");
}

TEST_F(TraceExportTest, GanttShowsBothCoresAndLegend) {
  sim::spawn(platform->kernel(),
             busy_task(*platform, 0, 10'000, "alpha", 2));
  sim::spawn(platform->kernel(),
             busy_task(*platform, 1, 10'000, "beta", 2));
  platform->kernel().run();
  const auto g = render_gantt(platform->tracer().events(), 2, 0,
                              platform->kernel().now(), 40);
  EXPECT_NE(g.find("core0"), std::string::npos);
  EXPECT_NE(g.find("core1"), std::string::npos);
  EXPECT_NE(g.find("a=alpha"), std::string::npos);
  EXPECT_NE(g.find("b=beta"), std::string::npos);
  // Activity letters appear in the rows.
  EXPECT_NE(g.find('a'), std::string::npos);
}

TEST_F(TraceExportTest, GanttEmptyWindow) {
  EXPECT_EQ(render_gantt({}, 2, 100, 100, 40), "");
  EXPECT_EQ(render_gantt({}, 2, 0, 100, 0), "");
}

TEST_F(TraceExportTest, VcdStructureAndToggles) {
  sim::spawn(platform->kernel(),
             busy_task(*platform, 0, 2'000, "work", 2));
  platform->timer().start_oneshot(microseconds(3));
  platform->irqc().set_handler(sim::kIrqTimer, [&](std::size_t line) {
    platform->irqc().ack(line);
  });
  platform->kernel().run();

  const std::string vcd = export_vcd(platform->tracer().events(), 2);
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("core0_busy"), std::string::npos);
  EXPECT_NE(vcd.find("core1_busy"), std::string::npos);
  EXPECT_NE(vcd.find("irq0"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  // core0 toggles busy twice: two compute blocks -> 2 rises + 2 falls.
  std::size_t rises = 0, pos = 0;
  while ((pos = vcd.find("1b0", pos)) != std::string::npos) {
    ++rises;
    pos += 3;
  }
  EXPECT_EQ(rises, 2u);
  // The IRQ raises and is acked.
  EXPECT_NE(vcd.find("1q0"), std::string::npos);
  EXPECT_NE(vcd.find("0q0"), std::string::npos);
}

TEST_F(TraceExportTest, VcdTimeMonotonicity) {
  sim::spawn(platform->kernel(),
             busy_task(*platform, 0, 1'000, "w", 3));
  platform->kernel().run();
  const std::string vcd = export_vcd(platform->tracer().events(), 2);
  // Every #timestamp line must be non-decreasing.
  std::uint64_t last = 0;
  for (const auto& line : rw::split(vcd, '\n')) {
    if (!line.empty() && line[0] == '#') {
      std::uint64_t t = 0;
      ASSERT_TRUE(rw::parse_u64(line.substr(1), t)) << line;
      EXPECT_GE(t, last);
      last = t;
    }
  }
}

// Determinism: two fresh, identically-configured runs must replay to
// byte-identical VCD and Gantt renderings — the property that makes the
// exports diffable artifacts rather than one-off dumps.
TEST(TraceExportDeterminism, VcdAndGanttByteIdenticalAcrossRuns) {
  auto run_once = [](std::string& vcd, std::string& gantt) {
    auto cfg = sim::PlatformConfig::homogeneous(2, ghz(1));
    cfg.trace_enabled = true;
    sim::Platform p(std::move(cfg));
    sim::spawn(p.kernel(), busy_task(p, 0, 10'000, "fir", 3));
    sim::spawn(p.kernel(), busy_task(p, 1, 5'000, "iir", 4));
    p.kernel().run();
    vcd = export_vcd(p.tracer().events(), 2);
    gantt = render_gantt(p.tracer().events(), 2, 0, p.kernel().now(), 60);
  };
  std::string vcd_a, gantt_a, vcd_b, gantt_b;
  run_once(vcd_a, gantt_a);
  run_once(vcd_b, gantt_b);
  EXPECT_FALSE(vcd_a.empty());
  EXPECT_FALSE(gantt_a.empty());
  EXPECT_EQ(vcd_a, vcd_b);
  EXPECT_EQ(gantt_a, gantt_b);
}

TEST(TraceExportDeterminism, EmptyTraceVcdIsValidSkeleton) {
  const std::string vcd = export_vcd({}, 2);
  // Header and variable declarations must still be present, with no
  // value-change records after $enddefinitions.
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("core0_busy"), std::string::npos);
  EXPECT_NE(vcd.find("core1_busy"), std::string::npos);
  const auto defs_end = vcd.find("$enddefinitions $end");
  ASSERT_NE(defs_end, std::string::npos);
  // Identical on repeat, trivially — but assert it anyway so the empty
  // path stays in the determinism contract.
  EXPECT_EQ(vcd, export_vcd({}, 2));
}

}  // namespace
}  // namespace rw::vpdebug
