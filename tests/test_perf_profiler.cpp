#include <gtest/gtest.h>

#include <memory>

#include "perf/governor.hpp"
#include "perf/metrics.hpp"
#include "perf/pmu.hpp"
#include "perf/profiler.hpp"
#include "perf/session.hpp"
#include "perf/workload.hpp"
#include "sim/platform.hpp"
#include "sim/process.hpp"

namespace rw::perf {
namespace {

std::unique_ptr<sim::Platform> make_platform(std::size_t cores = 2) {
  auto cfg = sim::PlatformConfig::homogeneous(cores, mhz(400));
  cfg.trace_enabled = true;
  return std::make_unique<sim::Platform>(std::move(cfg));
}

sim::Process one_block(sim::Platform& p, std::size_t core, Cycles c,
                       const char* label) {
  co_await p.core(core).compute(c, label);
}

sim::Process two_phase(sim::Platform& p) {
  // 100 us of "alpha" then 300 us of "beta" at 400 MHz (2.5 ns/cycle).
  co_await p.core(0).compute(40'000, "alpha");
  co_await p.core(0).compute(120'000, "beta");
}

TEST(ProfilerTest, SamplesMatchKnownPhaseDurations) {
  auto plat = make_platform(1);
  ProfilerConfig cfg;
  cfg.period = microseconds(1);
  SamplingProfiler prof(*plat, cfg);
  prof.start();
  sim::spawn(plat->kernel(), two_phase(*plat));
  plat->kernel().run();

  // Makespan 400 us, one sample per us per core. The tick at t=0 samples
  // pre-reservation state; ticks stop with the last live event at 400 us.
  const auto p = prof.profile();
  EXPECT_EQ(p.total_samples, prof.ticks());
  EXPECT_EQ(p.busy_samples + p.idle_samples, p.total_samples);
  const std::uint64_t alpha = p.samples_for("alpha");
  const std::uint64_t beta = p.samples_for("beta");
  EXPECT_GT(alpha, 0u);
  EXPECT_GT(beta, 0u);
  // 1:3 duration split should be visible within a couple of samples.
  EXPECT_NEAR(static_cast<double>(beta) / static_cast<double>(alpha), 3.0,
              0.2);
}

TEST(ProfilerTest, IdleCoresAccrueIdleSamples) {
  auto plat = make_platform(2);
  ProfilerConfig cfg;
  cfg.period = microseconds(1);
  SamplingProfiler prof(*plat, cfg);
  prof.start();
  // Core 0 busy 100 us; core 1 never touched.
  sim::spawn(plat->kernel(), one_block(*plat, 0, 40'000, "only"));
  plat->kernel().run();

  const auto p = prof.profile();
  EXPECT_GT(p.idle_samples, 0u);
  for (const auto& e : p.entries) EXPECT_EQ(e.core, 0u);
}

TEST(ProfilerTest, DaemonTicksDoNotKeepKernelAlive) {
  auto plat = make_platform(1);
  ProfilerConfig cfg;
  cfg.period = microseconds(1);
  SamplingProfiler prof(*plat, cfg);
  prof.start();
  sim::spawn(plat->kernel(), one_block(*plat, 0, 400, "tiny"));  // 1 us
  plat->kernel().run();
  // Without daemon events this would never return; with them the clock
  // stops at the last live event.
  EXPECT_EQ(plat->kernel().now(), microseconds(1));
  EXPECT_LE(prof.ticks(), 2u);
}

TEST(ProfilerTest, NonIntrusiveSamplingPreservesMakespan) {
  auto run = [](Cycles cost, DurationPs period) {
    auto plat = make_platform(4);
    ProfilerConfig cfg;
    cfg.period = period;
    cfg.cost_cycles = cost;
    SamplingProfiler prof(*plat, cfg);
    prof.start();
    spawn_workload("forkjoin", *plat, 3, 2);
    plat->kernel().run();
    return plat->kernel().now();
  };
  const TimePs baseline = [] {
    auto plat = make_platform(4);
    spawn_workload("forkjoin", *plat, 3, 2);
    plat->kernel().run();
    return plat->kernel().now();
  }();

  EXPECT_EQ(run(0, microseconds(2)), baseline);
  // The modelled on-target agent steals cycles: the run must stretch, and
  // a faster sampling rate must stretch it more.
  const TimePs slow = run(100, microseconds(20));
  const TimePs fast = run(100, microseconds(2));
  EXPECT_GT(slow, baseline);
  EXPECT_GT(fast, slow);
}

TEST(ProfilerTest, AttributionAccuracyHighAtFinePeriod) {
  auto run = [](DurationPs period) {
    auto plat = make_platform(4);
    ProfilerConfig cfg;
    cfg.period = period;
    SamplingProfiler prof(*plat, cfg);
    prof.start();
    spawn_workload("pipeline", *plat, 5, 2);
    plat->kernel().run();
    return attribution_accuracy(prof.profile(), plat->tracer().events(), 4);
  };
  const double fine = run(microseconds(1));
  EXPECT_GT(fine, 0.9);
  EXPECT_LE(fine, 1.0);
  // Sparser sampling cannot attribute better than dense sampling (allow a
  // hair of slack: bucketing ties can flip individual samples).
  EXPECT_LE(run(microseconds(50)), fine + 0.05);
}

TEST(ProfilerTest, AccuracyEdgeCases) {
  SamplingProfiler::Profile empty;
  EXPECT_EQ(attribution_accuracy(empty, {}, 2), 1.0);
  SamplingProfiler::Profile some;
  some.entries.push_back({0, "x", 5});
  some.busy_samples = 5;
  some.total_samples = 5;
  EXPECT_EQ(attribution_accuracy(some, {}, 2), 0.0);
}

TEST(EpochTest, EpochsTileTheRunAndSumToTotals) {
  auto plat = make_platform(2);
  Pmu pmu(plat->core_count());
  plat->set_perf_sink(&pmu);
  EpochCollector collector(*plat, pmu, microseconds(50));
  collector.start();
  sim::spawn(plat->kernel(), one_block(*plat, 0, 48'000, "a"));  // 120 us
  sim::spawn(plat->kernel(), one_block(*plat, 1, 20'000, "b"));  // 50 us
  plat->kernel().run();
  collector.finish();
  collector.finish();  // idempotent

  const auto& es = collector.epochs();
  ASSERT_GE(es.size(), 3u);
  TimePs cursor = 0;
  Cycles busy_sum = 0;
  for (const auto& e : es) {
    EXPECT_EQ(e.start, cursor);
    cursor = e.end;
    for (const auto& c : e.cores) busy_sum += c.busy_cycles;
  }
  EXPECT_EQ(cursor, plat->kernel().now());
  EXPECT_EQ(busy_sum, 48'000u + 20'000u);
  // First epoch: both cores active. Third: only core 0's tail remains.
  EXPECT_GT(es[0].mean_utilization(), 0.9);
  EXPECT_EQ(es[2].cores[1].busy_cycles, 0u);
}

TEST(GovernorTest, BoostsBusyCoreAndIdlesQuietCore) {
  auto plat = make_platform(2);
  Pmu pmu(plat->core_count());
  plat->set_perf_sink(&pmu);
  GovernorConfig gcfg;
  gcfg.window = microseconds(10);
  PmuGovernor gov(*plat, pmu, gcfg);
  gov.start();

  // Saturate core 0 with *sequential* window-sized chunks: each chunk is
  // reserved only when the previous one retires, so the PMU busy-time
  // deltas land in the windows where the work actually runs (spawning all
  // blocks up front would book every cycle into the first window and the
  // governor would read the rest of the run as idle). Core 1 stays quiet.
  sim::spawn(plat->kernel(), [](sim::Platform& p) -> sim::Process {
    for (int i = 0; i < 30; ++i) co_await p.core(0).compute(4'000, "hot");
  }(*plat));
  plat->kernel().run();

  EXPECT_GT(gov.transitions(), 0u);
  EXPECT_GT(gov.windows_observed(), 0u);
  // The governor starts every core at the ladder's lowest rung; the
  // saturated core must have climbed, the idle one must not.
  const HertzT lowest = gcfg.ladder.levels.front();
  EXPECT_GT(plat->core(0).frequency(), lowest);
  EXPECT_EQ(plat->core(1).frequency(), lowest);
  // The PMU saw each boost decision as a freq-change event.
  EXPECT_GT(pmu.core(0).freq_changes, 0u);
}

TEST(SessionTest, ReportAggregatesAllPipelineStages) {
  auto plat = make_platform(4);
  PerfConfig cfg;
  cfg.profiler.period = microseconds(5);
  cfg.epoch_width = microseconds(25);
  PerfSession session(*plat, cfg);
  spawn_workload("pipeline", *plat, 11, 2);
  plat->kernel().run();
  const PerfReport r = session.report();

  EXPECT_EQ(r.makespan, plat->kernel().now());
  EXPECT_EQ(r.num_cores, 4u);
  EXPECT_GT(r.totals().busy_cycles, 0u);
  EXPECT_GT(r.mean_utilization(), 0.0);
  EXPECT_GT(r.profiler_ticks, 0u);
  EXPECT_EQ(r.profiler_period, microseconds(5));
  EXPECT_GT(r.profile.busy_samples, 0u);
  ASSERT_FALSE(r.epochs.empty());
  EXPECT_EQ(r.epochs.back().end, r.makespan);

  RunMetrics m;
  r.to_extras(m);
  EXPECT_EQ(m.extra_or("pmu.busy_cycles"),
            static_cast<double>(r.totals().busy_cycles));
  EXPECT_GT(m.extra_or("pmu.samples"), 0.0);
  EXPECT_EQ(m.extra_or("pmu.epochs"),
            static_cast<double>(r.epochs.size()));
}

}  // namespace
}  // namespace rw::perf
