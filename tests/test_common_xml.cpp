#include "common/xml.hpp"

#include <gtest/gtest.h>

namespace rw::xml {
namespace {

TEST(Xml, ParsesSimpleElement) {
  auto r = parse("<root/>");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value()->name, "root");
  EXPECT_TRUE(r.value()->children.empty());
}

TEST(Xml, ParsesAttributes) {
  auto r = parse(R"(<core id="3" freq="400e6" name='dsp 1'/>)");
  ASSERT_TRUE(r.ok());
  const auto& e = *r.value();
  EXPECT_EQ(e.attr("id"), "3");
  EXPECT_EQ(e.attr_u64("id"), 3u);
  EXPECT_DOUBLE_EQ(e.attr_double("freq"), 400e6);
  EXPECT_EQ(e.attr("name"), "dsp 1");
  EXPECT_EQ(e.attr("missing"), "");
  EXPECT_EQ(e.attr_u64("missing", 99), 99u);
}

TEST(Xml, ParsesNestedChildren) {
  auto r = parse(R"(
    <architecture name="cellish">
      <core id="0" class="RISC"/>
      <core id="1" class="DSP"/>
      <memory kind="shared" bytes="1048576"/>
    </architecture>)");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const auto& root = *r.value();
  EXPECT_EQ(root.name, "architecture");
  EXPECT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children_named("core").size(), 2u);
  ASSERT_NE(root.child("memory"), nullptr);
  EXPECT_EQ(root.child("memory")->attr_u64("bytes"), 1048576u);
  EXPECT_EQ(root.child("nonexistent"), nullptr);
}

TEST(Xml, ParsesTextContent) {
  auto r = parse("<note>  hello world  </note>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->text, "hello world");
}

TEST(Xml, SkipsPrologAndComments) {
  auto r = parse(R"(<?xml version="1.0"?>
    <!-- top comment -->
    <root>
      <!-- inner comment -->
      <a/>
    </root>
    <!-- trailing comment -->)");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value()->children.size(), 1u);
}

TEST(Xml, DecodesEntities) {
  auto r = parse(R"(<e v="&lt;&amp;&gt;">&quot;x&apos;</e>)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->attr("v"), "<&>");
  EXPECT_EQ(r.value()->text, "\"x'");
}

TEST(Xml, RejectsMismatchedTags) {
  auto r = parse("<a><b></a></b>");
  EXPECT_FALSE(r.ok());
}

TEST(Xml, RejectsTrailingContent) {
  auto r = parse("<a/><b/>");
  EXPECT_FALSE(r.ok());
}

TEST(Xml, RejectsUnterminatedInput) {
  EXPECT_FALSE(parse("<a>").ok());
  EXPECT_FALSE(parse("<a foo=>").ok());
  EXPECT_FALSE(parse("<a foo=\"x>").ok());
  EXPECT_FALSE(parse("").ok());
}

TEST(Xml, ErrorCarriesLineNumber) {
  auto r = parse("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_GE(r.error().line, 3);
}

TEST(Xml, RoundTripsThroughSerialize) {
  const char* doc = R"(<arch n="2"><core id="0"/><core id="1"/></arch>)";
  auto r1 = parse(doc);
  ASSERT_TRUE(r1.ok());
  const std::string text = serialize(*r1.value());
  auto r2 = parse(text);
  ASSERT_TRUE(r2.ok()) << r2.error().to_string() << "\n" << text;
  EXPECT_EQ(r2.value()->children.size(), 2u);
  EXPECT_EQ(r2.value()->attr_u64("n"), 2u);
  EXPECT_EQ(serialize(*r2.value()), text);  // fixpoint after one round trip
}

TEST(Xml, SerializeEscapesSpecials) {
  Element e;
  e.name = "t";
  e.attributes.emplace_back("v", "a<b&c\"d");
  const std::string text = serialize(e);
  auto r = parse(text);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->attr("v"), "a<b&c\"d");
}

}  // namespace
}  // namespace rw::xml
