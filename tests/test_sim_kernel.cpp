#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rw::sim {
namespace {

TEST(Kernel, StartsAtTimeZero) {
  Kernel k;
  EXPECT_EQ(k.now(), 0u);
  EXPECT_TRUE(k.empty());
}

TEST(Kernel, ExecutesInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(30, [&] { order.push_back(3); });
  k.schedule_at(10, [&] { order.push_back(1); });
  k.schedule_at(20, [&] { order.push_back(2); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), 30u);
}

TEST(Kernel, TiesBrokenByPriorityThenInsertion) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(5, [&] { order.push_back(1); }, /*priority=*/1);
  k.schedule_at(5, [&] { order.push_back(2); }, /*priority=*/0);
  k.schedule_at(5, [&] { order.push_back(3); }, /*priority=*/0);
  k.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(Kernel, HandlersMayScheduleMoreEvents) {
  Kernel k;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) k.schedule_in(10, tick);
  };
  k.schedule_at(0, tick);
  k.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(k.now(), 40u);
}

TEST(Kernel, SchedulingInPastThrows) {
  Kernel k;
  k.schedule_at(100, [] {});
  k.run();
  EXPECT_THROW(k.schedule_at(50, [] {}), std::logic_error);
}

TEST(Kernel, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Kernel k;
  std::vector<TimePs> fired;
  for (TimePs t : {10u, 20u, 30u, 40u})
    k.schedule_at(t, [&, t] { fired.push_back(t); });
  k.run_until(25);
  EXPECT_EQ(fired, (std::vector<TimePs>{10, 20}));
  EXPECT_EQ(k.now(), 25u);
  k.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(k.now(), 100u);
}

TEST(Kernel, RequestStopBreaksRun) {
  Kernel k;
  int executed = 0;
  for (int i = 0; i < 10; ++i) {
    k.schedule_at(static_cast<TimePs>(i * 10), [&] {
      if (++executed == 3) k.request_stop();
    });
  }
  k.run();
  EXPECT_EQ(executed, 3);
  // Remaining events still present; run resumes.
  k.run();
  EXPECT_EQ(executed, 10);
}

TEST(Kernel, EventBudgetLimitsRunawayLoops) {
  Kernel k;
  std::uint64_t count = 0;
  std::function<void()> forever = [&] {
    ++count;
    k.schedule_in(1, forever);
  };
  k.schedule_at(0, forever);
  k.run(/*max_events=*/1000);
  EXPECT_EQ(count, 1000u);
}

TEST(Kernel, CountsExecutedEvents) {
  Kernel k;
  for (int i = 0; i < 7; ++i) k.schedule_at(static_cast<TimePs>(i), [] {});
  k.run();
  EXPECT_EQ(k.events_executed(), 7u);
}

TEST(Kernel, StepReturnsFalseWhenEmpty) {
  Kernel k;
  EXPECT_FALSE(k.step());
  k.schedule_at(1, [] {});
  EXPECT_TRUE(k.step());
  EXPECT_FALSE(k.step());
}

TEST(Kernel, DaemonEventsDoNotKeepRunAlive) {
  Kernel k;
  int live_fired = 0, daemon_fired = 0;
  // A self-rescheduling daemon: without daemon semantics run() would spin
  // on it forever.
  std::function<void()> observer = [&] {
    ++daemon_fired;
    k.schedule_daemon_in(10, observer);
  };
  k.schedule_daemon_at(0, observer);
  k.schedule_at(35, [&] { ++live_fired; });
  k.run();
  EXPECT_EQ(live_fired, 1);
  // Daemons at t=0,10,20,30 ran; the t=40 one stayed pending.
  EXPECT_EQ(daemon_fired, 4);
  EXPECT_EQ(k.now(), 35u);
  EXPECT_EQ(k.live_events(), 0u);
  EXPECT_FALSE(k.empty());  // the pending daemon is still queued
}

TEST(Kernel, RunWithOnlyDaemonsReturnsImmediately) {
  Kernel k;
  int fired = 0;
  k.schedule_daemon_at(5, [&] { ++fired; });
  k.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(k.now(), 0u);
}

TEST(Kernel, DaemonsExecuteWithinRunUntilHorizon) {
  Kernel k;
  std::vector<TimePs> ticks;
  std::function<void()> observer = [&] {
    ticks.push_back(k.now());
    k.schedule_daemon_in(10, observer);
  };
  k.schedule_daemon_at(10, observer);
  k.run_until(35);
  EXPECT_EQ(ticks, (std::vector<TimePs>{10, 20, 30}));
  EXPECT_EQ(k.now(), 35u);
}

TEST(Kernel, LiveEventsTracksOnlyNonDaemons) {
  Kernel k;
  k.schedule_at(10, [] {});
  k.schedule_at(20, [] {});
  k.schedule_daemon_at(15, [] {});
  EXPECT_EQ(k.live_events(), 2u);
  k.run();
  EXPECT_EQ(k.live_events(), 0u);
}

TEST(Kernel, RunStopsAtLastLiveEventEvenWithTiedDaemon) {
  Kernel k;
  std::vector<int> order;
  // A daemon tied with the final live event never runs: run() returns the
  // moment the last live event retires, so makespans are unaffected by
  // attached observers.
  k.schedule_daemon_at(10, [&] { order.push_back(2); }, /*priority=*/100);
  k.schedule_at(10, [&] { order.push_back(1); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(k.now(), 10u);
}

TEST(Kernel, DeterministicEventOrderAcrossRuns) {
  auto run_once = [] {
    Kernel k;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      k.schedule_at(static_cast<TimePs>((i * 7) % 13),
                    [&order, i] { order.push_back(i); });
    }
    k.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace rw::sim
