#include <gtest/gtest.h>

#include "recoder/recoder.hpp"

namespace rw::recoder {
namespace {

RecoderSession open_src(const char* src) {
  auto s = RecoderSession::from_source(src);
  EXPECT_TRUE(s.ok()) << s.error().to_string();
  return std::move(s).take();
}

TEST(Rename, RenamesDeclAndUses) {
  auto s = open_src(R"(
    int main() {
      int t = 3;
      t = t + 1;
      return t * 2;
    })");
  const auto ref = s.execute();
  ASSERT_TRUE(s.cmd_rename("main", "t", "tmp").ok()) << s.source();
  EXPECT_EQ(s.source().find(" t "), std::string::npos);
  EXPECT_NE(s.source().find("tmp"), std::string::npos);
  EXPECT_EQ(s.execute().value().return_value, ref.value().return_value);
}

TEST(Rename, EnablesFusionAfterCollision) {
  auto s = open_src(R"(
    int a[4];
    int b[4];
    int main() {
      for (int i = 0; i < 4; i = i + 1) { int t = i; a[i] = t; }
      for (int i = 0; i < 4; i = i + 1) { int t = 2; b[i] = a[i] * t; }
      return b[3];
    })");
  const auto ref = s.execute();
  EXPECT_FALSE(s.cmd_fuse_loops("main", 0).ok());  // locals collide
  // A targeted rename of block-scoped locals is out of scope for the
  // simple command, but function-scope renaming is exercised here:
  auto s2 = open_src(R"(
    int main() {
      int x = 1;
      int y = 2;
      return x + y;
    })");
  EXPECT_FALSE(s2.cmd_rename("main", "x", "y").ok());  // collision refused
  EXPECT_TRUE(s2.cmd_rename("main", "x", "z").ok());
  EXPECT_EQ(s2.execute().value().return_value, 3);
  (void)ref;
}

TEST(Rename, RefusesGlobalsAndUnknowns) {
  auto s = open_src(R"(
    int g[4];
    int main() { int v = 1; return v; })");
  EXPECT_FALSE(s.cmd_rename("main", "v", "g").ok());
  EXPECT_FALSE(s.cmd_rename("main", "nope", "w").ok());
}

TEST(Unroll, FullyUnrollsSmallLoop) {
  auto s = open_src(R"(
    int a[4];
    int main() {
      for (int i = 0; i < 4; i = i + 1) { a[i] = i * i; }
      return a[0] + a[1] + a[2] + a[3];
    })");
  const auto ref = s.execute();
  ASSERT_TRUE(s.cmd_unroll_loop("main", 0).ok()) << s.source();
  EXPECT_EQ(s.source().find("for ("), std::string::npos);  // no loop left
  EXPECT_NE(s.source().find("a[3] = 3 * 3"), std::string::npos);
  EXPECT_EQ(s.execute().value().return_value, ref.value().return_value);
}

TEST(Unroll, BodiesWithLocalsGetBlocks) {
  auto s = open_src(R"(
    int a[3];
    int main() {
      for (int i = 0; i < 3; i = i + 1) {
        int t = i + 10;
        a[i] = t;
      }
      return a[0] + a[1] + a[2];
    })");
  const auto ref = s.execute();
  ASSERT_TRUE(s.cmd_unroll_loop("main", 0).ok()) << s.source();
  const auto after = s.execute();
  ASSERT_TRUE(after.ok()) << after.error().to_string() << s.source();
  EXPECT_EQ(after.value().return_value, ref.value().return_value);
  // Scoped copies: three blocks, each with its own t.
  std::size_t blocks = 0, pos = 0;
  while ((pos = s.source().find("{\n", pos)) != std::string::npos) {
    ++blocks;
    ++pos;
  }
  EXPECT_GE(blocks, 3u);
}

TEST(Unroll, RefusesHugeTripCounts) {
  auto s = open_src(R"(
    int a[100];
    int main() {
      for (int i = 0; i < 100; i = i + 1) { a[i] = i; }
      return a[99];
    })");
  EXPECT_FALSE(s.cmd_unroll_loop("main", 0).ok());
}

TEST(Unroll, UnrollingFeedsConstantFolding) {
  // The Sec. VI synergy: unroll then prune leaves straight-line constant
  // code a synthesis tool can analyze completely.
  auto s = open_src(R"(
    int a[3];
    int main() {
      for (int i = 0; i < 3; i = i + 1) { a[i] = i * 2 + 1; }
      return a[2];
    })");
  const auto ref = s.execute();
  ASSERT_TRUE(s.cmd_unroll_loop("main", 0).ok());
  ASSERT_TRUE(s.cmd_prune_control("main").ok());
  EXPECT_NE(s.source().find("a[2] = 5"), std::string::npos);  // folded
  EXPECT_EQ(s.execute().value().return_value, ref.value().return_value);
}

}  // namespace
}  // namespace rw::recoder
