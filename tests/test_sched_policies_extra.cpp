// Additional policy-level behaviours of the uniprocessor scheduler:
// deadline-monotonic vs rate-monotonic on constrained deadlines, RR
// quantum sensitivity, and hyperperiod-boundary regularity.
#include <gtest/gtest.h>

#include "sched/analysis.hpp"
#include "sched/uniproc.hpp"

namespace rw::sched {
namespace {

TEST(PoliciesExtra, DmBeatsRmOnConstrainedDeadlines) {
  // Classic example: a long-period task with a tight deadline must outrank
  // a short-period one. RM (period order) misses; DM (deadline order)
  // does not.
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("loose", 200'000, milliseconds(5));                    // C=2ms
  ts.add("tight", 200'000, milliseconds(20), milliseconds(3));  // C=2ms D=3ms
  const auto rm = simulate_uniproc(ts, milliseconds(100),
                                   {Policy::kRateMonotonic});
  const auto dm = simulate_uniproc(ts, milliseconds(100),
                                   {Policy::kDeadlineMonotonic});
  EXPECT_GT(rm.tasks[1].deadline_misses, 0u);  // tight misses under RM
  EXPECT_EQ(dm.total_misses(), 0u);
}

TEST(PoliciesExtra, RrQuantumControlsInterleaving) {
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("a", 400'000, milliseconds(20));
  ts.add("b", 400'000, milliseconds(20));
  UniprocConfig fine{Policy::kRoundRobin, 0, microseconds(100)};
  UniprocConfig coarse{Policy::kRoundRobin, 0, milliseconds(8)};
  const auto rf = simulate_uniproc(ts, milliseconds(40), fine);
  const auto rc = simulate_uniproc(ts, milliseconds(40), coarse);
  // Finer quantum = more context switches.
  EXPECT_GT(rf.context_switches, rc.context_switches * 4);
  // Same work either way.
  EXPECT_EQ(rf.tasks[0].completed, rc.tasks[0].completed);
}

TEST(PoliciesExtra, RrQuantumWithOverheadHurtsThroughput) {
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("a", 900'000, milliseconds(40));
  ts.add("b", 900'000, milliseconds(40));
  UniprocConfig fine{Policy::kRoundRobin, 5'000, microseconds(200)};
  UniprocConfig coarse{Policy::kRoundRobin, 5'000, milliseconds(5)};
  const auto rf = simulate_uniproc(ts, milliseconds(40), fine);
  const auto rc = simulate_uniproc(ts, milliseconds(40), coarse);
  // With a real switch cost, thrashing burns time: worst response grows.
  EXPECT_GT(rf.tasks[0].worst_response, rc.tasks[0].worst_response);
}

TEST(PoliciesExtra, HyperperiodRegularity) {
  // A feasible set's behaviour over [0, H) repeats over [H, 2H): equal
  // miss and completion counts in both windows.
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("x", 100'000, milliseconds(4));
  ts.add("y", 150'000, milliseconds(6));
  const DurationPs h = hyperperiod(ts);
  EXPECT_EQ(h, milliseconds(12));
  const auto one = simulate_uniproc(ts, h, {Policy::kEdf});
  const auto two = simulate_uniproc(ts, 2 * h, {Policy::kEdf});
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    EXPECT_EQ(two.tasks[i].released, 2 * one.tasks[i].released);
    EXPECT_EQ(two.tasks[i].completed, 2 * one.tasks[i].completed);
    EXPECT_EQ(two.tasks[i].worst_response, one.tasks[i].worst_response);
  }
}

TEST(PoliciesExtra, EdfMissesAreSpreadUnderOverload) {
  // Under overload EDF degrades every task; FP protects the top task at
  // the expense of the bottom one. Both shapes are textbook.
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("hi", 300'000, milliseconds(5)).fixed_priority = 0;  // U = 0.6
  ts.add("lo", 300'000, milliseconds(5)).fixed_priority = 1;  // total 1.2
  const auto fp = simulate_uniproc(ts, milliseconds(100),
                                   {Policy::kFixedPriority});
  EXPECT_EQ(fp.tasks[0].deadline_misses, 0u);
  EXPECT_GT(fp.tasks[1].deadline_misses, 0u);
  const auto edf = simulate_uniproc(ts, milliseconds(100), {Policy::kEdf});
  EXPECT_GT(edf.total_misses(), 0u);
}

}  // namespace
}  // namespace rw::sched
