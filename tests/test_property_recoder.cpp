// Property sweep: randomly generated mini-C programs put through random
// recoding-transformation sequences must preserve their interpreted
// semantics at every step — the recoder's core contract (Sec. VI).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "recoder/recoder.hpp"

namespace rw::recoder {
namespace {

/// Random program: G global arrays, a few canonical loops filling /
/// transforming / reducing them, occasional pointer inits and constant
/// branches (so every transformation has something to chew on).
std::string random_program(Rng& rng) {
  const int arrays = static_cast<int>(rng.next_int(2, 4));
  const int n = static_cast<int>(rng.next_int(8, 24));
  std::string s;
  for (int a = 0; a < arrays; ++a)
    s += strformat("int g%d[%d];\n", a, n);
  s += "int main() {\n  int t;\n";

  // Fill loops: one per array, sometimes through a pointer.
  for (int a = 0; a < arrays; ++a) {
    if (rng.next_bool(0.4)) {
      s += strformat("  int *p%d = &g%d[0];\n", a, a);
      s += strformat(
          "  for (int i = 0; i < %d; i = i + 1) { *(p%d + i) = i * %lld; "
          "}\n",
          n, a, static_cast<long long>(rng.next_int(1, 9)));
    } else {
      s += strformat(
          "  for (int i = 0; i < %d; i = i + 1) { g%d[i] = i * %lld + "
          "%lld; }\n",
          n, a, static_cast<long long>(rng.next_int(1, 9)),
          static_cast<long long>(rng.next_int(0, 5)));
    }
  }
  // A transform loop using the scalar t (localizable pattern).
  s += strformat(
      "  for (int i = 0; i < %d; i = i + 1) {\n"
      "    t = g0[i] * %lld;\n"
      "    g1[i] = t + 1;\n"
      "  }\n",
      n, static_cast<long long>(rng.next_int(2, 5)));
  // Dead control flow for prune_control.
  if (rng.next_bool(0.5))
    s += "  if (0) { g0[0] = 12345; }\n";
  if (rng.next_bool(0.5))
    s += strformat("  if (1) { g1[0] = g1[0] + %lld; }\n",
                   static_cast<long long>(rng.next_int(1, 3)));
  // Reduction.
  s += strformat(
      "  int acc = 0;\n"
      "  for (int i = 0; i < %d; i = i + 1) { acc = acc * 13 + g1[i]; }\n",
      n);
  s += "  return acc % 1000000;\n}\n";
  return s;
}

class RecoderProperty : public ::testing::TestWithParam<int> {};

TEST_P(RecoderProperty, RandomTransformSequencePreservesSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const std::string src = random_program(rng);
  auto sr = RecoderSession::from_source(src);
  ASSERT_TRUE(sr.ok()) << sr.error().to_string() << "\n" << src;
  RecoderSession s = std::move(sr).take();
  const auto ref = s.execute();
  ASSERT_TRUE(ref.ok()) << ref.error().to_string() << "\n" << src;

  // Try a random sequence of commands; refusals are fine (conservative
  // analyses), but any *accepted* command must preserve semantics.
  int applied = 0;
  for (int step = 0; step < 12; ++step) {
    const int pick = static_cast<int>(rng.next_int(0, 5));
    Status st = Status::ok_status();
    switch (pick) {
      case 0:
        st = s.cmd_pointer_to_index("main");
        break;
      case 1:
        st = s.cmd_localize("main", "t");
        break;
      case 2:
        st = s.cmd_prune_control("main");
        break;
      case 3: {
        const auto loop = static_cast<std::size_t>(rng.next_int(0, 5));
        st = s.cmd_split_loop("main", loop,
                              static_cast<std::size_t>(rng.next_int(2, 4)));
        break;
      }
      case 4: {
        const auto g = "g" + std::to_string(rng.next_int(0, 3));
        st = s.cmd_insert_channel("main", g,
                                  rng.next_int(1, 9));
        break;
      }
      case 5: {
        const auto g = "g" + std::to_string(rng.next_int(0, 3));
        st = s.cmd_split_vector("main", g,
                                static_cast<std::size_t>(
                                    rng.next_int(2, 3)));
        break;
      }
    }
    if (!st.ok()) continue;
    ++applied;
    const auto now = s.execute();
    ASSERT_TRUE(now.ok())
        << "seed " << GetParam() << " step " << step << ": "
        << now.error().to_string() << "\nsource:\n" << s.source();
    ASSERT_EQ(now.value().return_value, ref.value().return_value)
        << "seed " << GetParam() << " step " << step << " command "
        << s.journal().back().command << "\nsource:\n" << s.source();
  }
  // Undo everything: must reproduce the original result too.
  while (s.undo()) {
  }
  const auto back = s.execute();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().return_value, ref.value().return_value);
  (void)applied;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RecoderProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace rw::recoder
