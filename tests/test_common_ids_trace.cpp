#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "common/ids.hpp"
#include "sim/trace.hpp"

namespace rw {
namespace {

struct DemoTag {};
using DemoId = Id<DemoTag>;

TEST(Ids, DefaultIsInvalid) {
  DemoId id;
  EXPECT_FALSE(id.is_valid());
  EXPECT_EQ(id, DemoId::invalid());
}

TEST(Ids, ValueAndIndex) {
  DemoId id{7};
  EXPECT_TRUE(id.is_valid());
  EXPECT_EQ(id.value(), 7u);
  EXPECT_EQ(id.index(), 7u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(DemoId{1}, DemoId{2});
  EXPECT_EQ(DemoId{3}, DemoId{3});
  EXPECT_NE(DemoId{3}, DemoId{4});
}

TEST(Ids, Hashable) {
  std::unordered_set<DemoId> set;
  set.insert(DemoId{1});
  set.insert(DemoId{2});
  set.insert(DemoId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, Streaming) {
  std::ostringstream os;
  os << DemoId{5} << " " << DemoId{};
  EXPECT_EQ(os.str(), "#5 <invalid>");
}

TEST(TraceEvent, ToStringContainsFields) {
  sim::TraceEvent ev;
  ev.time = 123456;
  ev.kind = sim::TraceKind::kMsgSend;
  ev.core = sim::CoreId{2};
  ev.label = "chan0";
  ev.a = 42;
  const std::string s = ev.to_string();
  EXPECT_NE(s.find("msg_send"), std::string::npos);
  EXPECT_NE(s.find("core2"), std::string::npos);
  EXPECT_NE(s.find("chan0"), std::string::npos);
  EXPECT_NE(s.find("a=42"), std::string::npos);
}

TEST(TraceEvent, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(sim::TraceKind::kCustom); ++k) {
    const char* name =
        sim::trace_kind_name(static_cast<sim::TraceKind>(k));
    EXPECT_STRNE(name, "?");
    EXPECT_GT(std::string(name).size(), 2u);
  }
}

TEST(Tracer, ListenersFireEvenWhenRetentionOff) {
  sim::Tracer tracer;
  tracer.set_enabled(false);
  int fired = 0;
  tracer.add_listener([&](const sim::TraceEvent&) { ++fired; });
  tracer.record(0, sim::TraceKind::kCustom, sim::CoreId{}, "x");
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(tracer.events().empty());  // nothing retained
  tracer.set_enabled(true);
  tracer.record(1, sim::TraceKind::kCustom, sim::CoreId{}, "y");
  EXPECT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(Tracer, FilterByKind) {
  sim::Tracer tracer;
  tracer.set_enabled(true);
  tracer.record(0, sim::TraceKind::kMemRead, sim::CoreId{0}, "m");
  tracer.record(1, sim::TraceKind::kMemWrite, sim::CoreId{0}, "m");
  tracer.record(2, sim::TraceKind::kMemRead, sim::CoreId{0}, "m");
  EXPECT_EQ(tracer.filter(sim::TraceKind::kMemRead).size(), 2u);
  EXPECT_EQ(tracer.filter(sim::TraceKind::kMemWrite).size(), 1u);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

}  // namespace
}  // namespace rw
