// rw::fuzz — shrinker property tests, against synthetic predicates (no
// simulation): the result must still satisfy the predicate it chased,
// and must be 1-minimal over exactly the neighbourhood
// shrink_candidates() enumerates.
#include <gtest/gtest.h>

#include <cstdint>

#include "fault/plan.hpp"
#include "fuzz/case.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/shrink.hpp"

namespace {

using namespace rw;

fuzz::CampaignCase big_case() {
  for (std::uint64_t s = 1; s < 256; ++s) {
    fuzz::CampaignCase c = fuzz::generate_case(s);
    if (c.family == fuzz::Family::kFaultPipeline && c.plan.size() >= 4 &&
        c.cores >= 4)
      return c;
  }
  ADD_FAILURE() << "no rich fault_pipeline case in 256 seeds";
  return {};
}

/// Holds both halves of the shrink contract for `pred` on `c`.
void expect_minimal(const fuzz::CampaignCase& c,
                    const fuzz::FailPredicate& pred) {
  ASSERT_TRUE(pred(c));
  const fuzz::ShrinkResult r = fuzz::shrink_case(c, pred);
  EXPECT_FALSE(r.at_budget);
  // Same-predicate preservation.
  EXPECT_TRUE(pred(r.minimal));
  // 1-minimality: no single-step reduction of the result still fails.
  for (const fuzz::CampaignCase& cand : fuzz::shrink_candidates(r.minimal))
    EXPECT_FALSE(pred(cand)) << "reducible along: " << cand.summary();
}

TEST(FuzzShrink, CandidatesAreDistinctValidAndDeterministic) {
  const fuzz::CampaignCase c = big_case();
  const auto cands = fuzz::shrink_candidates(c);
  ASSERT_FALSE(cands.empty());
  const auto again = fuzz::shrink_candidates(c);
  ASSERT_EQ(cands.size(), again.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    EXPECT_EQ(cands[i].to_json(), again[i].to_json());
    EXPECT_NE(cands[i].to_json(), c.to_json());
    // Floors hold on every candidate.
    EXPECT_GE(cands[i].cores, 2u);
    EXPECT_GE(cands[i].tiles, 1u);
    EXPECT_LE(cands[i].tiles, cands[i].cores);
    EXPECT_GE(cands[i].items, 1u);
    EXPECT_GE(cands[i].graph_tasks, 2u);
    EXPECT_GE(cands[i].tenants, 1u);
    EXPECT_GE(cands[i].jobs_per_tenant, 1u);
    EXPECT_GE(cands[i].scale, 1u);
  }
}

TEST(FuzzShrink, FixpointIsOneMinimalForAPlanPredicate) {
  // "Still fails" = the plan still contains a core_crash. Minimal should
  // be a single-event plan with everything else at its floor.
  const fuzz::CampaignCase c = big_case();
  const fuzz::FailPredicate pred = [](const fuzz::CampaignCase& k) {
    for (const fault::FaultEvent& e : k.plan.events())
      if (e.kind == fault::FaultKind::kCoreCrash) return true;
    return false;
  };
  if (!pred(c)) GTEST_SKIP() << "no crash event in the sampled plan";
  expect_minimal(c, pred);
  const fuzz::ShrinkResult r = fuzz::shrink_case(c, pred);
  EXPECT_EQ(r.minimal.plan.size(), 1u);
  EXPECT_EQ(r.minimal.cores, 2u);
  EXPECT_EQ(r.minimal.items, 1u);
}

TEST(FuzzShrink, FixpointIsOneMinimalForAStructurePredicate) {
  const fuzz::CampaignCase c = big_case();
  expect_minimal(c, [](const fuzz::CampaignCase& k) { return k.cores >= 3; });
  expect_minimal(c, [](const fuzz::CampaignCase& k) {
    return k.items >= 2 && k.compute_cycles >= 200;
  });
}

TEST(FuzzShrink, NonFailingInputReturnsUnchanged) {
  const fuzz::CampaignCase c = big_case();
  const fuzz::ShrinkResult r =
      fuzz::shrink_case(c, [](const fuzz::CampaignCase&) { return false; });
  EXPECT_EQ(r.minimal.to_json(), c.to_json());
  EXPECT_EQ(r.steps, 0u);
}

TEST(FuzzShrink, BudgetStopsTheWalkAndIsReported) {
  const fuzz::CampaignCase c = big_case();
  const fuzz::ShrinkResult r = fuzz::shrink_case(
      c, [](const fuzz::CampaignCase&) { return true; }, /*max_attempts=*/3);
  EXPECT_TRUE(r.at_budget);
  EXPECT_LE(r.attempts, 3u);
}

TEST(FuzzShrink, ShrinkIsDeterministic) {
  const fuzz::CampaignCase c = big_case();
  const fuzz::FailPredicate pred = [](const fuzz::CampaignCase& k) {
    return k.cores >= 3 || k.plan.size() >= 2;
  };
  const fuzz::ShrinkResult a = fuzz::shrink_case(c, pred);
  const fuzz::ShrinkResult b = fuzz::shrink_case(c, pred);
  EXPECT_EQ(a.minimal.to_json(), b.minimal.to_json());
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.attempts, b.attempts);
}

}  // namespace
