#include <gtest/gtest.h>

#include "maps/ir.hpp"
#include "maps/partition.hpp"
#include "maps/workloads.hpp"

namespace rw::maps {
namespace {

TEST(Ir, DependenceKinds) {
  SeqProgram p;
  const auto x = p.add_var("x");
  const auto y = p.add_var("y");
  // s0: x = ...; s1: y = f(x); s2: x = g(y)  -> flow s0->s1, flow s1->s2,
  // anti s1->s2 (reads x, then x written), output s0->s2.
  p.add_stmt("s0", 10, {}, {x});
  p.add_stmt("s1", 10, {x}, {y});
  p.add_stmt("s2", 10, {y}, {x});
  const auto deps = p.dependences();

  int flow = 0, anti = 0, output = 0;
  for (const auto& d : deps) {
    switch (d.kind) {
      case DepKind::kFlow: ++flow; break;
      case DepKind::kAnti: ++anti; break;
      case DepKind::kOutput: ++output; break;
    }
  }
  EXPECT_EQ(flow, 2);
  EXPECT_EQ(anti, 1);
  EXPECT_EQ(output, 1);
}

TEST(Ir, FlowDepsCarryBytes) {
  SeqProgram p;
  const auto big = p.add_var("big", 1024);
  p.add_stmt("w", 10, {}, {big});
  p.add_stmt("r", 10, {big}, {});
  const auto deps = p.dependences();
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].bytes, 1024u);
}

TEST(Ir, CriticalPathOfChainEqualsTotal) {
  SeqProgram p;
  const auto v = p.add_var("v");
  p.add_stmt("a", 100, {}, {v});
  p.add_stmt("b", 200, {v}, {v});
  p.add_stmt("c", 300, {v}, {v});
  EXPECT_EQ(p.total_cycles(), 600u);
  EXPECT_EQ(p.critical_path(), 600u);
  EXPECT_DOUBLE_EQ(p.ideal_speedup(), 1.0);
}

TEST(Ir, CriticalPathOfIndependentWork) {
  SeqProgram p;
  for (int i = 0; i < 4; ++i) {
    const auto v = p.add_var("v" + std::to_string(i));
    p.add_stmt("s" + std::to_string(i), 100, {}, {v});
  }
  EXPECT_EQ(p.critical_path(), 100u);
  EXPECT_DOUBLE_EQ(p.ideal_speedup(), 4.0);
}

TEST(Ir, PeCostFactors) {
  EXPECT_DOUBLE_EQ(pe_cost_factor(StmtKind::kGeneric, sim::PeClass::kRisc),
                   1.0);
  EXPECT_LT(pe_cost_factor(StmtKind::kDspKernel, sim::PeClass::kDsp), 1.0);
  EXPECT_GT(pe_cost_factor(StmtKind::kControl, sim::PeClass::kDsp), 1.0);
}

TEST(Partition, SequentialBaselineIsOneTask) {
  const auto prog = jpeg_encoder_program(4);
  const auto r = sequential_partition(prog);
  EXPECT_EQ(r.graph.tasks().size(), 1u);
  EXPECT_EQ(r.cut_bytes, 0u);
  EXPECT_EQ(r.graph.task(TaskNodeId{0}).ref_cycles, prog.total_cycles());
}

TEST(Partition, PreservesTotalWork) {
  const auto prog = jpeg_encoder_program(8);
  const auto r = partition_program(prog, {4, 1.0});
  EXPECT_EQ(r.graph.total_ref_cycles(), prog.total_cycles());
  EXPECT_EQ(r.stmt_to_task.size(), prog.stmts().size());
}

TEST(Partition, ProducesAcyclicTaskGraph) {
  for (std::size_t k : {2u, 3u, 4u, 8u}) {
    const auto r = partition_program(jpeg_encoder_program(8),
                                     {k, 1.0});
    EXPECT_TRUE(r.graph.is_acyclic()) << "k=" << k;
    EXPECT_LE(r.graph.tasks().size(), k + 1);  // SCC merge may reduce
  }
}

TEST(Partition, BalancesLoadAcrossTasks) {
  const auto prog = jpeg_encoder_program(16);
  const auto r = partition_program(prog, {4, 0.2});
  ASSERT_GE(r.graph.tasks().size(), 2u);
  Cycles max_t = 0, min_t = UINT64_MAX;
  for (const auto& t : r.graph.tasks()) {
    max_t = std::max(max_t, t.ref_cycles);
    min_t = std::min(min_t, t.ref_cycles);
  }
  // Within 3x of each other (greedy balance on a lumpy program).
  EXPECT_LT(static_cast<double>(max_t),
            3.0 * static_cast<double>(std::max<Cycles>(min_t, 1)));
}

TEST(Partition, BoundSpeedupShapes) {
  const auto prog = jpeg_encoder_program(16);
  const auto seq = sequential_partition(prog);
  EXPECT_DOUBLE_EQ(seq.bound_speedup(8), 1.0);  // one task can't speed up
  const auto par = partition_program(prog, {8, 1.0});
  EXPECT_GT(par.bound_speedup(8), 1.5);
  // More PEs never hurt the bound.
  EXPECT_GE(par.bound_speedup(8), par.bound_speedup(2));
}

TEST(Partition, CommWeightReducesCut) {
  const auto prog = jpeg_encoder_program(16);
  const auto loose = partition_program(prog, {8, 0.0});
  const auto tight = partition_program(prog, {8, 8.0});
  EXPECT_LE(tight.cut_bytes, loose.cut_bytes);
}

TEST(Partition, JpegIdealSpeedupIsSubstantial) {
  // The paper: "Initial case studies on partitioning applications like
  // JPEG encoder indicate promising speedup results".
  const auto prog = jpeg_encoder_program(16);
  EXPECT_GT(prog.ideal_speedup(), 4.0);
}

TEST(Workloads, MixedProgramHasBothKinds) {
  const auto prog = mixed_kind_program(4);
  bool has_ctrl = false, has_dsp = false;
  for (const auto& s : prog.stmts()) {
    has_ctrl |= s.kind == StmtKind::kControl;
    has_dsp |= s.kind == StmtKind::kDspKernel;
  }
  EXPECT_TRUE(has_ctrl);
  EXPECT_TRUE(has_dsp);
}

}  // namespace
}  // namespace rw::maps
