// rw::critpath: dependence-graph invariants, replay exactness, what-if
// accuracy against re-simulated ground truth, the remap adviser's
// never-slower contract, and the allocator placement hints.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "critpath/advise.hpp"
#include "critpath/driver.hpp"
#include "critpath/whatif.hpp"
#include "maps/mapping.hpp"
#include "maps/workloads.hpp"
#include "perf/traceview.hpp"
#include "sched/spacealloc.hpp"

namespace rw::critpath {
namespace {

/// Hand-built 3-task pipeline rx -> proc -> tx across two PEs: the
/// smallest graph whose critical path mixes compute and fabric segments.
maps::TaskGraph three_stage() {
  maps::TaskGraph g;
  const auto rx = g.add_task("rx", 10'000);
  const auto proc = g.add_task("proc", 40'000);
  const auto tx = g.add_task("tx", 10'000);
  g.add_edge(rx, proc, 4096);
  g.add_edge(proc, tx, 2048);
  return g;
}

sim::PlatformConfig bus2() { return sim::PlatformConfig::homogeneous(2); }

sim::PlatformConfig mesh4() {
  sim::PlatformConfig cfg = sim::PlatformConfig::homogeneous(4);
  cfg.interconnect = sim::PlatformConfig::Icn::kMesh;
  cfg.mesh.width = 2;
  cfg.mesh.height = 2;
  return cfg;
}

// ------------------------------------------------------------- DepGraph

TEST(DepGraph, EmptyTraceYieldsEmptyGraph) {
  const auto view = perf::TraceView::from_events({});
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.makespan(), 0u);
  const DepGraph g = DepGraph::build(view, bus2());
  EXPECT_TRUE(g.empty());
  EXPECT_TRUE(g.is_acyclic());
  // Analyses on the empty graph are well-defined no-ops.
  const Retimed r = retime(g);
  EXPECT_EQ(r.makespan, 0u);
  const Attribution a = attribute(g, r);
  EXPECT_EQ(a.makespan, 0u);
  EXPECT_TRUE(a.path.empty());
}

TEST(DepGraph, AcyclicAndEdgeConservation) {
  const maps::TaskGraph app = three_stage();
  const std::vector<std::size_t> map{0, 1, 0};
  const DepGraph g = trace_mapping(app, bus2(), map);

  ASSERT_FALSE(g.empty());
  EXPECT_TRUE(g.is_acyclic());
  // One node per task and per edge; each node consumed exactly two trace
  // events (the traced executor emits nothing else).
  EXPECT_EQ(g.nodes().size(), app.tasks().size() + app.edges().size());
  // Every app edge appears with both endpoints traced: two dependence
  // edges each (producer -> transfer -> consumer).
  EXPECT_EQ(g.dependence_edge_count(), 2 * app.edges().size());
  for (const DepEdge& e : g.edges()) EXPECT_LT(e.src, e.dst);
  // Task identities resolve.
  for (const auto& t : app.tasks())
    EXPECT_NE(g.node_of_task(t.id.value()), kNoNode);
  EXPECT_EQ(g.node_of_task(999), kNoNode);
}

TEST(DepGraph, TraceEventAccounting) {
  const maps::TaskGraph app = three_stage();
  sim::PlatformConfig cfg = bus2();
  cfg.trace_enabled = true;
  sim::Platform platform(cfg);
  platform.tracer().set_enabled(true);
  const TimePs makespan =
      maps::execute_on_platform_traced(app, {0, 1, 0}, platform);
  const auto view = perf::TraceView::from_events(platform.tracer().events());
  // The executor emits exactly two events per span, nothing half-open.
  EXPECT_EQ(view.consumed_events(), view.total_events());
  EXPECT_EQ(view.span_count(), app.tasks().size() + app.edges().size());
  EXPECT_EQ(view.makespan(), makespan);
  // Timing is bit-identical to the untraced executor.
  sim::Platform quiet(bus2());
  EXPECT_EQ(maps::execute_on_platform(app, {0, 1, 0}, quiet), makespan);
}

TEST(DepGraph, SamePeDependencesSurviveAsLocalTransfers) {
  const maps::TaskGraph app = three_stage();
  // Everything on PE 0: no fabric traffic, yet both edges must survive.
  const DepGraph g = trace_mapping(app, bus2(), {0, 0, 0});
  std::size_t locals = 0;
  for (const Segment& s : g.nodes())
    if (s.kind == SegKind::kTransfer) {
      EXPECT_TRUE(s.local);
      EXPECT_EQ(s.obs_duration(), 0u);
      ++locals;
    }
  EXPECT_EQ(locals, app.edges().size());
  EXPECT_EQ(g.dependence_edge_count(), 2 * app.edges().size());
}

// --------------------------------------------------------------- replay

TEST(Retime, BaselineReproducesObservedTimesExactly) {
  for (const sim::PlatformConfig& cfg : {bus2(), mesh4()}) {
    const maps::TaskGraph app = maps::h264_encoder_taskgraph(3);
    const auto heft =
        maps::heft_map(app, [&] {
          std::vector<maps::PeDesc> pes;
          for (const auto& c : cfg.cores) pes.push_back({c.cls, c.frequency});
          return pes;
        }(), comm_cost_for(cfg));
    const DepGraph g = trace_mapping(app, cfg, heft.task_to_pe);
    const Retimed r = retime(g, {}, &app);
    EXPECT_EQ(r.makespan, g.observed_makespan());
    for (const Segment& s : g.nodes()) {
      EXPECT_EQ(r.start[s.id], s.obs_start) << seg_kind_name(s.kind);
      EXPECT_EQ(r.finish[s.id], s.obs_finish) << seg_kind_name(s.kind);
    }
  }
}

TEST(Retime, OpsLinearInTraceSize) {
  // The O(trace events) contract in deterministic operation counts: ops
  // per node stays bounded as the trace grows.
  double small_ratio = 0, large_ratio = 0;
  for (const std::uint32_t slices : {2u, 8u}) {
    const maps::TaskGraph app = maps::h264_encoder_taskgraph(slices);
    std::vector<std::size_t> map(app.tasks().size());
    for (std::size_t i = 0; i < map.size(); ++i) map[i] = i % 4;
    const DepGraph g = trace_mapping(app, mesh4(), map);
    const Retimed r = retime(g);
    const double ratio = static_cast<double>(r.ops) /
                         static_cast<double>(g.nodes().size());
    (slices == 2 ? small_ratio : large_ratio) = ratio;
  }
  EXPECT_LE(large_ratio, 2.0 * small_ratio + 8.0);
}

TEST(Attribution, SumsExactlyToMakespanOnPipeline) {
  const maps::TaskGraph app = three_stage();
  const DepGraph g = trace_mapping(app, bus2(), {0, 1, 0});
  const Retimed r = retime(g, {}, &app);
  const Attribution a = attribute(g, r);

  ASSERT_GT(a.makespan, 0u);
  // The binding chain covers the makespan with no gap, by invariant.
  DurationPs sum = 0;
  for (const PathStep& s : a.path) sum += s.contribution;
  EXPECT_EQ(sum, a.makespan);
  EXPECT_EQ(a.idle_ps, 0u);
  EXPECT_EQ(a.compute_ps + a.transfer_ps + a.dma_ps, a.makespan);
  // All three tasks compute on the path (it IS the pipeline), and the
  // cross-PE hops charge the bus.
  EXPECT_EQ(a.by_task.size(), 3u);
  ASSERT_FALSE(a.by_link.empty());
  EXPECT_EQ(a.by_link.front().name, "bus");
  // Per-entity shares are fractions of the makespan.
  for (const Owner& o : a.by_task) {
    EXPECT_GE(o.share, 0.0);
    EXPECT_LE(o.share, 1.0);
  }
}

TEST(Attribution, MeshChargesLinks) {
  maps::TaskGraph g;
  const auto a = g.add_task("a", 1000);
  const auto b = g.add_task("b", 1000);
  g.add_edge(a, b, 64 * 1024);  // heavy: the transfer must be on the path
  const DepGraph dep = trace_mapping(g, mesh4(), {0, 3});  // 2 hops
  const Attribution attr = attribute(dep, retime(dep, {}, &g));
  EXPECT_GT(attr.transfer_ps, 0u);
  std::size_t links = 0;
  for (const Owner& o : attr.by_link)
    if (o.name.rfind("link", 0) == 0) ++links;
  EXPECT_EQ(links, 2u);  // both route hops own part of the makespan
}

// --------------------------------------------------------------- what-if

TEST(WhatIf, SingleEditsPredictResimExactly) {
  const maps::TaskGraph app = maps::h264_encoder_taskgraph(3);
  for (const sim::PlatformConfig& cfg : {bus2(), mesh4()}) {
    std::vector<maps::PeDesc> pes;
    for (const auto& c : cfg.cores) pes.push_back({c.cls, c.frequency});
    const auto heft = maps::heft_map(app, pes, comm_cost_for(cfg));
    const std::vector<Edit> sweep{
        Edit::faster_core(0, 2.0),       Edit::faster_core(1, 4.0),
        Edit::faster_link(2.0),          Edit::wider_link(2.0),
        Edit::move_task(0, 1),           Edit::move_task(2, 0),
        Edit::remove_dependence(
            app.edges().front().src.value(), app.edges().front().dst.value()),
    };
    for (const Edit& e : sweep) {
      const std::vector<Edit> one{e};
      const Validation v = validate(app, cfg, heft.task_to_pe, one);
      EXPECT_EQ(v.pred.baseline, v.truth.baseline) << e.describe();
      EXPECT_EQ(v.pred.predicted, v.truth.edited) << e.describe();
      EXPECT_LE(v.rel_error, 0.10) << e.describe();  // the stated contract
    }
  }
}

TEST(WhatIf, CompoundEditsStayWithinContract) {
  const maps::TaskGraph app = three_stage();
  const std::vector<Edit> edits{Edit::faster_core(1, 2.0),
                                Edit::move_task(2, 1),
                                Edit::wider_link(4.0)};
  const Validation v = validate(app, bus2(), {0, 1, 0}, edits);
  EXPECT_EQ(v.pred.predicted, v.truth.edited);
  EXPECT_LE(v.rel_error, 0.10);
}

TEST(WhatIf, RemoveDependenceDropsTransferNode) {
  const maps::TaskGraph app = three_stage();
  const DepGraph g = trace_mapping(app, bus2(), {0, 1, 0});
  const std::vector<Edit> edits{Edit::remove_dependence(0, 1)};
  const Retimed r = retime(g, edits, &app);
  std::size_t dropped = 0;
  for (const char d : r.dropped) dropped += d;
  EXPECT_EQ(dropped, 1u);
  EXPECT_LE(r.makespan, retime(g, {}, &app).makespan);
}

TEST(WhatIf, EditDescriptionsAreStable) {
  EXPECT_EQ(Edit::faster_core(2).describe(), "faster-core(pe2, x2.00)");
  EXPECT_EQ(Edit::faster_link(1.5).describe(), "faster-link(x1.50)");
  EXPECT_EQ(Edit::wider_link().describe(), "wider-link(x2.00)");
  EXPECT_EQ(Edit::remove_dependence(3, 7).describe(), "remove-dep(3>7)");
  EXPECT_EQ(Edit::move_task(5, 1).describe(), "move-task(5->pe1)");
}

// ---------------------------------------------------------------- advise

TEST(Advise, NeverSlowerThanBaselineWhenResimulated) {
  CritOptions opts;
  opts.cores = 4;
  for (const std::string& name : corpus_names()) {
    for (const bool mesh : {false, true}) {
      opts.mesh = mesh;
      const auto c = build_corpus_case(name, opts);
      ASSERT_TRUE(c.ok()) << name;
      const RemapAdvice adv = advise_remap(c.value().graph, c.value().cfg,
                                           c.value().task_to_pe, 3);
      EXPECT_LE(adv.resim_makespan, adv.baseline_makespan) << name;
      // The advised mapping's re-simulated makespan is what it claims.
      sim::Platform platform(c.value().cfg);
      EXPECT_EQ(maps::execute_on_platform(c.value().graph, adv.task_to_pe,
                                          platform),
                adv.resim_makespan)
          << name;
      EXPECT_GE(adv.speedup(), 1.0) << name;
    }
  }
}

TEST(Advise, FindsTheObviousMove) {
  // Two independent heavy tasks crammed onto one PE of two: moving one
  // away is the textbook win the hill-climb must find.
  maps::TaskGraph g;
  g.add_task("left", 100'000);
  g.add_task("right", 100'000);
  const RemapAdvice adv = advise_remap(g, bus2(), {0, 0}, 4);
  EXPECT_EQ(adv.moves, 1u);
  EXPECT_FALSE(adv.reverted);
  EXPECT_LT(adv.resim_makespan, adv.baseline_makespan);
  EXPECT_EQ(adv.predicted_makespan, adv.resim_makespan);
  const std::set<std::size_t> used(adv.task_to_pe.begin(),
                                   adv.task_to_pe.end());
  EXPECT_EQ(used.size(), 2u);
}

TEST(Advise, HintsReflectAttribution) {
  CritOptions opts;
  const auto c = build_corpus_case("h264", opts);
  ASSERT_TRUE(c.ok());
  const RemapAdvice adv =
      advise_remap(c.value().graph, c.value().cfg, c.value().task_to_pe, 2);
  EXPECT_FALSE(adv.hints.preferred_pes.empty());
  for (const std::size_t pe : adv.hints.preferred_pes)
    EXPECT_LT(pe, c.value().cfg.cores.size());
  EXPECT_GE(adv.hints.comm_fraction, 0.0);
  EXPECT_LE(adv.hints.comm_fraction, 1.0);
  EXPECT_GE(adv.hints.gang_cores, 1u);
  // Partition advice scales comm_weight with the measured comm share.
  maps::PartitionConfig base;
  const maps::PartitionConfig tuned = adv.hints.advise_partition(base);
  EXPECT_GE(tuned.comm_weight, base.comm_weight);
  EXPECT_GE(tuned.max_tasks, base.max_tasks);
}

// ------------------------------------------------- allocator integration

TEST(AllocatePreferred, PreferredIndicesWinOverLowestFree) {
  sched::SpaceAllocator alloc(8);
  const auto got = alloc.allocate_preferred(3, 3, {5, 2, 7});
  EXPECT_EQ(got, (std::vector<std::size_t>{2, 5, 7}));  // sorted, as spec'd
}

TEST(AllocatePreferred, FallsBackToLowestFreeAndSkipsBusy) {
  sched::SpaceAllocator alloc(8);
  const auto first = alloc.allocate(2, 2);  // grabs 0, 1
  ASSERT_EQ(first.size(), 2u);
  // 0 busy, 9 foreign: both skipped; remainder from the lowest free.
  const auto got = alloc.allocate_preferred(3, 3, {0, 9, 6});
  EXPECT_EQ(got, (std::vector<std::size_t>{2, 3, 6}));
  alloc.release(got);
  alloc.release(first);
  EXPECT_EQ(alloc.available(), alloc.capacity());
}

TEST(AllocatePreferred, EmptyPreferenceEqualsAllocate) {
  sched::SpaceAllocator a(6), b(6);
  EXPECT_EQ(a.allocate_preferred(4, 4, {}), b.allocate(4, 4));
}

TEST(AllocatePreferred, HonoursMinCoresContract) {
  sched::SpaceAllocator alloc(4);
  const auto all = alloc.allocate(4, 4);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_TRUE(alloc.allocate_preferred(1, 2, {0, 1}).empty());
  alloc.release(all);
  EXPECT_TRUE(alloc.allocate_preferred(0, 2, {0}).empty());  // min 0 invalid
}

TEST(AllocatePreferred, HintsGlueGrantsHotCoresFirst) {
  sched::SpaceAllocator alloc(8);
  PlacementHints hints;
  hints.preferred_pes = {6, 4};
  const auto got = allocate_with_hints(alloc, hints, 2, 2);
  EXPECT_EQ(got, (std::vector<std::size_t>{4, 6}));
}

// ------------------------------------------------------------ CLI driver

TEST(Driver, ParseArgs) {
  const auto opts = parse_crit_args(
      {"--mesh", "--cores", "8", "--rounds", "2", "--seed", "7", "jpeg"});
  ASSERT_TRUE(opts.ok());
  EXPECT_TRUE(opts.value().mesh);
  EXPECT_EQ(opts.value().cores, 8u);
  EXPECT_EQ(opts.value().rounds, 2);
  EXPECT_EQ(opts.value().seed, 7u);
  ASSERT_EQ(opts.value().workloads.size(), 1u);
  EXPECT_EQ(opts.value().workloads.front(), "jpeg");
  EXPECT_FALSE(parse_crit_args({"--bogus"}).ok());
  EXPECT_FALSE(parse_crit_args({"--cores"}).ok());
}

TEST(Driver, ListPrintsCorpus) {
  CritOptions opts;
  opts.list = true;
  std::ostringstream out;
  const CritReport rep = run_critpath(opts, out);
  EXPECT_EQ(rep.exit_code, 0);
  for (const std::string& n : corpus_names())
    EXPECT_NE(out.str().find(n), std::string::npos) << n;
}

TEST(Driver, RunMeetsContractsAndEnvelopesJson) {
  CritOptions opts;
  opts.workloads = {"pipeline3", "h264"};
  opts.write_files = false;
  opts.json_stdout = true;
  std::ostringstream out;
  const CritReport rep = run_critpath(opts, out);
  EXPECT_EQ(rep.exit_code, 0);  // nonzero would mean a contract miss
  ASSERT_EQ(rep.workloads.size(), 2u);
  for (const WorkloadReport& r : rep.workloads) {
    EXPECT_EQ(r.retimed, r.observed);
    for (const WhatIfRow& row : r.whatifs) EXPECT_LE(row.rel_error, 0.10);
    EXPECT_LE(r.advice.resim_makespan, r.advice.baseline_makespan);
  }
  EXPECT_NE(out.str().find("\"schema\": \"rw-tool-1\""), std::string::npos);
  EXPECT_NE(out.str().find("\"tool\": \"rwcritpath\""), std::string::npos);
  // Unknown workloads are a usage error, not a crash.
  CritOptions bad;
  bad.workloads = {"nope"};
  bad.write_files = false;
  std::ostringstream err;
  EXPECT_EQ(run_critpath(bad, err).exit_code, 2);
}

TEST(Driver, JsonOutputIsDeterministic) {
  CritOptions opts;
  opts.workloads = {"pipeline3"};
  opts.write_files = false;
  opts.legacy_json = true;
  opts.json_stdout = true;
  std::ostringstream a, b;
  run_critpath(opts, a);
  run_critpath(opts, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"schema\": \"rw-critpath-1\""), std::string::npos);
}

}  // namespace
}  // namespace rw::critpath
