#include "sim/process.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rw::sim {
namespace {

Process simple_waiter(Kernel& k, std::vector<TimePs>& log) {
  log.push_back(k.now());
  co_await delay(k, 100);
  log.push_back(k.now());
  co_await delay(k, 50);
  log.push_back(k.now());
}

TEST(Process, DelaysAdvanceSimulatedTime) {
  Kernel k;
  std::vector<TimePs> log;
  spawn(k, simple_waiter(k, log));
  k.run();
  EXPECT_EQ(log, (std::vector<TimePs>{0, 100, 150}));
}

Process counter_proc(Kernel& k, int n, DurationPs step, int& count) {
  for (int i = 0; i < n; ++i) {
    co_await delay(k, step);
    ++count;
  }
}

TEST(Process, MultipleProcessesInterleaveDeterministically) {
  Kernel k;
  int a = 0, b = 0;
  spawn(k, counter_proc(k, 10, 7, a));
  spawn(k, counter_proc(k, 10, 11, b));
  k.run();
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, 10);
  EXPECT_EQ(k.now(), 110u);
}

TEST(Process, AbandonedProcessIsDestroyedByKernel) {
  // A process still waiting when the kernel dies must not leak (ASan-level
  // property; here we just verify no crash and no resume-after-free).
  Kernel* k = new Kernel;
  int count = 0;
  spawn(*k, counter_proc(*k, 1000000, 5, count));
  k->run(/*max_events=*/100);
  delete k;  // destroys the still-suspended coroutine frame
  SUCCEED();
}

Process trigger_waiter(Trigger& t, std::vector<int>& log, int id) {
  co_await t.wait();
  log.push_back(id);
}

TEST(Process, TriggerWakesAllWaiters) {
  Kernel k;
  Trigger t(k);
  std::vector<int> log;
  spawn(k, trigger_waiter(t, log, 1));
  spawn(k, trigger_waiter(t, log, 2));
  k.run();  // processes reach the wait
  EXPECT_EQ(t.waiter_count(), 2u);
  t.fire();
  k.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_EQ(t.waiter_count(), 0u);
}

Process double_waiter(Kernel& k, Trigger& t, int& wakes) {
  co_await t.wait();
  ++wakes;
  co_await t.wait();
  ++wakes;
  (void)k;
}

TEST(Process, TriggerDoesNotWakeLateWaiters) {
  Kernel k;
  Trigger t(k);
  int wakes = 0;
  spawn(k, double_waiter(k, t, wakes));
  k.run();
  t.fire();
  k.run();
  EXPECT_EQ(wakes, 1);  // second wait needs a second fire
  t.fire();
  k.run();
  EXPECT_EQ(wakes, 2);
}

Process thrower(Kernel& k) {
  co_await delay(k, 10);
  throw std::runtime_error("model bug");
}

TEST(Process, ExceptionPropagatesOutOfRun) {
  Kernel k;
  spawn(k, thrower(k));
  EXPECT_THROW(k.run(), std::runtime_error);
}

}  // namespace
}  // namespace rw::sim
