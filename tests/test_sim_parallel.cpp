// Tile-partitioned parallel kernel (sim/parallel.hpp): config validation,
// conservative-window mechanics on deliberately tiny calendar wheels, the
// racing-mailbox stress the CI TSan job runs with real threads, and the
// headline contract — ExecMode::kParallel is bit-identical to the
// kSequential reference across the whole workload/fault corpus.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_budget.hpp"
#include "fault/scenario.hpp"
#include "perf/session.hpp"
#include "perf/workload.hpp"
#include "sim/kernel.hpp"
#include "sim/parallel.hpp"
#include "sim/platform.hpp"
#include "vpdebug/replay.hpp"

namespace {

using namespace rw;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// RAII guard for the process-wide thread budget test hook.
struct BudgetGuard {
  explicit BudgetGuard(std::uint32_t total)
      : prev(common::thread_budget_set_total_for_test(total)) {}
  ~BudgetGuard() { common::thread_budget_set_total_for_test(prev); }
  std::uint32_t prev;
};

// ------------------------------------------------------------- validation

TEST(TilingValidation, RejectsZeroTiles) {
  sim::PlatformConfig cfg = sim::PlatformConfig::homogeneous(4);
  cfg.kernel.num_tiles = 0;
  const Status st = cfg.validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("num_tiles"), std::string::npos);
}

TEST(TilingValidation, RejectsMoreTilesThanCores) {
  sim::PlatformConfig cfg = sim::PlatformConfig::homogeneous(2);
  cfg.kernel.num_tiles = 3;
  cfg.kernel.exec = sim::ExecMode::kParallel;
  const Status st = cfg.validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("core count"), std::string::npos);
  EXPECT_THROW(sim::Platform{cfg}, std::invalid_argument);
}

TEST(TilingValidation, RejectsOutOfRangeCoreTile) {
  sim::PlatformConfig cfg = sim::PlatformConfig::homogeneous(4);
  cfg.kernel.num_tiles = 2;
  cfg.cores[3].tile = 2;  // only tiles 0 and 1 exist
  const Status st = cfg.validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("core3"), std::string::npos);
}

TEST(TilingValidation, RejectsZeroLookaheadFabric) {
  sim::PlatformConfig cfg = sim::PlatformConfig::homogeneous(4);
  sim::apply_tiling(cfg, 2, /*partition_cores=*/true);
  cfg.bus.arbitration_cycles = 0;  // bus latency floor collapses to 0
  ASSERT_EQ(sim::min_cross_tile_latency(cfg), 0u);
  const Status st = cfg.validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("lookahead"), std::string::npos);
  EXPECT_THROW(sim::Platform{cfg}, std::invalid_argument);
}

TEST(TilingValidation, SingleTileAlwaysValid) {
  const sim::PlatformConfig cfg = sim::PlatformConfig::homogeneous(1);
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(TilingValidation, ApplyTilingClampsToCoreCount) {
  sim::PlatformConfig cfg = sim::PlatformConfig::homogeneous(2);
  sim::apply_tiling(cfg, 8, /*partition_cores=*/true);
  EXPECT_EQ(cfg.kernel.num_tiles, 2u);
  EXPECT_TRUE(cfg.validate().ok());
  // Contiguous balanced blocks.
  EXPECT_EQ(cfg.cores[0].tile, 0u);
  EXPECT_EQ(cfg.cores[1].tile, 1u);
}

// ------------------------------------------------- tiny-wheel storm soups

// Deterministic per-tile soup for bare-kernel engine tests. Every event
// folds (id, now) into its tile's hash and schedules children, a slice of
// them cross-tile landing exactly `lookahead` deep — the horizon boundary
// for the deliberately tiny calendar wheels below, so every barrier drain
// exercises the spill-rebase path.
struct Soup {
  struct Tile {
    sim::Kernel* k = nullptr;
    std::uint64_t budget = 0;
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t order_hash = 1469598103934665603ULL;
  };
  sim::TiledEngine* engine = nullptr;
  DurationPs lookahead = 0;
  std::vector<Tile> tiles;

  struct Ev {
    Soup* s;
    std::uint32_t tile;
    std::uint64_t id;
    void operator()() const { s->fire(tile, id); }
  };

  void fire(std::uint32_t t, std::uint64_t id) {
    Tile& tl = tiles[t];
    ++tl.executed;
    tl.order_hash = (tl.order_hash ^ id) * 1099511628211ULL;
    tl.order_hash = (tl.order_hash ^ tl.k->now()) * 1099511628211ULL;
    const auto n = static_cast<std::uint32_t>(tiles.size());
    for (int c = 0; c < 3 && tl.scheduled < tl.budget; ++c) {
      const std::uint64_t child =
          (static_cast<std::uint64_t>(t) << 40) | tl.scheduled++;
      const std::uint64_t h = mix64(child);
      const int pri = static_cast<int>(h % 3) - 1;
      if (n > 1 && h % 4 == 0) {
        const std::uint32_t dst =
            (t + 1 + static_cast<std::uint32_t>((h >> 16) % (n - 1))) % n;
        // Exactly lookahead-deep half the time (the earliest legal instant,
        // and the wheel-horizon edge), jittered otherwise.
        const TimePs at =
            tl.k->now() + lookahead + (h % 2 == 0 ? 0 : h % 97);
        engine->post(t, dst, at, Ev{this, dst, child}, pri);
      } else {
        tl.k->schedule_in(h % 61, Ev{this, t, child}, pri);
      }
    }
  }

  [[nodiscard]] std::vector<std::uint64_t> digest() const {
    std::vector<std::uint64_t> d;
    for (const Tile& t : tiles) {
      d.push_back(t.executed);
      d.push_back(t.order_hash);
      d.push_back(t.k->now());
    }
    return d;
  }
};

// Run one soup over `tiles` kernels with a tiny wheel (16 ps buckets, 8 of
// them = 128 ps horizon — far smaller than the event span, so cross posts
// and rebase churn constantly) and return the per-tile digests.
std::vector<std::uint64_t> run_soup(std::uint32_t tiles, std::uint64_t seed,
                                    bool parallel, bool force_threads,
                                    std::uint64_t* events = nullptr,
                                    bool* used_parallel = nullptr) {
  constexpr DurationPs kLookahead = 128;
  sim::KernelConfig kcfg;
  kcfg.policy = sim::QueuePolicy::kCalendar;
  kcfg.bucket_width_log2 = 4;
  kcfg.num_buckets_log2 = 3;
  std::vector<std::unique_ptr<sim::Kernel>> kernels;
  std::vector<sim::Kernel*> ptrs;
  for (std::uint32_t t = 0; t < tiles; ++t) {
    kernels.push_back(std::make_unique<sim::Kernel>(kcfg));
    ptrs.push_back(kernels.back().get());
  }
  sim::TiledEngine engine(
      ptrs, kLookahead,
      {parallel ? sim::ExecMode::kParallel : sim::ExecMode::kSequential,
       force_threads});
  Soup soup;
  soup.engine = &engine;
  soup.lookahead = kLookahead;
  soup.tiles.resize(tiles);
  for (std::uint32_t t = 0; t < tiles; ++t) {
    Soup::Tile& tl = soup.tiles[t];
    tl.k = ptrs[t];
    tl.budget = 4000;
    for (std::uint64_t r = 0; r < 4; ++r)
      tl.k->schedule_at(
          mix64(seed ^ (t * 977) ^ r) % 50,
          Soup::Ev{&soup, t,
                   (static_cast<std::uint64_t>(t) << 40) | tl.scheduled++});
  }
  engine.run();
  if (events != nullptr) *events = engine.events_executed();
  if (used_parallel != nullptr) *used_parallel = engine.last_run_parallel();
  return soup.digest();
}

TEST(TiledEngine, TinyWheelSpillRebaseIdentity) {
  for (const std::uint32_t tiles : {2u, 3u}) {
    for (const std::uint64_t seed : {1ull, 42ull, 1234ull}) {
      const auto seq = run_soup(tiles, seed, /*parallel=*/false, false);
      const auto par = run_soup(tiles, seed, /*parallel=*/true,
                                /*force_threads=*/true);
      EXPECT_EQ(seq, par) << "tiles=" << tiles << " seed=" << seed;
    }
  }
}

TEST(TiledEngine, SoupActuallyExecutesAndReruns) {
  std::uint64_t ev = 0;
  const auto a = run_soup(3, 42, false, false, &ev);
  EXPECT_GE(ev, 3u * 4000u);  // every scheduled child executed
  const auto b = run_soup(3, 42, false, false);
  EXPECT_EQ(a, b);  // rerun-stable, not just mode-stable
}

// The CI TSan job runs this with real threads: every tile posts to every
// other tile every event, so all (src,dst) mailboxes and the barrier
// protocol are exercised under maximum contention.
TEST(TiledEngine, RacingMailboxesUnderThreads) {
  constexpr DurationPs kLookahead = 100;
  constexpr std::uint32_t kTiles = 4;
  struct Racer {
    sim::TiledEngine* engine = nullptr;
    struct Tile {
      sim::Kernel* k = nullptr;
      std::uint64_t left = 0;
      std::uint64_t hash = 1469598103934665603ULL;
    };
    std::vector<Tile> tiles;
    void fire(std::uint32_t t, std::uint64_t id) {
      Tile& tl = tiles[t];
      tl.hash = (tl.hash ^ id ^ tl.k->now()) * 1099511628211ULL;
      if (tl.left == 0) return;
      --tl.left;
      for (std::uint32_t dst = 0; dst < tiles.size(); ++dst) {
        if (dst == t) continue;
        engine->post(t, dst, tl.k->now() + kLookahead + (id + dst) % 7,
                     [this, dst, id] { fire(dst, mix64(id ^ dst)); },
                     static_cast<int>(id % 3) - 1);
      }
    }
  };
  auto run = [&](bool parallel) {
    std::vector<std::unique_ptr<sim::Kernel>> kernels;
    std::vector<sim::Kernel*> ptrs;
    for (std::uint32_t t = 0; t < kTiles; ++t) {
      kernels.push_back(std::make_unique<sim::Kernel>());
      ptrs.push_back(kernels.back().get());
    }
    sim::TiledEngine engine(
        ptrs, kLookahead,
        {parallel ? sim::ExecMode::kParallel : sim::ExecMode::kSequential,
         /*force_threads=*/true});
    Racer racer;
    racer.engine = &engine;
    racer.tiles.resize(kTiles);
    for (std::uint32_t t = 0; t < kTiles; ++t) {
      racer.tiles[t].k = ptrs[t];
      racer.tiles[t].left = 300;
      ptrs[t]->schedule_at(t % 3, [&racer, t] { racer.fire(t, t + 1); });
    }
    engine.run();
    std::vector<std::uint64_t> out;
    for (const auto& t : racer.tiles) {
      out.push_back(t.hash);
      out.push_back(t.k->events_executed());
    }
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(TiledEngine, RunUntilAdvancesAllTiles) {
  std::vector<std::unique_ptr<sim::Kernel>> kernels;
  std::vector<sim::Kernel*> ptrs;
  for (int t = 0; t < 2; ++t) {
    kernels.push_back(std::make_unique<sim::Kernel>());
    ptrs.push_back(kernels.back().get());
  }
  sim::TiledEngine engine(ptrs, /*lookahead=*/1000,
                          {sim::ExecMode::kSequential, false});
  int fired = 0;
  ptrs[0]->schedule_at(500, [&] {
    ++fired;
    engine.post(0, 1, ptrs[0]->now() + 1000, [&] { ++fired; });
  });
  engine.run_until(5000);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(ptrs[0]->now(), 5000u);
  EXPECT_EQ(ptrs[1]->now(), 5000u);
  EXPECT_EQ(engine.now(), 5000u);
}

TEST(TiledEngine, BudgetExhaustionFallsBackSequentially) {
  const BudgetGuard guard(0);  // no permits: kParallel must degrade
  std::uint64_t ev_a = 0;
  bool used = true;
  const auto fallback = run_soup(3, 7, /*parallel=*/true,
                                 /*force_threads=*/false, &ev_a, &used);
  EXPECT_FALSE(used);  // the engine refused to spawn workers
  const auto reference = run_soup(3, 7, /*parallel=*/false, false);
  EXPECT_EQ(fallback, reference);
}

// ------------------------------------------------------ platform corpus

struct CorpusRun {
  std::uint64_t fingerprint = 0;
  std::uint64_t tile0_fingerprint = 0;
  std::uint64_t events = 0;
};

CorpusRun run_corpus(const sim::PlatformConfig& cfg, const std::string& wl,
                     std::uint64_t seed, bool profile, bool force_threads) {
  sim::Platform p(cfg);
  if (force_threads && p.engine() != nullptr)
    p.engine()->set_force_threads(true);
  vpdebug::ExecutionRecorder rec(p);
  std::optional<perf::PerfSession> sess;
  if (profile) sess.emplace(p, perf::PerfConfig{});
  perf::spawn_workload(wl, p, seed, /*scale=*/2);
  p.run();
  return {rec.fingerprint(), rec.tile_fingerprint(0), rec.events()};
}

sim::PlatformConfig corpus_config(std::uint32_t tiles, bool partition) {
  sim::PlatformConfig cfg = sim::PlatformConfig::homogeneous(4);
  cfg.trace_enabled = true;
  if (tiles > 1) {
    sim::apply_tiling(cfg, tiles, partition);
    cfg.kernel.exec = sim::ExecMode::kSequential;  // set per run below
  }
  return cfg;
}

// The headline contract: for every workload, seed and ±profiler, the
// parallel execution of a tiled platform is bit-identical (ExecutionRecorder
// fingerprints) to the sequential reference.
TEST(ParallelCorpus, SequentialVsParallelFingerprints) {
  for (const auto& wl : perf::workload_registry()) {
    const bool partition = perf::workload_tileable(wl.name);
    for (const std::uint64_t seed : {3ull, 99ull}) {
      for (const bool profile : {false, true}) {
        sim::PlatformConfig cfg = corpus_config(4, partition);
        const CorpusRun seq =
            run_corpus(cfg, wl.name, seed, profile, /*force_threads=*/false);
        cfg.kernel.exec = sim::ExecMode::kParallel;
        const CorpusRun par =
            run_corpus(cfg, wl.name, seed, profile, /*force_threads=*/true);
        EXPECT_EQ(seq.fingerprint, par.fingerprint)
            << wl.name << " seed=" << seed << " profile=" << profile;
        EXPECT_EQ(seq.events, par.events) << wl.name;
      }
    }
  }
}

// Workloads whose cores all stay on tile 0 (the legacy shared-state ones)
// must execute the exact same tile-0 event stream on a tiled platform as
// on the plain single-kernel platform: the empty sibling tiles are inert.
TEST(ParallelCorpus, AllTileZeroMatchesPlainKernel) {
  for (const auto& wl : perf::workload_registry()) {
    if (perf::workload_tileable(wl.name)) continue;
    const CorpusRun plain = run_corpus(corpus_config(1, false), wl.name,
                                       /*seed=*/3, /*profile=*/false, false);
    const CorpusRun tiled =
        run_corpus(corpus_config(4, false), wl.name, 3, false, false);
    EXPECT_EQ(plain.fingerprint, tiled.tile0_fingerprint) << wl.name;
    EXPECT_EQ(plain.events, tiled.events) << wl.name;
  }
}

TEST(ParallelCorpus, CrossTileMemoryAccessThrows) {
  sim::PlatformConfig cfg = corpus_config(4, /*partition=*/true);
  sim::Platform p(cfg);
  // Core 0 (tile 0) touching core 3's scratchpad (tile 3) breaks the
  // no-shared-state invariant the identity proof rests on — hard error.
  const sim::Addr foreign = p.scratchpad_base(p.core(3).id());
  EXPECT_THROW((void)p.memory().read_u64(p.core(0).id(), foreign),
               std::logic_error);
}

// --------------------------------------------------------- fault corpus

fault::ScenarioOutcome run_fault(std::uint32_t threads) {
  fault::ScenarioConfig cfg;
  cfg.cores = 4;
  cfg.seed = 11;
  cfg.items = 24;
  cfg.fault_rate_per_ms = 40.0;
  cfg.policy = fault::RecoveryPolicy::kWatchdogRestart;
  cfg.threads = threads;
  return fault::run_fault_scenario(cfg);
}

TEST(ParallelCorpus, FaultScenarioIdenticalAcrossThreads) {
  const BudgetGuard guard(8);  // make real worker threads available
  const fault::ScenarioOutcome one = run_fault(1);
  const fault::ScenarioOutcome four = run_fault(4);
  EXPECT_EQ(one.items_done, four.items_done);
  EXPECT_EQ(one.makespan, four.makespan);
  EXPECT_EQ(one.faults_injected, four.faults_injected);
  EXPECT_EQ(one.crashes, four.crashes);
  EXPECT_EQ(one.recoveries, four.recoveries);
  const auto& ra = one.timeline.records();
  const auto& rb = four.timeline.records();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].time, rb[i].time) << i;
    EXPECT_EQ(ra[i].what, rb[i].what) << i;
    EXPECT_EQ(ra[i].target, rb[i].target) << i;
  }
}

}  // namespace
