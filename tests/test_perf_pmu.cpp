#include <gtest/gtest.h>

#include <memory>

#include "perf/pmu.hpp"
#include "perf/session.hpp"
#include "perf/workload.hpp"
#include "sim/platform.hpp"
#include "sim/process.hpp"
#include "vpdebug/replay.hpp"

namespace rw::perf {
namespace {

sim::Process computer(sim::Platform& p, std::size_t core, Cycles c,
                      const char* label, int reps) {
  for (int i = 0; i < reps; ++i) {
    co_await p.core(core).compute(c, label);
    co_await sim::delay(p.kernel(), microseconds(1));
  }
}

std::unique_ptr<sim::Platform> make_platform(std::size_t cores = 2) {
  auto cfg = sim::PlatformConfig::homogeneous(cores, mhz(400));
  cfg.trace_enabled = true;
  return std::make_unique<sim::Platform>(std::move(cfg));
}

TEST(PmuTest, CountsComputeBlocksAndBusyCycles) {
  auto plat = make_platform();
  Pmu pmu(plat->core_count());
  plat->set_perf_sink(&pmu);
  sim::spawn(plat->kernel(), computer(*plat, 0, 10'000, "fir", 3));
  sim::spawn(plat->kernel(), computer(*plat, 1, 4'000, "iir", 2));
  plat->kernel().run();

  EXPECT_EQ(pmu.core(0).busy_cycles, 30'000u);
  EXPECT_EQ(pmu.core(0).compute_blocks, 3u);
  EXPECT_EQ(pmu.core(0).reservations, 3u);
  EXPECT_EQ(pmu.core(0).busy_ps, cycles_to_ps(30'000, mhz(400)));
  EXPECT_EQ(pmu.core(1).busy_cycles, 8'000u);
  EXPECT_EQ(pmu.core(1).compute_blocks, 2u);
  // The PMU's busy time must agree with the core's own account.
  EXPECT_EQ(pmu.core(0).busy_ps, plat->core(0).busy_time());
}

TEST(PmuTest, SplitsLocalAndSharedAccesses) {
  auto plat = make_platform();
  Pmu pmu(plat->core_count());
  plat->set_perf_sink(&pmu);
  auto& mem = plat->memory();
  const sim::CoreId c0{0};

  mem.write_u64(c0, plat->scratchpad_base(c0), 1);       // local write
  (void)mem.read_u64(c0, plat->scratchpad_base(c0));     // local read
  mem.write_u32(c0, plat->shared_base(), 2);             // shared write
  (void)mem.read_u32(c0, plat->shared_base());           // shared read
  // Another core's scratchpad is remote: counted as shared.
  (void)mem.read_u64(c0, plat->scratchpad_base(sim::CoreId{1}));

  const CoreCounters& c = pmu.core(0);
  EXPECT_EQ(c.mem_reads, 3u);
  EXPECT_EQ(c.mem_writes, 2u);
  EXPECT_EQ(c.local_accesses, 2u);
  EXPECT_EQ(c.shared_accesses, 3u);
  EXPECT_EQ(c.bytes_read, 8u + 4u + 8u);
  EXPECT_EQ(c.bytes_written, 8u + 4u);
  // Stalls: scratchpad latency 1 cycle x2, shared latency 12 x2, remote
  // scratchpad 1 — per the default platform config.
  EXPECT_EQ(c.stall_cycles, 1u + 1u + 12u + 12u + 1u);
}

TEST(PmuTest, PokePeekAreNotCounted) {
  auto plat = make_platform();
  Pmu pmu(plat->core_count());
  plat->set_perf_sink(&pmu);
  std::uint8_t buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  plat->memory().poke(plat->shared_base(), buf);
  plat->memory().peek(plat->shared_base(), buf);
  EXPECT_EQ(pmu.core(0).mem_reads, 0u);
  EXPECT_EQ(pmu.core(0).mem_writes, 0u);
  EXPECT_EQ(pmu.unattributed().mem_reads, 0u);
}

TEST(PmuTest, DmaCountsBytesAndUnattributedAccesses) {
  auto plat = make_platform();
  Pmu pmu(plat->core_count());
  plat->set_perf_sink(&pmu);
  plat->dma().start(plat->shared_base(), plat->shared_base() + 4096, 256);
  plat->kernel().run();

  EXPECT_EQ(pmu.dma().transfers, 1u);
  EXPECT_EQ(pmu.dma().bytes, 256u);
  EXPECT_GT(pmu.dma().busy_ps, 0u);
  // The engine's block copy runs without a core identity.
  EXPECT_EQ(pmu.unattributed().mem_reads, 1u);
  EXPECT_EQ(pmu.unattributed().mem_writes, 1u);
  EXPECT_EQ(pmu.unattributed().bytes_read, 256u);
  for (std::size_t i = 0; i < plat->core_count(); ++i)
    EXPECT_EQ(pmu.core(i).mem_reads, 0u);
}

TEST(PmuTest, SharedBusTransfersFillIcnCounters) {
  auto plat = make_platform();
  Pmu pmu(plat->core_count());
  plat->set_perf_sink(&pmu);
  auto& icn = plat->interconnect();
  const auto [s1, f1] =
      icn.reserve_transfer(sim::CoreId{0}, sim::CoreId{1}, 1024, 0);
  // Immediately queue a second transfer: it must wait behind the first.
  const auto [s2, f2] =
      icn.reserve_transfer(sim::CoreId{1}, sim::CoreId{0}, 1024, 0);

  EXPECT_EQ(pmu.icn().transfers, 2u);
  EXPECT_EQ(pmu.icn().bytes, 2048u);
  EXPECT_EQ(pmu.icn().wait_ps, s2 - static_cast<TimePs>(0));
  EXPECT_EQ(pmu.icn().busy_ps, (f1 - s1) + (f2 - s2));
  ASSERT_EQ(pmu.icn().link_busy_ps.size(), 1u);  // the one shared bus
  EXPECT_EQ(pmu.icn().link_busy_ps[0], pmu.icn().busy_ps);
  EXPECT_EQ(pmu.icn().hops, 0u);
}

TEST(PmuTest, MeshTransfersCountHopsAndLinks) {
  auto cfg = sim::PlatformConfig::homogeneous(4, mhz(400));
  cfg.interconnect = sim::PlatformConfig::Icn::kMesh;
  cfg.mesh.width = 2;
  cfg.mesh.height = 2;
  sim::Platform plat(std::move(cfg));
  Pmu pmu(plat.core_count());
  plat.set_perf_sink(&pmu);

  // Corner to corner on a 2x2 mesh: 2 hops (XY route).
  plat.interconnect().reserve_transfer(sim::CoreId{0}, sim::CoreId{3}, 64,
                                       0);
  EXPECT_EQ(pmu.icn().transfers, 1u);
  EXPECT_EQ(pmu.icn().hops, 2u);
  std::size_t used_links = 0;
  for (const auto b : pmu.icn().link_busy_ps)
    if (b > 0) ++used_links;
  EXPECT_EQ(used_links, 2u);

  // Local delivery (src == dst) is free and hopless.
  plat.interconnect().reserve_transfer(sim::CoreId{1}, sim::CoreId{1}, 64,
                                       0);
  EXPECT_EQ(pmu.icn().transfers, 2u);
  EXPECT_EQ(pmu.icn().hops, 2u);
}

TEST(PmuTest, FreqChangesCounted) {
  auto plat = make_platform();
  Pmu pmu(plat->core_count());
  plat->set_perf_sink(&pmu);
  plat->core(0).set_frequency(mhz(800));
  plat->core(0).set_frequency(mhz(800));  // no-op: same frequency
  plat->core(0).set_frequency(mhz(400));
  EXPECT_EQ(pmu.core(0).freq_changes, 2u);
  EXPECT_EQ(pmu.core(1).freq_changes, 0u);
}

TEST(PmuTest, DetachStopsCounting) {
  auto plat = make_platform();
  Pmu pmu(plat->core_count());
  plat->set_perf_sink(&pmu);
  plat->core(0).reserve(1000);
  plat->set_perf_sink(nullptr);
  plat->core(0).reserve(1000);
  EXPECT_EQ(pmu.core(0).busy_cycles, 1000u);
  EXPECT_EQ(pmu.core(0).reservations, 1u);
}

TEST(PmuTest, SnapshotAndResetRoundTrip) {
  auto plat = make_platform();
  Pmu pmu(plat->core_count());
  plat->set_perf_sink(&pmu);
  plat->core(0).reserve(1000);
  const PmuSnapshot s = pmu.snapshot(plat->kernel().now());
  EXPECT_EQ(s.cores[0].busy_cycles, 1000u);
  pmu.reset();
  EXPECT_EQ(pmu.core(0).busy_cycles, 0u);
  EXPECT_EQ(pmu.snapshot(0).cores[0], CoreCounters{});
}

// The tentpole's zero-overhead criterion: attaching the observation stack
// (PMU counters + non-intrusive sampler + epoch windows) leaves the
// simulation bit-identical — same trace fingerprint, same makespan.
TEST(PmuTest, AttachedObserversLeaveSimulationBitIdentical) {
  auto scenario_makespan = [](bool observed, std::uint64_t& fingerprint) {
    auto plat = make_platform(4);
    std::unique_ptr<PerfSession> session;
    if (observed) session = std::make_unique<PerfSession>(*plat);
    vpdebug::ExecutionRecorder rec(*plat);
    spawn_workload("forkjoin", *plat, /*seed=*/42, /*scale=*/2);
    plat->kernel().run();
    fingerprint = rec.fingerprint();
    return plat->kernel().now();
  };

  std::uint64_t fp_base = 0, fp_observed = 0;
  const TimePs t_base = scenario_makespan(false, fp_base);
  const TimePs t_observed = scenario_makespan(true, fp_observed);
  EXPECT_EQ(t_base, t_observed);
  EXPECT_EQ(fp_base, fp_observed);
}

// Same property through the harness lens: RunMetrics of an instrumented
// run with everything detached again equals the baseline's, sim_equal-wise.
TEST(PmuTest, DetachedSessionMetricsSimEqualBaseline) {
  auto run_once = [](bool observe) {
    auto plat = make_platform(4);
    RunMetrics m;
    if (observe) {
      PerfSession session(*plat);
      spawn_workload("pipeline", *plat, 7, 2);
      plat->kernel().run();
      session.detach();
      m.makespan = plat->kernel().now();
    } else {
      spawn_workload("pipeline", *plat, 7, 2);
      plat->kernel().run();
      m.makespan = plat->kernel().now();
    }
    m.mean_core_utilization = 0.0;
    return m;
  };
  EXPECT_TRUE(run_once(true).sim_equal(run_once(false)));
}

}  // namespace
}  // namespace rw::perf
