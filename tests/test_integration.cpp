// Cross-module integration: the complete paper pipeline in one test file.
//   MAPS partition  ->  CIC program  ->  two targets  ->  identical output
// and a vpdebug session over a platform running maps-scheduled work.
#include <gtest/gtest.h>

#include "cic/archfile.hpp"
#include "cic/translator.hpp"
#include "maps/mapping.hpp"
#include "maps/partition.hpp"
#include "maps/workloads.hpp"
#include "sim/process.hpp"
#include "vpdebug/debugger.hpp"
#include "vpdebug/replay.hpp"

namespace rw {
namespace {

/// Lift a maps task graph into a CIC program: each task becomes a CIC
/// task, each edge a channel; entry tasks get a driving period. This is
/// the natural handoff between Sec. IV (partitioning) and Sec. V
/// (retargetable code generation).
cic::CicProgram lift_to_cic(const maps::TaskGraph& g, DurationPs period) {
  cic::CicProgram p(g.name);
  std::vector<cic::CicTaskId> ids;
  for (const auto& t : g.tasks()) {
    std::vector<std::string> ins, outs;
    for (const auto& e : g.edges()) {
      if (e.dst == t.id)
        ins.push_back("in" + std::to_string(e.src.value()));
      if (e.src == t.id)
        outs.push_back("out" + std::to_string(e.dst.value()));
    }
    const auto id = p.add_task(t.name, t.ref_cycles, ins, outs);
    ids.push_back(id);
  }
  for (const auto& e : g.edges()) {
    const auto st = p.connect(
        ids[e.src.index()], "out" + std::to_string(e.dst.value()),
        ids[e.dst.index()], "in" + std::to_string(e.src.value()),
        static_cast<std::uint32_t>(std::min<std::uint64_t>(e.bytes, 4096)));
    EXPECT_TRUE(st.ok()) << st.error().to_string();
  }
  for (std::size_t t = 0; t < g.tasks().size(); ++t) {
    if (p.tasks()[t].in_ports.empty())
      p.set_period(ids[t], period);
  }
  return p;
}

TEST(Integration, MapsPartitionThroughCicToTwoTargets) {
  // Partition the JPEG-like program, lift the task graph to CIC, run on a
  // Cell-like and an SMP target: outputs must match bit-for-bit.
  const auto part =
      maps::partition_program(maps::jpeg_encoder_program(8), {4, 8.0});
  ASSERT_TRUE(part.graph.is_acyclic());
  const auto app = lift_to_cic(part.graph, microseconds(900));
  ASSERT_TRUE(app.validate().ok()) << app.validate().error().to_string();

  const auto cell = cic::ArchInfo::cell_like(4);
  const auto smp = cic::ArchInfo::smp_like(4);
  const auto mc = cic::CicMapping::automatic(app, cell);
  const auto ms = cic::CicMapping::automatic(app, smp);
  ASSERT_TRUE(mc.ok()) << mc.error().to_string();
  ASSERT_TRUE(ms.ok());

  auto tc = cic::TargetProgram::translate(app, cell, mc.value());
  auto ts = cic::TargetProgram::translate(app, smp, ms.value());
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(ts.ok());
  const auto rc = tc.value().run(12);
  const auto rs = ts.value().run(12);
  EXPECT_EQ(rc.sink_outputs, rs.sink_outputs);
  EXPECT_FALSE(rc.sink_outputs.empty());
}

TEST(Integration, DebuggerWatchesMapsExecutionOnPlatform) {
  // Execute a mapped task graph on the simulated platform while a
  // debugger watches: the task breakpoint must fire for a task we know is
  // in the graph, with the whole system consistently suspended.
  const auto part =
      maps::partition_program(maps::jpeg_encoder_program(4), {3, 8.0});
  const std::vector<maps::PeDesc> pes(3,
                                      maps::PeDesc{sim::PeClass::kRisc,
                                                   mhz(400)});
  const auto m = maps::heft_map(
      part.graph, pes, maps::simple_comm_cost(nanoseconds(100), 0.004));

  auto cfg = sim::PlatformConfig::homogeneous(3, mhz(400));
  cfg.trace_enabled = true;
  sim::Platform platform(std::move(cfg));
  vpdebug::Debugger dbg(platform);
  dbg.break_on_task("task");

  // execute_on_platform reserves core time directly (transaction level),
  // so drive a coroutine wrapper that mirrors one task to generate a
  // traced compute for the breakpoint.
  const TimePs makespan =
      maps::execute_on_platform(part.graph, m.task_to_pe, platform);
  EXPECT_GT(makespan, 0u);
  // The reservations above don't emit task traces; emit one compute so
  // the breakpoint machinery is exercised end to end.
  sim::spawn(platform.kernel(), [](sim::Platform& p) -> sim::Process {
    co_await p.core(0).compute(1'000, "task_probe");
  }(platform));
  const auto stop = dbg.resume();
  EXPECT_EQ(stop.kind, vpdebug::StopKind::kBreakpointTask);
  EXPECT_NE(dbg.snapshot().find("core0"), std::string::npos);
}

TEST(Integration, CicRunIsReplayDeterministicAcrossProcesses) {
  // Two full translator runs hash-compare their results (the vpdebug
  // replay notion applied at the CIC level).
  const auto part =
      maps::partition_program(maps::mixed_kind_program(4), {3, 8.0});
  const auto app = lift_to_cic(part.graph, microseconds(700));
  const auto smp = cic::ArchInfo::smp_like(3);
  const auto m = cic::CicMapping::automatic(app, smp);
  ASSERT_TRUE(m.ok());
  auto tp = cic::TargetProgram::translate(app, smp, m.value());
  ASSERT_TRUE(tp.ok());
  const auto a = tp.value().run(10);
  const auto b = tp.value().run(10);
  EXPECT_EQ(a.sink_outputs, b.sink_outputs);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.messages, b.messages);
}

}  // namespace
}  // namespace rw
