#include <gtest/gtest.h>

#include "cic/archfile.hpp"
#include "cic/model.hpp"
#include "cic/translator.hpp"

#include "common/strings.hpp"

namespace rw::cic {
namespace {

/// Small H.264-ish pipeline: camera -> me -> tq -> cabac (sink), with an
/// intra branch feeding tq as a second input.
CicProgram pipeline_program() {
  CicProgram p("h264mini");
  const auto cam = p.add_task("camera", 2'000, {}, {"raw", "raw2"});
  p.set_period(cam, microseconds(500));
  const auto me = p.add_task("me", 60'000, {"in"}, {"mv"});
  const auto intra = p.add_task("intra", 25'000, {"in"}, {"pred"});
  const auto tq = p.add_task("tq", 40'000, {"mv", "pred"}, {"coef"});
  const auto cabac = p.add_task("cabac", 30'000, {"coef"}, {});
  EXPECT_TRUE(p.connect(cam, "raw", me, "in", 256).ok());
  EXPECT_TRUE(p.connect(cam, "raw2", intra, "in", 128).ok());
  EXPECT_TRUE(p.connect(me, "mv", tq, "mv", 64).ok());
  EXPECT_TRUE(p.connect(intra, "pred", tq, "pred", 64).ok());
  EXPECT_TRUE(p.connect(tq, "coef", cabac, "coef", 128).ok());
  return p;
}

TEST(CicModel, ValidatesCleanProgram) {
  EXPECT_TRUE(pipeline_program().validate().ok());
}

TEST(CicModel, RejectsUnwiredPort) {
  CicProgram p;
  const auto a = p.add_task("a", 100, {}, {"out"});
  p.set_period(a, microseconds(10));
  p.add_task("b", 100, {"in"}, {});
  // b.in never connected.
  EXPECT_FALSE(p.validate().ok());
  (void)a;
}

TEST(CicModel, RejectsDoublyWiredPort) {
  CicProgram p;
  const auto a = p.add_task("a", 100, {}, {"o1", "o2"});
  p.set_period(a, microseconds(10));
  const auto b = p.add_task("b", 100, {"in"}, {});
  EXPECT_TRUE(p.connect(a, "o1", b, "in").ok());
  EXPECT_TRUE(p.connect(a, "o2", b, "in").ok());  // structurally recorded
  EXPECT_FALSE(p.validate().ok());                // but invalid
}

TEST(CicModel, RejectsAperiodicSource) {
  CicProgram p;
  const auto a = p.add_task("a", 100, {}, {"out"});
  const auto b = p.add_task("b", 100, {"in"}, {});
  EXPECT_TRUE(p.connect(a, "out", b, "in").ok());
  EXPECT_FALSE(p.validate().ok());  // source has no period
}

TEST(CicModel, ConnectRejectsBadPortNames) {
  CicProgram p;
  const auto a = p.add_task("a", 100, {}, {"out"});
  const auto b = p.add_task("b", 100, {"in"}, {});
  EXPECT_FALSE(p.connect(a, "nope", b, "in").ok());
  EXPECT_FALSE(p.connect(a, "out", b, "nope").ok());
}

TEST(ArchFile, BuiltinTargetsDiffer) {
  const auto cell = ArchInfo::cell_like();
  const auto smp = ArchInfo::smp_like();
  EXPECT_EQ(cell.style, MemoryStyle::kDistributed);
  EXPECT_EQ(smp.style, MemoryStyle::kShared);
  EXPECT_GT(cell.platform.cores.size(), 1u);
}

TEST(ArchFile, ParsesWellFormedFile) {
  const auto r = parse_arch_file(R"(
    <architecture name="demo" style="shared">
      <processor class="RISC" freq="400000000" count="4" scratchpad="32768"/>
      <memory kind="shared" bytes="2097152" latency="10"/>
      <interconnect kind="bus" freq="266000000" width="8"/>
      <lock cycles="55"/>
    </architecture>)");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const auto& a = r.value();
  EXPECT_EQ(a.name, "demo");
  EXPECT_EQ(a.style, MemoryStyle::kShared);
  EXPECT_EQ(a.platform.cores.size(), 4u);
  EXPECT_EQ(a.platform.cores[0].frequency, mhz(400));
  EXPECT_EQ(a.platform.shared_mem_bytes, 2097152u);
  EXPECT_EQ(a.lock_cycles, 55u);
}

TEST(ArchFile, ParsesMeshInterconnect) {
  const auto r = parse_arch_file(R"(
    <architecture name="noc" style="distributed">
      <processor class="DSP" freq="600000000" count="16"/>
      <interconnect kind="mesh" width="4" height="4" freq="500000000"/>
    </architecture>)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().platform.interconnect,
            sim::PlatformConfig::Icn::kMesh);
  EXPECT_EQ(r.value().platform.mesh.width, 4u);
}

TEST(ArchFile, RejectsGarbage) {
  EXPECT_FALSE(parse_arch_file("<arch/>").ok());
  EXPECT_FALSE(parse_arch_file("<architecture name='x'/>").ok());  // no PEs
  EXPECT_FALSE(parse_arch_file(R"(
    <architecture><processor class="QUANTUM"/></architecture>)").ok());
  EXPECT_FALSE(parse_arch_file(R"(
    <architecture style="weird"><processor class="RISC"/></architecture>)")
                   .ok());
}

TEST(ArchFile, RoundTripsThroughXml) {
  const auto orig = ArchInfo::cell_like(4);
  const auto r = parse_arch_file(arch_to_xml(orig));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().style, orig.style);
  EXPECT_EQ(r.value().platform.cores.size(), orig.platform.cores.size());
  EXPECT_EQ(r.value().platform.interconnect, orig.platform.interconnect);
}


TEST(ArchFile, SaveAndLoadFromDisk) {
  const std::string path = ::testing::TempDir() + "/rw_arch_test.xml";
  const auto orig = ArchInfo::smp_like(3);
  ASSERT_TRUE(save_arch_file(orig, path).ok());
  const auto r = load_arch_file(path);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().platform.cores.size(), 3u);
  EXPECT_EQ(r.value().style, MemoryStyle::kShared);
  EXPECT_FALSE(load_arch_file("/nonexistent/arch.xml").ok());
}

TEST(Mapping, AutomaticCoversAllTasks) {
  const auto p = pipeline_program();
  const auto arch = ArchInfo::cell_like(4);
  const auto m = CicMapping::automatic(p, arch);
  ASSERT_TRUE(m.ok()) << m.error().to_string();
  EXPECT_EQ(m.value().task_to_pe.size(), p.tasks().size());
  for (const auto pe : m.value().task_to_pe)
    EXPECT_LT(pe, arch.platform.cores.size());
}

TEST(Translator, RejectsBadMapping) {
  const auto p = pipeline_program();
  const auto arch = ArchInfo::smp_like(2);
  CicMapping m;
  m.task_to_pe = {0, 1, 2, 0, 1};  // PE 2 does not exist
  EXPECT_FALSE(TargetProgram::translate(p, arch, m).ok());
  m.task_to_pe = {0, 1};  // wrong arity
  EXPECT_FALSE(TargetProgram::translate(p, arch, m).ok());
}

TEST(Translator, RunsOnSmp) {
  const auto p = pipeline_program();
  const auto arch = ArchInfo::smp_like(4);
  const auto m = CicMapping::automatic(p, arch);
  ASSERT_TRUE(m.ok());
  auto tp = TargetProgram::translate(p, arch, m.value());
  ASSERT_TRUE(tp.ok()) << tp.error().to_string();
  const auto r = tp.value().run(20);
  ASSERT_EQ(r.sink_outputs.count("cabac"), 1u);
  EXPECT_EQ(r.sink_outputs.at("cabac").size(), 20u);
  EXPECT_GT(r.makespan, 0u);
  EXPECT_GT(r.messages, 0u);
}

TEST(Translator, RetargetabilityContract) {
  // The core Sec. V claim: "From the same CIC specification, we also
  // generated a parallel program for an MPCore processor ... which
  // confirms the retargetability of the CIC model."
  const auto p = pipeline_program();

  const auto cell = ArchInfo::cell_like(6);
  const auto smp = ArchInfo::smp_like(4);
  const auto mc = CicMapping::automatic(p, cell);
  const auto ms = CicMapping::automatic(p, smp);
  ASSERT_TRUE(mc.ok());
  ASSERT_TRUE(ms.ok());

  auto tc = TargetProgram::translate(p, cell, mc.value());
  auto ts = TargetProgram::translate(p, smp, ms.value());
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(ts.ok());

  const auto rc = tc.value().run(25);
  const auto rs = ts.value().run(25);

  // Identical computed results...
  EXPECT_EQ(rc.sink_outputs, rs.sink_outputs);
  // ...from genuinely different executions.
  EXPECT_NE(rc.makespan, rs.makespan);
}

TEST(Translator, DeterministicRuns) {
  const auto p = pipeline_program();
  const auto arch = ArchInfo::smp_like(4);
  const auto m = CicMapping::automatic(p, arch);
  ASSERT_TRUE(m.ok());
  auto tp = TargetProgram::translate(p, arch, m.value());
  ASSERT_TRUE(tp.ok());
  const auto a = tp.value().run(15);
  const auto b = tp.value().run(15);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.sink_outputs, b.sink_outputs);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(Translator, DeadlineAccounting) {
  CicProgram p("rt");
  const auto src = p.add_task("src", 1'000, {}, {"o"});
  p.set_period(src, microseconds(50));
  p.set_deadline(src, microseconds(49));
  const auto heavy = p.add_task("heavy", 500'000, {"i"}, {});
  EXPECT_TRUE(p.connect(src, "o", heavy, "i", 64, /*capacity=*/2).ok());
  const auto arch = ArchInfo::smp_like(1);  // single core: guaranteed jam
  CicMapping m;
  m.task_to_pe = {0, 0};
  auto tp = TargetProgram::translate(p, arch, m);
  ASSERT_TRUE(tp.ok());
  const auto r = tp.value().run(10);
  EXPECT_GT(r.deadline_misses, 0u);
}

TEST(Codegen, BackendsSynthesizeDifferentPrimitives) {
  const auto p = pipeline_program();
  const auto cell = ArchInfo::cell_like(4);
  const auto smp = ArchInfo::smp_like(4);
  auto tc = TargetProgram::translate(p, cell,
                                     CicMapping::automatic(p, cell).value());
  auto ts = TargetProgram::translate(p, smp,
                                     CicMapping::automatic(p, smp).value());
  ASSERT_TRUE(tc.ok());
  ASSERT_TRUE(ts.ok());
  const std::string code_c = tc.value().generated_code();
  const std::string code_s = ts.value().generated_code();

  EXPECT_NE(code_c.find("dma_send"), std::string::npos);
  EXPECT_NE(code_c.find("msgq_recv"), std::string::npos);
  EXPECT_EQ(code_c.find("shm_ring_push"), std::string::npos);

  EXPECT_NE(code_s.find("shm_ring_push"), std::string::npos);
  EXPECT_NE(code_s.find("lock(&"), std::string::npos);
  EXPECT_EQ(code_s.find("dma_send"), std::string::npos);
}

TEST(Codegen, RuntimeSystemSynthesizedFromAnnotations) {
  const auto p = pipeline_program();
  const auto smp = ArchInfo::smp_like(4);
  auto ts = TargetProgram::translate(p, smp,
                                     CicMapping::automatic(p, smp).value());
  ASSERT_TRUE(ts.ok());
  const std::string code = ts.value().generated_code();
  // camera is periodic -> periodic registration; others data-driven.
  EXPECT_NE(code.find("rt_register_periodic(task_camera"),
            std::string::npos);
  EXPECT_NE(code.find("rt_register_datadriven(task_me"), std::string::npos);
  // Every PE gets a main.
  for (std::size_t pe = 0; pe < 4; ++pe)
    EXPECT_NE(code.find(rw::strformat("pe%zu_main", pe)), std::string::npos);
}

}  // namespace
}  // namespace rw::cic
