#include "sched/analysis.hpp"

#include <gtest/gtest.h>

namespace rw::sched {
namespace {

TaskSet classic_liu_layland() {
  // A classic feasible RM example: U = 0.2 + 0.25 + 0.3 = 0.75 > bound(3)
  // would fail the bound but pass RTA, so use a lighter variant for the
  // bound test.
  TaskSet ts;
  ts.frequency = mhz(100);  // 10 ns per cycle
  ts.add("t1", 100'000, milliseconds(10));  // C=1ms, T=10ms, U=0.1
  ts.add("t2", 200'000, milliseconds(20));  // C=2ms, T=20ms, U=0.1
  ts.add("t3", 400'000, milliseconds(40));  // C=4ms, T=40ms, U=0.1
  return ts;
}

TEST(Analysis, UtilizationComputation) {
  const TaskSet ts = classic_liu_layland();
  EXPECT_NEAR(ts.total_utilization(), 0.3, 1e-9);
}

TEST(Analysis, RmBoundValues) {
  EXPECT_DOUBLE_EQ(rm_utilization_bound(1), 1.0);
  EXPECT_NEAR(rm_utilization_bound(2), 0.8284, 1e-3);
  EXPECT_NEAR(rm_utilization_bound(3), 0.7798, 1e-3);
  // The bound approaches ln 2 for large n.
  EXPECT_NEAR(rm_utilization_bound(10000), 0.6931, 1e-3);
}

TEST(Analysis, RmBoundTestAcceptsLightSet) {
  EXPECT_TRUE(rm_bound_test(classic_liu_layland()));
}

TEST(Analysis, RmBoundTestRejectsOverloadedSet) {
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("a", 600'000, milliseconds(10));  // U=0.6
  ts.add("b", 600'000, milliseconds(20));  // U=0.3
  ts.add("c", 600'000, milliseconds(30));  // U=0.2 -> total 1.1
  EXPECT_FALSE(rm_bound_test(ts));
}

TEST(Analysis, RmPriorityAssignment) {
  TaskSet ts;
  ts.add("slow", 10, milliseconds(50));
  ts.add("fast", 10, milliseconds(5));
  ts.add("mid", 10, milliseconds(20));
  assign_rm_priorities(ts);
  EXPECT_GT(ts.tasks[0].fixed_priority, ts.tasks[2].fixed_priority);
  EXPECT_GT(ts.tasks[2].fixed_priority, ts.tasks[1].fixed_priority);
}

TEST(Analysis, DmPriorityUsesDeadline) {
  TaskSet ts;
  ts.add("a", 10, milliseconds(50), milliseconds(4));
  ts.add("b", 10, milliseconds(5));  // implicit deadline 5ms
  assign_dm_priorities(ts);
  EXPECT_LT(ts.tasks[0].fixed_priority, ts.tasks[1].fixed_priority);
}

TEST(Analysis, ResponseTimeAnalysisExactExample) {
  // Textbook example (Buttazzo): C1=1,T1=4; C2=2,T2=6; C3=3,T3=12 (ms).
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("t1", 100'000, milliseconds(4));
  ts.add("t2", 200'000, milliseconds(6));
  ts.add("t3", 300'000, milliseconds(12));
  assign_rm_priorities(ts);
  const auto rta = response_time_analysis(ts);
  ASSERT_TRUE(rta.per_task[0].has_value());
  ASSERT_TRUE(rta.per_task[1].has_value());
  ASSERT_TRUE(rta.per_task[2].has_value());
  EXPECT_EQ(*rta.per_task[0], milliseconds(1));
  EXPECT_EQ(*rta.per_task[1], milliseconds(3));
  // R3 = 3 + interference: classic answer is 10 ms.
  EXPECT_EQ(*rta.per_task[2], milliseconds(10));
  EXPECT_TRUE(rta.all_schedulable(ts));
}

TEST(Analysis, ResponseTimeDetectsUnschedulable) {
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("t1", 300'000, milliseconds(4));   // 3ms every 4ms
  ts.add("t2", 200'000, milliseconds(6));   // 2ms every 6ms: U > 1
  assign_rm_priorities(ts);
  const auto rta = response_time_analysis(ts);
  EXPECT_TRUE(rta.per_task[0].has_value());
  EXPECT_FALSE(rta.per_task[1].has_value());
  EXPECT_FALSE(rta.all_schedulable(ts));
}

TEST(Analysis, SwitchOverheadCanBreakFeasibility) {
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("t1", 190'000, milliseconds(4));
  ts.add("t2", 190'000, milliseconds(4));
  assign_rm_priorities(ts);
  EXPECT_TRUE(response_time_analysis(ts, 0).all_schedulable(ts));
  // 2*100k cycle switches add 2ms per job: now infeasible.
  EXPECT_FALSE(response_time_analysis(ts, 100'000).all_schedulable(ts));
}

TEST(Analysis, EdfUtilizationBoundary) {
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("a", 500'000, milliseconds(10));  // U=0.5
  ts.add("b", 500'000, milliseconds(10));  // U=0.5 -> exactly 1.0
  EXPECT_TRUE(edf_utilization_test(ts));
  ts.add("c", 1'000, milliseconds(10));
  EXPECT_FALSE(edf_utilization_test(ts));
}

TEST(Analysis, EdfBeatsRmOnHighUtilization) {
  // U = 0.97 set: fails the RM bound, passes EDF.
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("a", 485'000, milliseconds(10));
  ts.add("b", 970'000, milliseconds(20));
  EXPECT_FALSE(rm_bound_test(ts));
  EXPECT_TRUE(edf_utilization_test(ts));
  EXPECT_TRUE(edf_demand_test(ts));
}

TEST(Analysis, EdfDemandTestConstrainedDeadlines) {
  TaskSet ts;
  ts.frequency = mhz(100);
  // C=2ms, T=10ms, D=3ms and C=2ms, T=10ms, D=4ms: h(3)=2<=3, h(4)=4<=4 ok.
  ts.add("a", 200'000, milliseconds(10), milliseconds(3));
  ts.add("b", 200'000, milliseconds(10), milliseconds(4));
  EXPECT_TRUE(edf_demand_test(ts));
  // Tighten: both D=3ms -> h(3) = 4 > 3: infeasible.
  TaskSet bad;
  bad.frequency = mhz(100);
  bad.add("a", 200'000, milliseconds(10), milliseconds(3));
  bad.add("b", 200'000, milliseconds(10), milliseconds(3));
  EXPECT_FALSE(edf_demand_test(bad));
}

TEST(Analysis, Hyperperiod) {
  TaskSet ts;
  ts.add("a", 1, 4);
  ts.add("b", 1, 6);
  ts.add("c", 1, 10);
  EXPECT_EQ(hyperperiod(ts), 60u);
}

TEST(Analysis, MinFeasibleFrequencyMonotone) {
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("t1", 300'000, milliseconds(4));
  ts.add("t2", 300'000, milliseconds(6));
  assign_rm_priorities(ts);
  const auto f = min_feasible_frequency(ts, mhz(10), mhz(1000));
  ASSERT_TRUE(f.has_value());
  // Feasible at the found frequency...
  TaskSet at = ts;
  at.frequency = *f;
  EXPECT_TRUE(response_time_analysis(at).all_schedulable(at));
  // ...and infeasible a notch below.
  TaskSet below = ts;
  below.frequency = *f - mhz(5);
  EXPECT_FALSE(response_time_analysis(below).all_schedulable(below));
}

TEST(Analysis, MinFeasibleFrequencyRejectsImpossible) {
  TaskSet ts;
  ts.frequency = mhz(100);
  ts.add("t", 2'000'000'000, milliseconds(1));  // 2e9 cycles per ms
  EXPECT_FALSE(min_feasible_frequency(ts, mhz(10), ghz(1)).has_value());
}

TEST(Analysis, AmdahlSpeedupShape) {
  ParallelApp app;
  app.total_work = 1'000'000;
  app.serial_fraction = 0.1;
  EXPECT_NEAR(app.speedup(1), 1.0, 1e-9);
  EXPECT_LT(app.speedup(16), 16.0);      // sublinear
  EXPECT_NEAR(app.speedup(1'000'000), 10.0, 0.1);  // asymptote 1/s
  // Serial boost pushes the asymptote up.
  EXPECT_GT(app.speedup(64, 4.0), app.speedup(64, 1.0));
}

TEST(Analysis, CriticalityNames) {
  EXPECT_STREQ(criticality_name(Criticality::kHard), "hard");
  EXPECT_STREQ(criticality_name(Criticality::kBestEffort), "best-effort");
}

}  // namespace
}  // namespace rw::sched
