// Property sweeps over randomly generated dataflow graphs: repetition-
// vector invariants, back-pressure safety, buffer-sizing sufficiency and
// executor determinism (the Sec. III machinery must hold for arbitrary
// well-formed graphs, not just the hand-built examples).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "dataflow/buffers.hpp"
#include "dataflow/executor.hpp"

namespace rw::dataflow {
namespace {

/// Random multirate DAG: a source, L layers of 1-2 actors, a sink; every
/// layer is fully connected to the next with small random rates that keep
/// sources/sinks at one firing per iteration.
Graph random_graph(Rng& rng) {
  Graph g;
  const auto src = g.add_actor("src", 200 + rng.next_below(800),
                               rng.next_below(4));
  std::vector<ActorId> prev{src};
  const int layers = static_cast<int>(rng.next_int(1, 3));
  int id = 0;
  for (int l = 0; l < layers; ++l) {
    const int width = static_cast<int>(rng.next_int(1, 2));
    std::vector<ActorId> cur;
    for (int w = 0; w < width; ++w) {
      const auto a =
          g.add_actor("a" + std::to_string(id++),
                      1'000 + rng.next_below(20'000), rng.next_below(4));
      cur.push_back(a);
      for (const auto p : prev) {
        // Equal prod/cons keeps the repetition vector uniform, so the
        // boundary actors stay at one firing per iteration.
        const auto rate = static_cast<std::uint32_t>(rng.next_int(1, 3));
        g.connect(p, a, rate, rate);
      }
    }
    prev = cur;
  }
  const auto snk = g.add_actor("snk", 200 + rng.next_below(800),
                               rng.next_below(4));
  for (const auto p : prev) g.connect(p, snk, 1, 1);
  return g;
}

class DataflowProperty : public ::testing::TestWithParam<int> {};

TEST_P(DataflowProperty, RepetitionVectorSolvesBalanceEquations) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const Graph g = random_graph(rng);
  const auto rv = g.repetition_vector();
  ASSERT_TRUE(rv.ok()) << rv.error().to_string();
  for (const auto& e : g.edges()) {
    EXPECT_EQ(rv.value().cycles[e.src.index()] * e.prod_per_cycle(),
              rv.value().cycles[e.dst.index()] * e.cons_per_cycle())
        << "edge " << e.name;
  }
  // Minimality: the gcd of all cycle counts is 1.
  std::uint64_t gg = 0;
  for (const auto c : rv.value().cycles) gg = std::gcd(gg, c);
  EXPECT_EQ(gg, 1u);
}

TEST_P(DataflowProperty, BackPressureNeverCorruptsUnderJitter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  const Graph g = random_graph(rng);

  ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = 4;
  cfg.iterations = 60;
  // Deliberately too-tight period half the time: overload must still not
  // corrupt anything internally.
  cfg.source_period = rng.next_bool(0.5) ? microseconds(40)
                                         : microseconds(400);
  auto jrng = std::make_shared<Rng>(rng.next_u64());
  cfg.acet = [jrng](const Actor&, std::uint64_t, Cycles wcet) {
    return jrng->next_bool(0.3) ? wcet * 3 : wcet;
  };
  const auto r = run_data_driven(g, cfg);
  EXPECT_EQ(r.internal_corruptions(), 0u);
  EXPECT_EQ(r.overwrites, 0u);
  // Token conservation: every edge level is bounded by its capacity.
  for (std::size_t i = 0; i < g.edges().size(); ++i)
    SUCCEED();  // levels are internal; corruption counters are the probe
}

TEST_P(DataflowProperty, ComputedCapacitiesAreSufficient) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 52361 + 11);
  const Graph g = random_graph(rng);

  ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = 4;
  cfg.source_period = microseconds(500);  // generous: must be feasible
  const auto sizing = compute_buffer_capacities(g, cfg);
  if (!sizing.wait_free) GTEST_SKIP() << "period infeasible for this graph";
  cfg.buffer_capacities = sizing.capacities;
  cfg.iterations = 120;
  const auto r = run_data_driven(g, cfg);
  EXPECT_EQ(r.source_drops, 0u) << "seed " << GetParam();
  EXPECT_EQ(r.sink_underruns, 0u) << "seed " << GetParam();
}

TEST_P(DataflowProperty, ExecutorsAreDeterministic) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271828 + 1);
  const Graph g = random_graph(rng);
  ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = 3;
  cfg.source_period = microseconds(300);
  cfg.iterations = 40;
  const std::uint64_t seed = rng.next_u64();
  auto make_acet = [seed]() -> ActorAcet {
    auto r = std::make_shared<Rng>(seed);
    return [r](const Actor&, std::uint64_t, Cycles wcet) {
      return std::max<Cycles>(1, wcet / 2 + r->next_below(wcet));
    };
  };
  cfg.acet = make_acet();
  const auto a = run_data_driven(g, cfg);
  cfg.acet = make_acet();
  const auto b = run_data_driven(g, cfg);
  EXPECT_EQ(a.finish, b.finish);
  EXPECT_EQ(a.firings, b.firings);
  EXPECT_EQ(a.source_drops, b.source_drops);
  EXPECT_EQ(a.sink_underruns, b.sink_underruns);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DataflowProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace rw::dataflow
