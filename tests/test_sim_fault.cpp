// rw::fault sim-layer corpus: core crash/recover/migrate/stall, DMA
// programming rejection + abort, IRQ drops, interconnect degradation,
// watchdog expiry/kick, the hwsem livelock breaker under injected core
// death, and the armed-but-empty-plan fingerprint identity contract.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "fault/watchdog.hpp"
#include "perf/workload.hpp"
#include "sim/platform.hpp"
#include "sim/process.hpp"
#include "vpdebug/replay.hpp"

namespace rw::fault {
namespace {

using sim::Platform;
using sim::PlatformConfig;
using sim::Process;

Process compute_items(Platform& p, std::size_t core, int items, Cycles each,
                      int& done) {
  for (int i = 0; i < items; ++i) {
    co_await p.core(core).compute(each, "item");
    ++done;
  }
}

TEST(CoreFault, FailParksInFlightComputeUntilRecover) {
  Platform p(PlatformConfig::homogeneous(2));
  int done = 0;
  spawn(p.kernel(), compute_items(p, 0, 5, 4000, done));
  p.kernel().schedule_at(microseconds(25), [&] { p.core(0).fail(); });
  p.kernel().run();

  // Crashed mid-item-3: progress froze, the block parked, the core reports
  // the crash, and the simulation drained without the worker finishing.
  EXPECT_EQ(done, 2);
  EXPECT_TRUE(p.core(0).failed());
  EXPECT_EQ(p.core(0).parked_count(), 1u);
  EXPECT_EQ(p.core(0).fail_count(), 1u);
  EXPECT_EQ(p.core(0).last_fail_time(), microseconds(25));
  EXPECT_EQ(p.core(0).current_label(), "<crashed>");

  p.core(0).recover();
  p.kernel().run();
  EXPECT_EQ(done, 5);
  EXPECT_FALSE(p.core(0).failed());
  EXPECT_EQ(p.core(0).parked_count(), 0u);
}

TEST(CoreFault, ComputeSubmittedWhileFailedParksImmediately) {
  Platform p(PlatformConfig::homogeneous(1));
  p.core(0).fail();
  int done = 0;
  spawn(p.kernel(), compute_items(p, 0, 1, 1000, done));
  p.kernel().run();
  EXPECT_EQ(done, 0);
  EXPECT_EQ(p.core(0).parked_count(), 1u);

  p.core(0).recover();
  p.kernel().run();
  EXPECT_EQ(done, 1);
}

TEST(CoreFault, MigrateParkedResumesOnSurvivor) {
  Platform p(PlatformConfig::homogeneous(2));
  int done = 0;
  spawn(p.kernel(), compute_items(p, 0, 3, 4000, done));
  p.kernel().schedule_at(microseconds(5), [&] {
    p.core(0).fail();
    EXPECT_EQ(p.core(0).migrate_parked(p.core(1)), 1u);
  });
  p.kernel().run();

  // The parked block re-executed on core 1 and the remaining iterations
  // follow it there via the retargeted awaitable's core pointer... the
  // loop re-submits to core 0, which is still failed, so only the moved
  // block completes plus everything the coroutine then parks again.
  EXPECT_TRUE(p.core(0).failed());
  EXPECT_GT(p.core(1).cycles_executed(), 0u);
  EXPECT_GE(done, 1);
}

// Regression: issue tags must be globally unique, not per-core. Here the
// survivor (core 1) has issued zero blocks when the parked block migrates
// to it, so with per-core counters the re-issue would reuse tag value 1 —
// exactly the tag the stale end event (still pending at the original
// 10us finish time) captured on core 0. That stale event must stay dead:
// one resume, at the migrated finish time, not two.
TEST(CoreFault, StaleEndEventAfterMigrationNeverDoubleResumes) {
  Platform p(PlatformConfig::homogeneous(2));
  int done = 0;
  spawn(p.kernel(), compute_items(p, 0, 1, 4000, done));  // ends at 10us
  p.kernel().schedule_at(microseconds(5), [&] {
    p.core(0).fail();
    EXPECT_EQ(p.core(0).migrate_parked(p.core(1)), 1u);
  });
  p.kernel().run();

  EXPECT_EQ(done, 1);  // exactly one resume, from the re-issued end event
  EXPECT_EQ(p.kernel().now(), microseconds(15));  // 5us crash + 10us rerun
  EXPECT_EQ(p.core(1).cycles_executed(), 4000u);
}

// Regression: migrating to a *faster* survivor finishes the block — and
// destroys the coroutine frame holding the awaitable — before the failed
// core's original end event ever fires. That stale event must validate
// without dereferencing the freed awaitable (the ASan job enforces this)
// and then do nothing.
TEST(CoreFault, StaleEndEventOutlivingMigratedFrameIsDefused) {
  Platform p(PlatformConfig::homogeneous(2));
  p.core(1).set_frequency(ghz(4));  // 10x the 400MHz default
  int done = 0;
  spawn(p.kernel(), compute_items(p, 0, 1, 40'000, done));  // 100us on core 0
  p.kernel().schedule_at(microseconds(5), [&] {
    p.core(0).fail();
    p.core(0).migrate_parked(p.core(1));
  });
  p.kernel().run();

  EXPECT_EQ(done, 1);  // resumed once, at 15us, on the fast survivor
  // The stale 100us end event still drains — as a no-op.
  EXPECT_EQ(p.kernel().now(), microseconds(100));
}

TEST(CoreFault, StallDelaysWithoutLosingWork) {
  auto run = [](bool with_stall) {
    Platform p(PlatformConfig::homogeneous(1));
    int done = 0;
    spawn(p.kernel(), compute_items(p, 0, 4, 4000, done));
    if (with_stall)
      p.kernel().schedule_at(microseconds(12),
                             [&] { p.core(0).stall(microseconds(7)); });
    p.kernel().run();
    EXPECT_EQ(done, 4);
    return p.kernel().now();
  };
  const TimePs clean = run(false);
  const TimePs stalled = run(true);
  EXPECT_EQ(stalled, clean + microseconds(7));
}

TEST(DmaFault, ZeroLengthProgrammingIsRejectedNotSilentlyCompleted) {
  Platform p(PlatformConfig::homogeneous(2));
  int completions = 0;
  EXPECT_FALSE(p.dma().start(p.shared_base(), p.shared_base() + 4096, 0,
                             [&] { ++completions; }));
  EXPECT_EQ(p.dma().error(), sim::DmaEngine::kErrZeroLength);
  EXPECT_EQ(p.dma().read_reg(sim::DmaEngine::kRegError),
            sim::DmaEngine::kErrZeroLength);
  EXPECT_FALSE(p.dma().busy());
  p.kernel().run();
  EXPECT_EQ(completions, 0);  // no sneaky no-op completion event
}

TEST(DmaFault, OverlappingRangesAreRejected) {
  Platform p(PlatformConfig::homogeneous(2));
  int completions = 0;
  EXPECT_FALSE(p.dma().start(p.shared_base(), p.shared_base() + 64, 256,
                             [&] { ++completions; }));
  EXPECT_EQ(p.dma().error(), sim::DmaEngine::kErrOverlap);
  p.kernel().run();
  EXPECT_EQ(completions, 0);

  // A valid transfer afterwards clears the error latch and completes.
  EXPECT_TRUE(p.dma().start(p.shared_base(), p.shared_base() + 4096, 256,
                            [&] { ++completions; }));
  EXPECT_EQ(p.dma().error(), sim::DmaEngine::kErrNone);
  p.kernel().run();
  EXPECT_EQ(completions, 1);
}

TEST(DmaFault, AbortCancelsCompletionAndLatchesError) {
  Platform p(PlatformConfig::homogeneous(2));
  EXPECT_FALSE(p.dma().abort());  // idle: nothing to abort

  int completions = 0;
  EXPECT_TRUE(p.dma().start(p.shared_base(), p.shared_base() + 4096, 4096,
                            [&] { ++completions; }));
  EXPECT_TRUE(p.dma().busy());
  EXPECT_TRUE(p.dma().abort());
  EXPECT_FALSE(p.dma().busy());
  EXPECT_EQ(p.dma().error(), sim::DmaEngine::kErrAborted);
  EXPECT_EQ(p.dma().abort_count(), 1u);
  p.kernel().run();
  EXPECT_EQ(completions, 0);  // the stale completion event is a no-op
}

TEST(IrqFault, InjectedDropsLoseRaises) {
  Platform p(PlatformConfig::homogeneous(1));
  int delivered = 0;
  const std::size_t line = sim::kIrqSoftBase;
  p.irqc().set_handler(line, [&](std::size_t l) {
    ++delivered;
    p.irqc().ack(l);
  });
  p.irqc().inject_drops(line, 2);
  for (int i = 0; i < 3; ++i) p.irqc().raise(line);
  p.kernel().run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(p.irqc().dropped_count(), 2u);
  EXPECT_EQ(p.irqc().read_reg(sim::InterruptController::kRegDropCount), 2u);
}

TEST(IcnFault, DegradeScalesOccupancyAndDropsDouble) {
  Platform p(PlatformConfig::homogeneous(2));
  auto& icn = p.interconnect();
  const auto [s0, e0] = icn.reserve_transfer(sim::CoreId{0}, sim::CoreId{1}, 1024, 0);
  const DurationPs nominal = e0 - s0;

  icn.set_degrade(2.0);
  const auto [s1, e1] = icn.reserve_transfer(sim::CoreId{0}, sim::CoreId{1}, 1024, e0);
  EXPECT_EQ(e1 - s1, 2 * nominal);

  icn.set_degrade(1.0);  // back to the exact nominal value
  const auto [s2, e2] = icn.reserve_transfer(sim::CoreId{0}, sim::CoreId{1}, 1024, e1);
  EXPECT_EQ(e2 - s2, nominal);

  icn.inject_drops(1);
  const auto [s3, e3] = icn.reserve_transfer(sim::CoreId{0}, sim::CoreId{1}, 1024, e2);
  EXPECT_EQ(e3 - s3, 2 * nominal);  // drop + retransmit
  EXPECT_EQ(icn.packets_dropped(), 1u);
  const auto [s4, e4] = icn.reserve_transfer(sim::CoreId{0}, sim::CoreId{1}, 1024, e3);
  EXPECT_EQ(e4 - s4, nominal);  // the armed drop was consumed

  // The planner's view is deliberately un-faulted.
  icn.set_degrade(4.0);
  EXPECT_EQ(icn.nominal_latency(sim::CoreId{0}, sim::CoreId{1}, 1024),
            static_cast<DurationPs>(nominal));
}

TEST(IcnFault, MeshPerLinkDegradeSlowsOnlyRoutesUsingThatLink) {
  PlatformConfig cfg = PlatformConfig::homogeneous(4);
  cfg.interconnect = PlatformConfig::Icn::kMesh;
  cfg.mesh.width = 2;
  cfg.mesh.height = 2;
  Platform p(std::move(cfg));
  auto* mesh = dynamic_cast<sim::MeshNoc*>(&p.interconnect());
  ASSERT_NE(mesh, nullptr);
  ASSERT_GT(mesh->num_links(), 0u);
  EXPECT_THROW(mesh->set_link_degrade(mesh->num_links(), 2.0),
               std::out_of_range);

  // Degrading every link one at a time must slow at least one route.
  const auto [s0, e0] = mesh->reserve_transfer(sim::CoreId{0}, sim::CoreId{3}, 512, 0);
  const DurationPs nominal = e0 - s0;
  bool slowed = false;
  TimePs t = e0;
  for (std::size_t l = 0; l < mesh->num_links() && !slowed; ++l) {
    mesh->set_link_degrade(l, 3.0);
    const auto [s1, e1] = mesh->reserve_transfer(sim::CoreId{0}, sim::CoreId{3}, 512, t);
    t = e1;
    slowed = (e1 - s1) > nominal;
    mesh->set_link_degrade(l, 1.0);
  }
  EXPECT_TRUE(slowed);
}

TEST(Watchdog, ExpiresWithoutKickAndKickDefers) {
  Platform p(PlatformConfig::homogeneous(1));
  WatchdogPeripheral wdt(p.kernel(), p.tracer(), p.irqc(),
                         sim::kIrqSoftBase + 1);
  std::vector<TimePs> expiries;
  p.irqc().set_handler(sim::kIrqSoftBase + 1, [&](std::size_t l) {
    expiries.push_back(p.kernel().now());
    p.irqc().ack(l);
    if (expiries.size() >= 2) wdt.disarm();
  });
  wdt.arm(microseconds(10));
  p.kernel().schedule_at(microseconds(5), [&] { wdt.kick(); });
  p.kernel().run();

  // Kick at 5us deferred the first expiry to 15us; auto re-arm produced a
  // second at 25us; the handler then disarmed, so the run drained.
  ASSERT_EQ(expiries.size(), 2u);
  EXPECT_EQ(expiries[0], microseconds(15));
  EXPECT_EQ(expiries[1], microseconds(25));
  EXPECT_EQ(wdt.expired_count(), 2u);
  EXPECT_EQ(wdt.kick_count(), 1u);
}

TEST(Watchdog, RegisterInterfaceArmsKicksAndCounts) {
  Platform p(PlatformConfig::homogeneous(1));
  WatchdogPeripheral wdt(p.kernel(), p.tracer(), p.irqc(),
                         sim::kIrqSoftBase + 2);
  int fired = 0;
  p.irqc().set_handler(sim::kIrqSoftBase + 2, [&](std::size_t l) {
    ++fired;
    p.irqc().ack(l);
    wdt.write_reg(WatchdogPeripheral::kRegCtrl, 0);  // disarm via register
  });
  wdt.write_reg(WatchdogPeripheral::kRegTimeoutPs, microseconds(8));
  wdt.write_reg(WatchdogPeripheral::kRegCtrl, 1);  // arm
  EXPECT_TRUE(wdt.armed());
  p.kernel().schedule_at(microseconds(4), [&] {
    wdt.write_reg(WatchdogPeripheral::kRegKick, 1);
  });
  p.kernel().run();
  EXPECT_EQ(fired, 1);
  // The disarmed auto-re-arm event drains as a generation-guarded no-op,
  // so the kernel ends at its (stale) timestamp without a second IRQ.
  EXPECT_GE(p.kernel().now(), microseconds(12));
  EXPECT_EQ(wdt.read_reg(WatchdogPeripheral::kRegExpiredCount), 1u);
  EXPECT_EQ(wdt.read_reg(WatchdogPeripheral::kRegKickCount), 1u);
  EXPECT_THROW(wdt.arm(0), std::invalid_argument);
}

Process sem_holder(Platform& p, std::size_t cell, bool& held_ok) {
  held_ok = p.hwsem().try_acquire(cell, p.core(0).id());
  co_await p.core(0).compute(40'000, "critical");  // crashed mid-section
  if (p.hwsem().held(cell) && p.hwsem().holder(cell) == p.core(0).id())
    p.hwsem().release(cell, p.core(0).id());
}

Process sem_waiter(Platform& p, std::size_t cell, bool& acquired) {
  for (int attempt = 0; attempt < 2000 && !acquired; ++attempt) {
    acquired = p.hwsem().try_acquire(cell, p.core(1).id());
    if (!acquired) co_await sim::delay(p.kernel(), nanoseconds(500));
  }
  if (acquired) p.hwsem().release(cell, p.core(1).id());
}

// The livelock scenario the recovery supervisor exists for: the semaphore
// holder's core dies inside the critical section. Nobody but the watchdog
// can ever release that cell; the waiter must eventually get it.
TEST(HwsemRecovery, HolderDiesWatchdogForceReleaseBreaksLivelock) {
  Platform p(PlatformConfig::homogeneous(2));
  WatchdogPeripheral wdt(p.kernel(), p.tracer(), p.irqc(),
                         sim::InterruptController::kNumLines - 1);
  SupervisorConfig scfg;
  scfg.policy = RecoveryPolicy::kWatchdogRestart;
  scfg.watchdog_timeout = microseconds(20);
  FaultTimeline timeline;
  RecoverySupervisor sup(p, wdt, scfg, &timeline);
  sup.start();

  bool held_ok = false;
  bool acquired = false;
  spawn(p.kernel(), sem_holder(p, 0, held_ok));
  spawn(p.kernel(), sem_waiter(p, 0, acquired));
  p.kernel().schedule_at(microseconds(3), [&] { p.core(0).fail(); });
  p.kernel().run(10'000'000);

  EXPECT_TRUE(held_ok);
  EXPECT_TRUE(acquired);  // no livelock: the waiter got the cell
  EXPECT_EQ(sup.sem_releases(), 1u);
  EXPECT_GE(sup.restarts(), 1u);
  EXPECT_FALSE(p.hwsem().held(0));
  EXPECT_EQ(timeline.count_prefix("recovery.sem_release"), 1u);
  // The restarted holder's conditional release must not have thrown (the
  // run completing at all asserts that), and the run terminated: the
  // supervisor eventually disarmed the watchdog.
  EXPECT_FALSE(wdt.armed());
}

struct FingerprintRun {
  std::uint64_t fingerprint;
  std::uint64_t trace_events;
  std::uint64_t kernel_events;
  TimePs makespan;

  bool operator==(const FingerprintRun&) const = default;
};

FingerprintRun run_workload(const std::string& name, std::uint64_t seed,
                            bool with_empty_plan) {
  PlatformConfig cfg = PlatformConfig::homogeneous(4);
  cfg.trace_enabled = true;
  Platform p(std::move(cfg));
  vpdebug::ExecutionRecorder rec(p);
  std::unique_ptr<FaultInjector> injector;
  if (with_empty_plan) {
    injector = std::make_unique<FaultInjector>(p, FaultPlan{});
    injector->arm();
  }
  EXPECT_TRUE(perf::spawn_workload(name, p, seed, /*scale=*/2));
  p.kernel().run();
  if (injector) {
    EXPECT_EQ(injector->armed_events(), 0u);
  }
  return {rec.fingerprint(), rec.events(), p.kernel().events_executed(),
          p.kernel().now()};
}

// The rw::perf contract, restated for rw::fault: arming an empty plan
// must be bit-identical to not having the fault subsystem at all, across
// the whole workload corpus.
TEST(FaultIdentity, ArmedEmptyPlanIsBitIdenticalAcrossWorkloadCorpus) {
  for (const auto& w : perf::workload_registry()) {
    for (std::uint64_t seed : {5ULL, 77ULL}) {
      const FingerprintRun off = run_workload(w.name, seed, false);
      const FingerprintRun on = run_workload(w.name, seed, true);
      EXPECT_EQ(off, on) << w.name << " seed=" << seed;
    }
  }
}

Process busy_loop(Platform& p, int items) {
  for (int i = 0; i < items; ++i)
    co_await p.core(0).compute(4000, "bg");
}

TEST(Injector, ExplicitPlanAppliesAtTheScheduledPicosecond) {
  Platform p(PlatformConfig::homogeneous(2));
  FaultPlan plan;
  plan.crash_core(microseconds(5), 1)
      .stall_core(microseconds(7), 0, microseconds(2))
      .drop_packets(microseconds(8), 3);
  FaultInjector injector(p, plan);
  injector.arm();
  EXPECT_EQ(injector.armed_events(), 3u);

  spawn(p.kernel(), busy_loop(p, 10));  // keeps live events past 8us
  p.kernel().run();

  EXPECT_EQ(injector.applied(), 3u);
  EXPECT_TRUE(p.core(1).failed());
  EXPECT_EQ(p.core(1).last_fail_time(), microseconds(5));
  EXPECT_EQ(p.core(0).stall_count(), 1u);
  ASSERT_EQ(injector.timeline().size(), 3u);
  EXPECT_EQ(injector.timeline().records()[0].time, microseconds(5));
  EXPECT_EQ(injector.timeline().records()[0].what, "core_crash");
  EXPECT_EQ(injector.timeline().count_prefix("core_"), 2u);
}

TEST(Injector, TimelineJsonIsByteStable) {
  auto once = [] {
    Platform p(PlatformConfig::homogeneous(2));
    FaultInjector injector(p, FaultPlan{}
                                  .crash_core(microseconds(3), 0)
                                  .spurious_irq(microseconds(4), 9));
    injector.arm();
    spawn(p.kernel(), busy_loop(p, 6));
    p.kernel().run();
    return injector.timeline().to_json();
  };
  const std::string a = once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, once());
}

}  // namespace
}  // namespace rw::fault
