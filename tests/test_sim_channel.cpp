#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/process.hpp"

namespace rw::sim {
namespace {

Process producer(Kernel& k, Channel<int>& ch, int n, DurationPs pace) {
  for (int i = 0; i < n; ++i) {
    if (pace) co_await delay(k, pace);
    co_await ch.send(i);
  }
}

Process consumer(Kernel& k, Channel<int>& ch, int n, DurationPs pace,
                 std::vector<int>& out) {
  for (int i = 0; i < n; ++i) {
    if (pace) co_await delay(k, pace);
    out.push_back(co_await ch.recv());
  }
}

TEST(Channel, DeliversInOrder) {
  Kernel k;
  Channel<int> ch(k, 4);
  std::vector<int> out;
  spawn(k, producer(k, ch, 10, 0));
  spawn(k, consumer(k, ch, 10, 0, out));
  k.run();
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(Channel, SlowConsumerBackPressuresProducer) {
  Kernel k;
  Channel<int> ch(k, 2);
  std::vector<int> out;
  spawn(k, producer(k, ch, 10, /*pace=*/0));
  spawn(k, consumer(k, ch, 10, /*pace=*/100, out));
  k.run();
  EXPECT_EQ(out.size(), 10u);
  // Producer cannot have run ahead more than capacity + one in-flight recv.
  EXPECT_EQ(k.now(), 1000u);
}

TEST(Channel, SlowProducerBlocksConsumer) {
  Kernel k;
  Channel<int> ch(k, 4);
  std::vector<int> out;
  spawn(k, producer(k, ch, 5, /*pace=*/200));
  spawn(k, consumer(k, ch, 5, /*pace=*/0, out));
  k.run();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(k.now(), 1000u);  // gated by the producer
}

TEST(Channel, TrySendRespectsCapacity) {
  Kernel k;
  Channel<int> ch(k, 2);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_TRUE(ch.full());
  EXPECT_FALSE(ch.try_send(3));
  EXPECT_EQ(ch.size(), 2u);
}

TEST(Channel, TryRecvDrains) {
  Kernel k;
  Channel<int> ch(k, 4);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.try_send(7);
  ch.try_send(8);
  EXPECT_EQ(ch.try_recv().value(), 7);
  EXPECT_EQ(ch.try_recv().value(), 8);
  EXPECT_FALSE(ch.try_recv().has_value());
}

TEST(Channel, CountsTraffic) {
  Kernel k;
  Channel<int> ch(k, 8);
  std::vector<int> out;
  spawn(k, producer(k, ch, 6, 10));
  spawn(k, consumer(k, ch, 6, 0, out));
  k.run();
  EXPECT_EQ(ch.total_sent(), 6u);
  EXPECT_EQ(ch.total_received(), 6u);
  EXPECT_TRUE(ch.empty());
}

Process sender_once(Channel<int>& ch, int v) { co_await ch.send(v); }

TEST(Channel, DirectHandoffToBlockedReceiver) {
  Kernel k;
  Channel<int> ch(k, 1);
  std::vector<int> out;
  spawn(k, consumer(k, ch, 1, 0, out));
  k.run();  // consumer blocks on empty channel
  spawn(k, sender_once(ch, 42));
  k.run();
  EXPECT_EQ(out, (std::vector<int>{42}));
}

TEST(Channel, ManyToOneFairness) {
  Kernel k;
  Channel<int> ch(k, 1);
  std::vector<int> out;
  spawn(k, producer(k, ch, 5, 10));
  spawn(k, producer(k, ch, 5, 10));
  spawn(k, consumer(k, ch, 10, 0, out));
  k.run();
  EXPECT_EQ(out.size(), 10u);
  // All values delivered exactly twice (two identical producers).
  for (int v = 0; v < 5; ++v)
    EXPECT_EQ(std::count(out.begin(), out.end(), v), 2);
}

TEST(Channel, MoveOnlyPayload) {
  Kernel k;
  Channel<std::unique_ptr<int>> ch(k, 2);
  EXPECT_TRUE(ch.try_send(std::make_unique<int>(5)));
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace rw::sim
