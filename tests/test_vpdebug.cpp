#include <gtest/gtest.h>

#include "sim/process.hpp"
#include "vpdebug/debugger.hpp"
#include "vpdebug/race.hpp"
#include "vpdebug/replay.hpp"
#include "vpdebug/script.hpp"
#include "vpdebug/victim.hpp"

namespace rw::vpdebug {
namespace {

sim::PlatformConfig two_cores() {
  auto cfg = sim::PlatformConfig::homogeneous(2, mhz(400));
  cfg.trace_enabled = true;
  return cfg;
}

sim::Process touch_shared(sim::Platform& p, std::size_t core,
                          std::uint64_t value) {
  co_await p.core(core).compute(1'000, "warmup");
  p.memory().write_u64(sim::CoreId{static_cast<std::uint32_t>(core)},
                       p.shared_base(), value);
}

TEST(Debugger, MemoryWatchpointSuspendsSystem) {
  sim::Platform p(two_cores());
  Debugger dbg(p);
  dbg.watch_memory(p.shared_base(), 8);
  sim::spawn(p.kernel(), touch_shared(p, 0, 42));
  const auto stop = dbg.resume();
  EXPECT_EQ(stop.kind, StopKind::kWatchpointMem);
  EXPECT_NE(stop.detail.find("wrote"), std::string::npos);
  // The write already landed; the whole system is frozen afterwards.
  EXPECT_EQ(dbg.read_mem_u64(p.shared_base()), 42u);
}

TEST(Debugger, ReadWatchpointsAreSeparate) {
  sim::Platform p(two_cores());
  Debugger dbg(p);
  dbg.watch_memory(p.shared_base(), 8, /*on_write=*/false,
                   /*on_read=*/true);
  sim::spawn(p.kernel(), touch_shared(p, 0, 7));  // write only
  const auto stop = dbg.resume();
  EXPECT_EQ(stop.kind, StopKind::kFinished);  // no read happened
}

TEST(Debugger, TaskBreakpoint) {
  sim::Platform p(two_cores());
  Debugger dbg(p);
  dbg.break_on_task("warmup");
  sim::spawn(p.kernel(), touch_shared(p, 1, 9));
  const auto stop = dbg.resume();
  EXPECT_EQ(stop.kind, StopKind::kBreakpointTask);
  EXPECT_NE(stop.detail.find("warmup"), std::string::npos);
  // Resume to completion.
  EXPECT_EQ(dbg.resume().kind, StopKind::kFinished);
}

TEST(Debugger, SignalWatchpointOnIrqLine) {
  sim::Platform p(two_cores());
  Debugger dbg(p);
  dbg.watch_signal("irq0");
  p.timer().start_oneshot(microseconds(10));
  const auto stop = dbg.resume();
  EXPECT_EQ(stop.kind, StopKind::kWatchpointSignal);
  EXPECT_TRUE(dbg.signal_level("irq0"));
}

TEST(Debugger, InspectionWhileSuspended) {
  sim::Platform p(two_cores());
  p.core(0).set_reg(1, 0xabc);
  Debugger dbg(p);
  EXPECT_EQ(dbg.core_register(0, 1), 0xabcu);
  EXPECT_EQ(dbg.core_task(0), "<idle>");
  EXPECT_EQ(dbg.peripheral_register(
                "irqc", sim::InterruptController::kRegPending),
            0u);
  EXPECT_THROW(dbg.peripheral_register("nope", 0), std::invalid_argument);
  const std::string snap = dbg.snapshot();
  EXPECT_NE(snap.find("core0"), std::string::npos);
  EXPECT_NE(snap.find("timer"), std::string::npos);
}

TEST(Debugger, AssertionStopsRun) {
  sim::Platform p(two_cores());
  Debugger dbg(p);
  dbg.add_assertion("shared stays < 42", [&] {
    return dbg.read_mem_u64(p.shared_base()) < 42;
  });
  sim::spawn(p.kernel(), touch_shared(p, 0, 42));
  const auto stop = dbg.resume();
  EXPECT_EQ(stop.kind, StopKind::kAssertion);
  EXPECT_NE(stop.detail.find("shared stays"), std::string::npos);
}

TEST(Debugger, RunUntilAdvancesTime) {
  sim::Platform p(two_cores());
  Debugger dbg(p);
  p.timer().start_periodic(microseconds(10));
  const auto stop = dbg.run_until(microseconds(35));
  EXPECT_EQ(stop.kind, StopKind::kTimeReached);
  EXPECT_EQ(p.timer().fire_count(), 3u);
}

// ------------------------------------------------------------------ races

TEST(RacyCounter, LosesUpdatesWithoutLock) {
  sim::Platform p(two_cores());
  RacyCounterConfig cfg;
  cfg.increments_per_core = 100;
  cfg.seed = 3;
  const auto r = run_racy_counter(p, cfg);
  EXPECT_TRUE(r.bug_manifested());
  EXPECT_GT(r.lost_updates(), 0u);
}

TEST(RacyCounter, SemaphoreFixesTheBug) {
  sim::Platform p(two_cores());
  RacyCounterConfig cfg;
  cfg.increments_per_core = 100;
  cfg.seed = 3;
  cfg.use_semaphore = true;
  const auto r = run_racy_counter(p, cfg);
  EXPECT_FALSE(r.bug_manifested());
  EXPECT_EQ(r.observed, 200u);
}

TEST(RaceDetector, FlagsUnsynchronizedConflicts) {
  sim::Platform p(two_cores());
  RaceDetector det(p, p.shared_base(), 8, microseconds(2));
  RacyCounterConfig cfg;
  cfg.increments_per_core = 50;
  cfg.seed = 5;
  run_racy_counter(p, cfg);
  EXPECT_FALSE(det.races().empty());
  EXPECT_GT(det.accesses_observed(), 100u);
  const auto s = det.races()[0].to_string();
  EXPECT_NE(s.find("race on"), std::string::npos);
}

TEST(RaceDetector, QuietOnLockedVersion) {
  sim::Platform p(two_cores());
  RaceDetector det(p, p.shared_base(), 8, microseconds(2));
  RacyCounterConfig cfg;
  cfg.increments_per_core = 50;
  cfg.seed = 5;
  cfg.use_semaphore = true;
  run_racy_counter(p, cfg);
  EXPECT_TRUE(det.races().empty());
}

// ------------------------------------------------------------- Heisenbug

TEST(Heisenbug, IntrusiveProbePerturbsManifestation) {
  // The central Sec. VII claim: intrusive debugging changes behaviour.
  // Across seeds, the lost-update pattern with a single-core stall must
  // differ from the undisturbed run (often hiding the bug entirely).
  int differs = 0;
  const int kSeeds = 12;
  for (int seed = 0; seed < kSeeds; ++seed) {
    RacyCounterConfig plain;
    plain.increments_per_core = 40;
    plain.seed = static_cast<std::uint64_t>(seed);
    sim::Platform p1(two_cores());
    const auto clean = run_racy_counter(p1, plain);

    RacyCounterConfig probed = plain;
    probed.probe_stall_ps = nanoseconds(700);
    sim::Platform p2(two_cores());
    const auto noisy = run_racy_counter(p2, probed);

    if (clean.observed != noisy.observed) ++differs;
  }
  EXPECT_GT(differs, kSeeds / 2);
}

TEST(Heisenbug, NonIntrusiveReproducesExactly) {
  // Whereas the virtual platform replays the same defect bit-for-bit.
  RacyCounterConfig cfg;
  cfg.increments_per_core = 40;
  cfg.seed = 11;
  sim::Platform p1(two_cores());
  const auto a = run_racy_counter(p1, cfg);
  sim::Platform p2(two_cores());
  const auto b = run_racy_counter(p2, cfg);
  EXPECT_EQ(a.observed, b.observed);
  EXPECT_EQ(a.lost_updates(), b.lost_updates());
}

// ----------------------------------------------------------------- replay

TEST(Replay, FingerprintsMatchAcrossRuns) {
  RacyCounterConfig cfg;
  cfg.increments_per_core = 30;
  cfg.seed = 21;
  const auto check = check_replay(two_cores(), [&](sim::Platform& p) {
    run_racy_counter(p, cfg);
  });
  EXPECT_TRUE(check.deterministic());
  EXPECT_NE(check.first, 0u);
}

TEST(Replay, DifferentSeedsDifferentFingerprints) {
  auto fp = [](std::uint64_t seed) {
    sim::Platform p(two_cores());
    ExecutionRecorder rec(p);
    RacyCounterConfig cfg;
    cfg.increments_per_core = 30;
    cfg.seed = seed;
    run_racy_counter(p, cfg);
    return rec.fingerprint();
  };
  EXPECT_NE(fp(1), fp(2));
}

// ------------------------------------------------------------- masked irq

TEST(MaskedIrq, VirtualPlatformShowsPendingLine) {
  sim::Platform p(two_cores());
  const auto r = run_masked_irq_bug(p);
  EXPECT_FALSE(r.handler_ran);     // the bug: handler never runs
  EXPECT_TRUE(r.irq_line_high);    // but the VP shows the wire pending
  EXPECT_TRUE(p.irqc().is_pending(sim::kIrqTimer));
  EXPECT_TRUE(p.irqc().is_masked(sim::kIrqTimer));
}

// ----------------------------------------------------------------- script

TEST(Script, WatchpointAndInspection) {
  sim::Platform p(two_cores());
  Debugger dbg(p);
  ScriptEngine script(dbg);
  sim::spawn(p.kernel(), touch_shared(p, 0, 99));

  const std::string prog = R"(
    # watch the shared counter
    echo == session start ==
    watch-mem 0x80000000 8 w
    run
    print-mem 0x80000000
    snapshot
  )";
  const auto st = script.execute_script(prog);
  ASSERT_TRUE(st.ok()) << st.error().to_string();
  const std::string& t = script.transcript();
  EXPECT_NE(t.find("== session start =="), std::string::npos);
  EXPECT_NE(t.find("mem-watchpoint"), std::string::npos);
  EXPECT_NE(t.find("mem[0x80000000] = 99"), std::string::npos);
  EXPECT_NE(t.find("system suspended"), std::string::npos);
}

TEST(Script, SystemLevelAssertionWithoutCodeChange) {
  // The Sec. VII pitch: assert a system-level fault condition purely from
  // the script — the application code is untouched.
  sim::Platform p(two_cores());
  Debugger dbg(p);
  ScriptEngine script(dbg);
  sim::spawn(p.kernel(), touch_shared(p, 0, 99));  // app writes 99
  ASSERT_TRUE(script.execute_line("assert-mem-le 0x80000000 15 ctr small")
                  .ok());
  ASSERT_TRUE(script.execute_line("run").ok());
  EXPECT_EQ(script.assertion_failures(), 1u);
  EXPECT_NE(script.transcript().find("assertion failed: ctr small"),
            std::string::npos);
}

TEST(Script, RejectsUnknownAndMalformedCommands) {
  sim::Platform p(two_cores());
  Debugger dbg(p);
  ScriptEngine script(dbg);
  EXPECT_FALSE(script.execute_line("frobnicate").ok());
  EXPECT_FALSE(script.execute_line("watch-mem").ok());
  EXPECT_FALSE(script.execute_line("watch-mem zzz 8").ok());
  EXPECT_FALSE(script.execute_line("print-reg 0").ok());
  EXPECT_TRUE(script.execute_line("# just a comment").ok());
  EXPECT_TRUE(script.execute_line("").ok());
}

TEST(Script, SignalWatchViaScript) {
  sim::Platform p(two_cores());
  Debugger dbg(p);
  ScriptEngine script(dbg);
  p.timer().start_oneshot(microseconds(5));
  ASSERT_TRUE(script.execute_script("watch-sig irq0\nrun").ok());
  EXPECT_NE(script.transcript().find("signal-watchpoint"),
            std::string::npos);
}

}  // namespace
}  // namespace rw::vpdebug
