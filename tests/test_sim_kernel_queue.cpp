// Queue-implementation equivalence: the calendar/two-tier queue and the
// legacy binary heap must be observably identical — same execution order,
// same events_executed, same ExecutionRecorder fingerprints — on every
// workload. This is the determinism contract the non-intrusive-debugging
// claims (Sec. VII) rest on; the queue swap is a pure performance change.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "perf/profiler.hpp"
#include "perf/session.hpp"
#include "perf/workload.hpp"
#include "sim/kernel.hpp"
#include "sim/platform.hpp"
#include "vpdebug/replay.hpp"

namespace rw::sim {
namespace {

constexpr QueuePolicy kPolicies[] = {QueuePolicy::kCalendar,
                                     QueuePolicy::kBinaryHeap};

class KernelQueue : public ::testing::TestWithParam<QueuePolicy> {};

TEST_P(KernelQueue, ExecutesInTimeOrderAcrossTheHorizon) {
  // Times straddle the default wheel horizon (~4.2 us) so both the wheel
  // and the spill/rebase path are exercised.
  Kernel k(GetParam());
  std::vector<TimePs> fired;
  const std::vector<TimePs> times = {7,         4096,     4097,
                                     5'000'000, 40'000'000, 41'000'000};
  for (auto it = times.rbegin(); it != times.rend(); ++it) {
    const TimePs t = *it;
    k.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  k.run();
  std::vector<TimePs> want = times;
  EXPECT_EQ(fired, want);
  EXPECT_EQ(k.now(), times.back());
  EXPECT_EQ(k.events_executed(), times.size());
}

TEST_P(KernelQueue, TieBreakStress) {
  // Many events at identical timestamps with shuffled priorities and
  // insertion orders: execution must follow the documented
  // (time, priority, seq) relation exactly.
  Kernel k(GetParam());
  Rng rng(0xB1A5ED);
  struct Scheduled {
    TimePs time;
    int priority;
    std::size_t seq;  // insertion order
  };
  std::vector<Scheduled> scheduled;
  std::vector<std::size_t> executed;
  constexpr std::size_t kEvents = 2000;
  for (std::size_t i = 0; i < kEvents; ++i) {
    // 8 distinct timestamps and 5 priorities over 2000 events: every
    // (time, priority) cell holds ~50 ties resolved by seq alone.
    const TimePs t = 100 * rng.next_below(8);
    const int pri = static_cast<int>(rng.next_int(-2, 2));
    scheduled.push_back({t, pri, i});
    k.schedule_at(t, [&executed, i] { executed.push_back(i); }, pri);
  }
  k.run();

  std::vector<Scheduled> want = scheduled;
  std::stable_sort(want.begin(), want.end(),
                   [](const Scheduled& a, const Scheduled& b) {
                     return std::tie(a.time, a.priority, a.seq) <
                            std::tie(b.time, b.priority, b.seq);
                   });
  ASSERT_EQ(executed.size(), kEvents);
  for (std::size_t i = 0; i < kEvents; ++i)
    ASSERT_EQ(executed[i], want[i].seq) << "divergence at position " << i;
}

TEST_P(KernelQueue, DaemonsAndRunUntilBoundaries) {
  Kernel k(GetParam());
  std::vector<TimePs> ticks;
  std::function<void()> observer = [&] {
    ticks.push_back(k.now());
    k.schedule_daemon_in(10, observer);
  };
  k.schedule_daemon_at(10, observer);
  k.schedule_at(25, [] {});
  k.run_until(35);
  EXPECT_EQ(ticks, (std::vector<TimePs>{10, 20, 30}));
  EXPECT_EQ(k.now(), 35u);
  // Events landing exactly on a later boundary run; the daemon one past
  // it stays pending.
  k.schedule_at(40, [] {});
  k.run_until(40);
  EXPECT_EQ(ticks.back(), 40u);
  EXPECT_EQ(k.now(), 40u);
  EXPECT_FALSE(k.empty());
  EXPECT_EQ(k.live_events(), 0u);
}

TEST_P(KernelQueue, SchedulingFromHandlersReusesPooledEntries) {
  // Waves of self-rescheduling events: steady state must recycle entries
  // (the pool keeps the kernel allocation-free; this test pins behavior,
  // the bench pins the speed).
  Kernel k(GetParam());
  std::uint64_t count = 0;
  struct Tick {
    Kernel* k;
    std::uint64_t* count;
    void operator()() const {
      if (++*count < 50'000) k->schedule_in(3, Tick{k, count});
    }
  };
  static_assert(EventFn::stores_inline<Tick>);
  for (int lane = 0; lane < 4; ++lane)
    k.schedule_at(static_cast<TimePs>(lane), Tick{&k, &count});
  k.run();
  EXPECT_EQ(count, 50'000u + 3u);
  EXPECT_TRUE(k.empty());
}

TEST_P(KernelQueue, MoveOnlyAndOversizedCapturesExecute) {
  Kernel k(GetParam());
  int sum = 0;
  auto p = std::make_unique<int>(41);
  k.schedule_at(5, [&sum, p = std::move(p)] { sum += *p; });
  struct Big {
    int* sum;
    char pad[120];
  };
  k.schedule_at(6, [big = Big{&sum, {}}] { *big.sum += 1; });
  k.run();
  EXPECT_EQ(sum, 42);
}

INSTANTIATE_TEST_SUITE_P(Policies, KernelQueue,
                         ::testing::ValuesIn(kPolicies),
                         [](const auto& info) {
                           return std::string(queue_policy_name(info.param));
                         });

// ------------------------------------------------- cross-implementation

std::vector<std::size_t> run_soup(QueuePolicy policy, std::uint64_t seed) {
  // A randomized schedule script (normal + daemon events, handler-driven
  // rescheduling, run_until boundaries, a tiny wheel to force spills and
  // rebases) executed on the given queue. Returns the execution order.
  KernelConfig cfg;
  cfg.policy = policy;
  cfg.bucket_width_log2 = 4;  // 16 ps buckets ...
  cfg.num_buckets_log2 = 3;   // ... x8 = 128 ps horizon: constant spilling
  Kernel k(cfg);
  Rng rng(seed);
  std::vector<std::size_t> order;
  std::size_t next_id = 0;
  std::function<void(std::size_t, int)> body =
      [&](std::size_t id, int depth) {
        order.push_back(id);
        if (depth <= 0) return;
        const std::uint64_t fanout = rng.next_below(3);
        for (std::uint64_t c = 0; c < fanout; ++c) {
          const TimePs dt = rng.next_below(400);  // 0 = same-time resume
          const int pri = static_cast<int>(rng.next_int(-1, 1));
          const std::size_t child = next_id++;
          if (rng.next_bool(0.2)) {
            k.schedule_daemon_in(dt, [&body, child, depth] {
              body(child, depth - 1);
            }, pri);
          } else {
            k.schedule_in(dt, [&body, child, depth] {
              body(child, depth - 1);
            }, pri);
          }
        }
      };
  for (int root = 0; root < 40; ++root) {
    const std::size_t id = next_id++;
    k.schedule_at(rng.next_below(600), [&body, id] { body(id, 4); },
                  static_cast<int>(rng.next_int(-1, 1)));
  }
  k.run_until(300);
  k.run();
  order.push_back(10'000'000 + k.events_executed());
  order.push_back(static_cast<std::size_t>(k.now()));
  return order;
}

TEST(KernelQueueCross, RandomSoupOrderIsBitIdenticalAcrossQueues) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    EXPECT_EQ(run_soup(QueuePolicy::kCalendar, seed),
              run_soup(QueuePolicy::kBinaryHeap, seed))
        << "seed " << seed;
  }
}

struct CorpusRun {
  std::uint64_t fingerprint;
  std::uint64_t trace_events;
  std::uint64_t kernel_events;
  TimePs makespan;
};

CorpusRun run_workload(const std::string& name, QueuePolicy policy,
                       std::uint64_t seed, bool with_profiler) {
  PlatformConfig cfg = PlatformConfig::homogeneous(4);
  cfg.trace_enabled = true;
  cfg.kernel.policy = policy;
  Platform p(std::move(cfg));
  vpdebug::ExecutionRecorder rec(p);
  std::unique_ptr<perf::PerfSession> session;
  if (with_profiler) {
    // Attached sampling daemons must not perturb the order either.
    perf::PerfConfig pcfg;
    pcfg.profiler.period = microseconds(5);
    session = std::make_unique<perf::PerfSession>(p, pcfg);
  }
  EXPECT_TRUE(perf::spawn_workload(name, p, seed, /*scale=*/2));
  p.kernel().run();
  return {rec.fingerprint(), rec.events(), p.kernel().events_executed(),
          p.kernel().now()};
}

TEST(KernelQueueCross, WorkloadCorpusFingerprintsAreIdentical) {
  for (const auto& w : perf::workload_registry()) {
    for (std::uint64_t seed : {3ULL, 99ULL}) {
      for (bool profiled : {false, true}) {
        const CorpusRun a =
            run_workload(w.name, QueuePolicy::kCalendar, seed, profiled);
        const CorpusRun b =
            run_workload(w.name, QueuePolicy::kBinaryHeap, seed, profiled);
        EXPECT_EQ(a.fingerprint, b.fingerprint)
            << w.name << " seed=" << seed << " profiled=" << profiled;
        EXPECT_EQ(a.trace_events, b.trace_events) << w.name;
        EXPECT_EQ(a.kernel_events, b.kernel_events) << w.name;
        EXPECT_EQ(a.makespan, b.makespan) << w.name;
      }
    }
  }
}

TEST(KernelQueueCross, DmaTimerIrqScenarioFingerprintsAreIdentical) {
  auto run_once = [](QueuePolicy policy) {
    PlatformConfig cfg = PlatformConfig::homogeneous(2);
    cfg.trace_enabled = true;
    cfg.kernel.policy = policy;
    Platform p(std::move(cfg));
    vpdebug::ExecutionRecorder rec(p);
    p.timer().start_periodic(microseconds(2));
    int transfers = 0;
    std::function<void()> chain = [&] {
      if (++transfers < 5)
        p.dma().start(p.shared_base(), p.shared_base() + 4096, 512, chain);
    };
    p.dma().start(p.shared_base(), p.shared_base() + 4096, 512, chain);
    p.kernel().run_until(microseconds(40));
    p.timer().stop();
    p.kernel().run();
    return std::pair{rec.fingerprint(), p.kernel().events_executed()};
  };
  EXPECT_EQ(run_once(QueuePolicy::kCalendar),
            run_once(QueuePolicy::kBinaryHeap));
}

}  // namespace
}  // namespace rw::sim
