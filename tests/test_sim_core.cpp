#include "sim/core.hpp"

#include <gtest/gtest.h>

#include "sim/process.hpp"

namespace rw::sim {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  Kernel kernel;
  Tracer tracer;
};

TEST_F(CoreTest, ReserveComputesDurationFromFrequency) {
  Core c(kernel, tracer, CoreId{0}, PeClass::kRisc, ghz(1));
  auto [start, finish] = c.reserve(1000);
  EXPECT_EQ(start, 0u);
  EXPECT_EQ(finish, 1'000'000u);  // 1000 cycles at 1 GHz = 1 us
}

TEST_F(CoreTest, BackToBackWorkSerializes) {
  Core c(kernel, tracer, CoreId{0}, PeClass::kRisc, ghz(1));
  auto [s1, f1] = c.reserve(100);
  auto [s2, f2] = c.reserve(100);
  EXPECT_EQ(s2, f1);
  EXPECT_EQ(f2, 200'000u);
}

TEST_F(CoreTest, ReserveFromHonoursEarliest) {
  Core c(kernel, tracer, CoreId{0}, PeClass::kRisc, ghz(1));
  auto [s, f] = c.reserve_from(5000, 10);
  EXPECT_EQ(s, 5000u);
  EXPECT_EQ(f, 15000u);
}

TEST_F(CoreTest, DvfsChangesFutureWorkRate) {
  Core c(kernel, tracer, CoreId{0}, PeClass::kRisc, ghz(1));
  auto [s1, f1] = c.reserve(1000);
  c.set_frequency(ghz(2));
  auto [s2, f2] = c.reserve(1000);
  EXPECT_EQ(f1 - s1, 1'000'000u);
  EXPECT_EQ(f2 - s2, 500'000u);
  EXPECT_EQ(c.frequency(), ghz(2));
  EXPECT_EQ(c.nominal_frequency(), ghz(1));
}

TEST_F(CoreTest, DvfsTracedAsFreqChange) {
  tracer.set_enabled(true);
  Core c(kernel, tracer, CoreId{3}, PeClass::kRisc, ghz(1));
  c.set_frequency(mhz(500));
  c.set_frequency(mhz(500));  // no-op, not traced
  const auto evs = tracer.filter(TraceKind::kFreqChange);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].a, mhz(500));
  EXPECT_EQ(evs[0].b, ghz(1));
  EXPECT_EQ(evs[0].core, CoreId{3});
}

TEST_F(CoreTest, TracksUtilization) {
  Core c(kernel, tracer, CoreId{0}, PeClass::kRisc, ghz(1));
  c.reserve(500);
  EXPECT_EQ(c.cycles_executed(), 500u);
  EXPECT_EQ(c.busy_time(), 500'000u);
  EXPECT_DOUBLE_EQ(c.utilization(1'000'000), 0.5);
}

Process run_compute(Core& core, Cycles cycles, TimePs& done_at) {
  co_await core.compute(cycles, "kernel_fn");
  done_at = core.kernel().now();
}

TEST_F(CoreTest, ComputeAwaitableAdvancesTime) {
  Core c(kernel, tracer, CoreId{0}, PeClass::kRisc, mhz(100));
  TimePs done = 0;
  spawn(kernel, run_compute(c, 100, done));
  kernel.run();
  EXPECT_EQ(done, 10'000'000u / 10u);  // 100 cycles at 100 MHz = 1 us
}

TEST_F(CoreTest, TwoProcessesShareOneCoreSerially) {
  Core c(kernel, tracer, CoreId{0}, PeClass::kRisc, ghz(1));
  TimePs done_a = 0, done_b = 0;
  spawn(kernel, run_compute(c, 1000, done_a));
  spawn(kernel, run_compute(c, 1000, done_b));
  kernel.run();
  // One of them finishes at 1us, the other at 2us.
  EXPECT_EQ(std::min(done_a, done_b), 1'000'000u);
  EXPECT_EQ(std::max(done_a, done_b), 2'000'000u);
}

TEST_F(CoreTest, ComputeEmitsStartEndTraces) {
  tracer.set_enabled(true);
  Core c(kernel, tracer, CoreId{0}, PeClass::kRisc, ghz(1));
  TimePs done = 0;
  spawn(kernel, run_compute(c, 10, done));
  kernel.run();
  EXPECT_EQ(tracer.filter(TraceKind::kComputeStart).size(), 1u);
  EXPECT_EQ(tracer.filter(TraceKind::kComputeEnd).size(), 1u);
  EXPECT_EQ(tracer.filter(TraceKind::kComputeStart)[0].label, "kernel_fn");
}

TEST_F(CoreTest, RegistersReadablePerDebugger) {
  Core c(kernel, tracer, CoreId{0}, PeClass::kDsp, ghz(1));
  c.set_reg(5, 0xdeadbeef);
  EXPECT_EQ(c.reg(5), 0xdeadbeefu);
  EXPECT_THROW(c.set_reg(Core::kNumRegs, 1), std::out_of_range);
}

TEST_F(CoreTest, PeClassNames) {
  EXPECT_STREQ(pe_class_name(PeClass::kRisc), "RISC");
  EXPECT_STREQ(pe_class_name(PeClass::kDsp), "DSP");
  EXPECT_STREQ(pe_class_name(PeClass::kAsip), "ASIP");
}

}  // namespace
}  // namespace rw::sim
