#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "cic/dse.hpp"
#include "harness/harness.hpp"

namespace rw::harness {
namespace {

// ------------------------------------------------------- seed derivation

TEST(SeedDerivation, NoCollisionsAcrossScenarioLabelIndex) {
  std::set<std::uint64_t> seeds;
  std::size_t total = 0;
  for (const char* scenario : {"dse", "a1", "e1_scalability"}) {
    for (int label = 0; label < 8; ++label) {
      for (std::size_t index = 0; index < 64; ++index) {
        seeds.insert(Scenario::derive_seed(Scenario::kDefaultBaseSeed,
                                           scenario,
                                           "run" + std::to_string(label),
                                           index));
        ++total;
      }
    }
  }
  EXPECT_EQ(seeds.size(), total);
}

TEST(SeedDerivation, SeparatorsPreventConcatenationAliasing) {
  // ("ab", "c") must not collide with ("a", "bc").
  EXPECT_NE(Scenario::derive_seed(1, "ab", "c", 0),
            Scenario::derive_seed(1, "a", "bc", 0));
  // Base seed participates.
  EXPECT_NE(Scenario::derive_seed(1, "s", "l", 0),
            Scenario::derive_seed(2, "s", "l", 0));
}

TEST(SeedDerivation, StableAcrossCalls) {
  Scenario s("stable");
  s.add_run("x", [](const RunContext&) { return RunMetrics{}; });
  EXPECT_EQ(s.seed_for(0), s.seed_for(0));
  EXPECT_EQ(s.seed_for(0),
            Scenario::derive_seed(Scenario::kDefaultBaseSeed, "stable", "x",
                                  0));
}

// ---------------------------------------------------------------- runner

Scenario counting_scenario(std::size_t n) {
  Scenario s("count");
  for (std::size_t i = 0; i < n; ++i) {
    s.add_run("r" + std::to_string(i), [](const RunContext& ctx) {
      RunMetrics m;
      m.makespan = ctx.index * 100;  // deterministic function of identity
      m.deadline_misses = ctx.seed % 7;
      return m;
    });
  }
  return s;
}

TEST(Runner, CollectsInSubmissionOrderRegardlessOfThreads) {
  const auto s = counting_scenario(100);
  const auto r = Runner({8}).run(s);
  ASSERT_EQ(r.runs.size(), 100u);
  for (std::size_t i = 0; i < r.runs.size(); ++i) {
    EXPECT_EQ(r.runs[i].index, i);
    EXPECT_EQ(r.runs[i].label, "r" + std::to_string(i));
    EXPECT_EQ(r.runs[i].seed, s.seed_for(i));
    EXPECT_EQ(r.runs[i].metrics.makespan, i * 100);
    EXPECT_TRUE(r.runs[i].ok);
  }
}

TEST(Runner, ParallelIdenticalToSerial) {
  const auto s = counting_scenario(64);
  const auto serial = Runner({1}).run(s);
  const auto parallel = Runner({8}).run(s);
  EXPECT_EQ(serial.threads_used, 1u);
  EXPECT_EQ(parallel.threads_used, 8u);
  EXPECT_TRUE(serial.sim_equal(parallel));
  // The rendered tables agree byte-for-byte once the wall column (host
  // noise by construction) is excluded — to_json/to_table layouts derive
  // from the same records.
  EXPECT_EQ(serial.to_table().row_count(), parallel.to_table().row_count());
}

TEST(Runner, ThreadCountNeverExceedsRuns) {
  EXPECT_EQ(Runner({64}).effective_threads(3), 3u);
  EXPECT_EQ(Runner({2}).effective_threads(100), 2u);
  EXPECT_GE(Runner({0}).effective_threads(100), 1u);
  EXPECT_EQ(Runner({4}).effective_threads(0), 1u);
}

TEST(Runner, CapturesRunExceptionsAsRecords) {
  Scenario s("throwing");
  s.add_run("good", [](const RunContext&) {
    RunMetrics m;
    m.makespan = 42;
    return m;
  });
  s.add_run("bad", [](const RunContext&) -> RunMetrics {
    throw std::runtime_error("simulated failure");
  });
  const auto r = Runner({2}).run(s);
  ASSERT_EQ(r.runs.size(), 2u);
  EXPECT_TRUE(r.runs[0].ok);
  EXPECT_EQ(r.runs[0].metrics.makespan, 42u);
  EXPECT_FALSE(r.runs[1].ok);
  EXPECT_EQ(r.runs[1].error, "simulated failure");
  // Serial execution reports the failure identically.
  EXPECT_TRUE(r.sim_equal(Runner({1}).run(s)));
}

// ---------------------------------------------------------- JSON export

TEST(JsonExport, ContainsScenarioAndMetricFields) {
  Scenario s("json_probe");
  s.add_run("only", [](const RunContext&) {
    RunMetrics m;
    m.makespan = 7;
    m.mean_core_utilization = 0.5;
    m.set_extra("contention_ps", 3.0);
    return m;
  });
  const auto r = Runner({1}).run(s);
  const std::string doc = to_json({r});
  for (const char* needle :
       {"\"name\": \"json_probe\"", "\"label\": \"only\"",
        "\"makespan_ps\": 7", "\"mean_core_utilization\": 0.5",
        "\"contention_ps\": 3", "\"seed\":", "\"wall_ns\":"})
    EXPECT_NE(doc.find(needle), std::string::npos) << needle << "\n" << doc;
}

// ------------------------------------------- determinism over a DSE sweep

/// The tentpole guarantee: a parallel fan-out of the cic DSE sweep is
/// byte-identical to serial evaluation — same seeds, ordered collection.
TEST(HarnessDse, ParallelSweepByteIdenticalToSerial) {
  using namespace rw::cic;
  CicProgram p("fanout");
  const auto src = p.add_task("src", 2'000, {}, {"o0", "o1"});
  p.set_period(src, microseconds(600));
  const auto snk = p.add_task("snk", 3'000, {"i0", "i1"}, {});
  for (int b = 0; b < 2; ++b) {
    const auto w = p.add_task("work" + std::to_string(b), 120'000, {"in"},
                              {"out"});
    p.connect(src, "o" + std::to_string(b), w, "in", 1024);
    p.connect(w, "out", snk, "i" + std::to_string(b), 512);
  }

  const auto candidates = default_candidates(4);
  harness::ScenarioResult serial_fanout, parallel_fanout;
  const auto serial =
      explore_architectures(p, candidates, {15, false, 1}, &serial_fanout);
  const auto parallel =
      explore_architectures(p, candidates, {15, false, 4}, &parallel_fanout);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].arch.name, parallel[i].arch.name);
    EXPECT_EQ(serial[i].area_cost, parallel[i].area_cost);
    EXPECT_EQ(serial[i].feasible, parallel[i].feasible);
    EXPECT_EQ(serial[i].pareto, parallel[i].pareto);
    EXPECT_TRUE(serial[i].metrics.sim_equal(parallel[i].metrics))
        << serial[i].arch.name;
  }
  EXPECT_EQ(serial_fanout.threads_used, 1u);
  EXPECT_TRUE(serial_fanout.sim_equal(parallel_fanout));
  // Byte-identical formatted output too (tables carry no wall clocks).
  auto table_of = [](const std::vector<DsePoint>& pts) {
    Table t({"arch", "area", "makespan", "pareto"});
    for (const auto& pt : pts)
      t.add_row({pt.arch.name, Table::num(pt.area_cost, 3),
                 std::to_string(pt.metrics.makespan),
                 pt.pareto ? "Y" : "N"});
    return t.to_string();
  };
  EXPECT_EQ(table_of(serial), table_of(parallel));
}

}  // namespace
}  // namespace rw::harness
