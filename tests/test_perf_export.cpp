#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "harness/harness.hpp"
#include "perf/driver.hpp"
#include "perf/export.hpp"
#include "perf/session.hpp"
#include "perf/workload.hpp"
#include "sim/platform.hpp"

namespace rw::perf {
namespace {

std::unique_ptr<sim::Platform> make_platform(std::size_t cores = 4) {
  auto cfg = sim::PlatformConfig::homogeneous(cores, mhz(400));
  cfg.trace_enabled = true;
  return std::make_unique<sim::Platform>(std::move(cfg));
}

struct Exports {
  std::string json, chrome, folded, csv;
};

Exports run_and_export(const char* workload) {
  auto plat = make_platform();
  PerfConfig cfg;
  cfg.profiler.period = microseconds(5);
  cfg.epoch_width = microseconds(25);
  PerfSession session(*plat, cfg);
  spawn_workload(workload, *plat, /*seed=*/9, /*scale=*/2);
  plat->kernel().run();
  const PerfReport report = session.report();
  Exports e;
  e.json = to_json(report);
  e.chrome = to_chrome_trace(plat->tracer().events());
  e.folded = to_folded_stacks(report.profile);
  e.csv = to_csv(report.epochs, report.num_cores);
  return e;
}

// The headline determinism claim: every export format is a pure function
// of the workload, byte for byte, across two fresh identical runs.
TEST(ExportTest, AllFormatsByteIdenticalAcrossRuns) {
  const Exports a = run_and_export("pipeline");
  const Exports b = run_and_export("pipeline");
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_EQ(a.folded, b.folded);
  EXPECT_EQ(a.csv, b.csv);
}

TEST(ExportTest, ChromeTraceIsWellFormedJson) {
  const Exports e = run_and_export("forkjoin");
  // Minimal structural checks on the trace-event doc: an array of "X"
  // complete events with the fields Perfetto requires.
  EXPECT_EQ(e.chrome.front(), '{');
  EXPECT_NE(e.chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(e.chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(e.chrome.find("\"dur\":"), std::string::npos);
  EXPECT_NE(e.chrome.find("\"serial\""), std::string::npos);  // a label
}

TEST(ExportTest, FoldedStacksCarryCorePrefixedLabels) {
  const Exports e = run_and_export("forkjoin");
  EXPECT_NE(e.folded.find("core0;serial "), std::string::npos);
  EXPECT_NE(e.folded.find(";parallel "), std::string::npos);
  // Every line is "stack count\n".
  std::istringstream in(e.folded);
  std::string stack;
  std::uint64_t count = 0;
  std::size_t lines = 0;
  while (in >> stack >> count) {
    EXPECT_NE(stack.find("core"), std::string::npos);
    EXPECT_GT(count, 0u);
    ++lines;
  }
  EXPECT_GT(lines, 0u);
}

TEST(ExportTest, CsvHasHeaderPlusOneRowPerEpoch) {
  auto plat = make_platform(2);
  PerfConfig cfg;
  cfg.profile = false;
  cfg.epoch_width = microseconds(25);
  PerfSession session(*plat, cfg);
  spawn_workload("shared_hammer", *plat, 2, 1);
  plat->kernel().run();
  const PerfReport report = session.report();
  const std::string csv = to_csv(report.epochs, report.num_cores);

  std::size_t newlines = 0;
  for (const char c : csv)
    if (c == '\n') ++newlines;
  EXPECT_EQ(newlines, report.epochs.size() + 1);
  EXPECT_EQ(csv.rfind("epoch,start_ps,end_ps", 0), 0u);
  EXPECT_NE(csv.find("core0_util"), std::string::npos);
  EXPECT_NE(csv.find("core1_util"), std::string::npos);
}

// Regression: a session over a platform that never runs a workload must
// yield a zero-event trace that every exporter turns into a valid empty
// document — no asserts, no divisions by a zero makespan or epoch width.
TEST(ExportTest, ZeroEventSessionExportsAreValid) {
  auto plat = make_platform(3);
  PerfSession session(*plat, PerfConfig{});
  plat->kernel().run();  // nothing spawned: the kernel retires instantly
  const PerfReport report = session.report();
  EXPECT_EQ(plat->tracer().events().size(), 0u);
  EXPECT_EQ(report.makespan, 0u);
  EXPECT_EQ(report.mean_utilization(), 0.0);

  const std::string chrome = to_chrome_trace(plat->tracer().events());
  EXPECT_EQ(chrome, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n");
  EXPECT_EQ(to_folded_stacks(report.profile), "");
  const std::string csv = to_csv(report.epochs, report.num_cores);
  EXPECT_EQ(csv.rfind("epoch,start_ps,end_ps", 0), 0u);
  EXPECT_EQ(csv.find('\n'), csv.size() - 1);  // header only
  const std::string json = to_json(report);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"makespan_ps\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"epochs\": []"), std::string::npos);
}

TEST(ExportTest, EmptyInputsProduceValidSkeletons) {
  EXPECT_EQ(to_chrome_trace({}),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n");
  SamplingProfiler::Profile p;
  EXPECT_EQ(to_folded_stacks(p), "");
  const std::string csv = to_csv({}, 2);
  EXPECT_EQ(csv.rfind("epoch,", 0), 0u);  // header only
}

// Harness integration: the exports ride RunMetrics extras (as a split
// 64-bit FNV hash) and must be identical whether the harness fans runs
// out over threads or runs them serially.
TEST(ExportTest, HarnessSerialAndParallelProduceSameExports) {
  auto scenario = [] {
    harness::Scenario s("perf_export_determinism");
    for (const char* w : {"pipeline", "forkjoin"})
      s.add_run(w, [w](const harness::RunContext&) {
        const Exports e = run_and_export(w);
        std::uint64_t h = 1469598103934665603ull;  // FNV-1a over all exports
        for (const std::string* doc : {&e.json, &e.chrome, &e.folded, &e.csv})
          for (const char c : *doc) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
          }
        RunMetrics m;
        m.set_extra("export_hash_lo", static_cast<double>(h & 0xffffffffull));
        m.set_extra("export_hash_hi", static_cast<double>(h >> 32));
        return m;
      });
    return s;
  };
  const auto serial = harness::Runner({.threads = 1}).run(scenario());
  const auto parallel = harness::Runner({.threads = 4}).run(scenario());
  EXPECT_TRUE(serial.sim_equal(parallel));
}

TEST(DriverTest, ListPrintsRegistryAndExitsZero) {
  const auto opts = parse_prof_args({"--list"});
  ASSERT_TRUE(opts.ok());
  std::ostringstream out;
  const auto report = run_prof(opts.value(), out);
  EXPECT_EQ(report.exit_code, 0);
  for (const auto& w : workload_registry())
    EXPECT_NE(out.str().find(w.name), std::string::npos);
}

TEST(DriverTest, ParseRejectsUnknownOptionsAndWorkloads) {
  EXPECT_FALSE(parse_prof_args({"--bogus"}).ok());
  EXPECT_FALSE(parse_prof_args({"not_a_workload"}).ok());
  EXPECT_FALSE(parse_prof_args({"--cores"}).ok());  // missing value
  const auto ok = parse_prof_args({"--governor", "--mesh", "--cores", "9",
                                   "--seed", "3", "--scale", "2",
                                   "--period-us", "7", "--epoch-us", "40",
                                   "--no-files", "pipeline"});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.value().governor);
  EXPECT_TRUE(ok.value().mesh);
  EXPECT_EQ(ok.value().cores, 9u);
  EXPECT_EQ(ok.value().period, microseconds(7));
  EXPECT_FALSE(ok.value().write_files);
  ASSERT_EQ(ok.value().workloads.size(), 1u);
}

TEST(DriverTest, JsonOutputIsDeterministic) {
  auto run_json = [] {
    auto opts = parse_prof_args({"--json", "--no-files", "--scale", "1",
                                 "pipeline"});
    EXPECT_TRUE(opts.ok());
    std::ostringstream out;
    const auto report = run_prof(opts.value(), out);
    EXPECT_EQ(report.exit_code, 0);
    return out.str();
  };
  const std::string a = run_json();
  EXPECT_EQ(a, run_json());
  EXPECT_NE(a.find("\"schema\": \"rw-perf-run-1\""), std::string::npos);
  EXPECT_NE(a.find("\"workload\": \"pipeline\""), std::string::npos);
}

TEST(DriverTest, GovernorRunReportsTransitions) {
  auto opts = parse_prof_args({"--governor", "--no-files", "--scale", "1",
                               "forkjoin"});
  ASSERT_TRUE(opts.ok());
  std::ostringstream out;
  const auto report = run_prof(opts.value(), out);
  EXPECT_EQ(report.exit_code, 0);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_GT(report.outcomes[0].governor_transitions, 0u);
  // The governed run still produced a full perf report.
  EXPECT_GT(report.outcomes[0].report.totals().busy_cycles, 0u);
}

}  // namespace
}  // namespace rw::perf
