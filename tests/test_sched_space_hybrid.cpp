#include <gtest/gtest.h>

#include "sched/dvfs.hpp"
#include "sched/hybrid.hpp"
#include "sched/spacealloc.hpp"

namespace rw::sched {
namespace {

ParallelApp make_app(std::string name, Cycles work, double serial,
                     std::size_t min_c = 1, std::size_t max_c = SIZE_MAX) {
  ParallelApp a;
  a.name = std::move(name);
  a.total_work = work;
  a.serial_fraction = serial;
  a.min_cores = min_c;
  a.max_cores = max_c;
  return a;
}

// ------------------------------------------------------------ gang alloc

TEST(Gang, SingleAppGetsAllCoresItCanUse) {
  GangConfig cfg;
  cfg.total_cores = 8;
  GangResult r = run_gang_schedule(cfg, {{make_app("a", 1'000'000, 0.0), 0}});
  ASSERT_EQ(r.apps.size(), 1u);
  EXPECT_EQ(r.apps[0].cores, 8u);
  EXPECT_GT(r.apps[0].finish, r.apps[0].start);
}

TEST(Gang, MaxCoresCapsGrant) {
  GangConfig cfg;
  cfg.total_cores = 8;
  GangResult r = run_gang_schedule(
      cfg, {{make_app("a", 1'000'000, 0.0, 1, 3), 0}});
  EXPECT_EQ(r.apps[0].cores, 3u);
}

TEST(Gang, FifoQueuesWhenPoolExhausted) {
  GangConfig cfg;
  cfg.total_cores = 4;
  auto app = make_app("x", 4'000'000, 0.0, 4, 4);
  GangResult r = run_gang_schedule(cfg, {{app, 0}, {app, 0}});
  // Second gang must wait for the first to release.
  EXPECT_GE(r.apps[1].start, r.apps[0].finish);
}

TEST(Gang, MoreCoresShortenMakespanNearLinearly) {
  // E1's headline shape: homogeneous space-sharing scales near-linearly.
  auto run_with = [](std::size_t cores) {
    GangConfig cfg;
    cfg.total_cores = cores;
    cfg.arbitration_latency = 0;
    std::vector<GangRequest> reqs;
    for (int i = 0; i < 16; ++i)
      reqs.push_back({make_app("a" + std::to_string(i), 8'000'000, 0.0,
                               1, 1),
                      0});
    return run_gang_schedule(cfg, std::move(reqs)).makespan();
  };
  const auto m1 = run_with(1);
  const auto m4 = run_with(4);
  const auto m16 = run_with(16);
  EXPECT_NEAR(static_cast<double>(m1) / static_cast<double>(m4), 4.0, 0.2);
  EXPECT_NEAR(static_cast<double>(m1) / static_cast<double>(m16), 16.0, 0.8);
}

TEST(Gang, CentralizedArbiterCausesWaiting) {
  std::vector<GangRequest> reqs;
  for (int i = 0; i < 64; ++i)
    reqs.push_back({make_app("a" + std::to_string(i), 1'000, 0.0, 1, 1), 0});

  GangConfig central;
  central.total_cores = 64;
  central.strategy = ArbitrationStrategy::kCentralized;
  central.arbitration_latency = microseconds(5);

  GangConfig dist = central;
  dist.strategy = ArbitrationStrategy::kDistributed;
  dist.arbiters = 16;

  const auto rc = run_gang_schedule(central, reqs);
  const auto rd = run_gang_schedule(dist, reqs);
  EXPECT_GT(rc.arbitration_wait, rd.arbitration_wait);
  EXPECT_GT(rc.makespan(), rd.makespan());
}

TEST(Gang, SerialBoostHelpsAmdahlLimitedApps) {
  GangConfig plain;
  plain.total_cores = 16;
  GangConfig boosted = plain;
  boosted.serial_boost = 4.0;
  const auto app = make_app("amdahl", 16'000'000, 0.3);
  const auto rp = run_gang_schedule(plain, {{app, 0}});
  const auto rb = run_gang_schedule(boosted, {{app, 0}});
  EXPECT_LT(rb.apps[0].finish, rp.apps[0].finish);
}

TEST(Gang, RejectsOversizedMinCores) {
  GangConfig cfg;
  cfg.total_cores = 2;
  EXPECT_THROW(
      run_gang_schedule(cfg, {{make_app("big", 1000, 0.0, 4, 4), 0}}),
      std::invalid_argument);
}

TEST(Gang, ThroughputAndResponseMetrics) {
  GangConfig cfg;
  cfg.total_cores = 4;
  GangResult r = run_gang_schedule(
      cfg, {{make_app("a", 400'000, 0.0), 0},
            {make_app("b", 400'000, 0.0), microseconds(10)}});
  EXPECT_GT(r.mean_response_us(), 0.0);
  EXPECT_GT(r.throughput_apps_per_ms(), 0.0);
  EXPECT_EQ(r.operations, 4u);  // 2 allocs + 2 releases
  EXPECT_GT(r.metrics.mean_core_utilization, 0.0);
  EXPECT_LE(r.metrics.mean_core_utilization, 1.0 + 1e-9);
  const RunMetrics m = r.to_metrics();
  EXPECT_EQ(m.extra_or("operations"), 4.0);
  EXPECT_EQ(m.makespan, r.makespan());
}

// ------------------------------------------------------------------ dvfs

TEST(Dvfs, LadderSteps) {
  const auto l = FrequencyLadder::typical();
  EXPECT_EQ(l.lowest(), mhz(200));
  EXPECT_EQ(l.highest(), mhz(2000));
  EXPECT_EQ(l.step_up(mhz(400)), mhz(600));
  EXPECT_EQ(l.step_down(mhz(400)), mhz(200));
  EXPECT_EQ(l.step_up(mhz(2000)), mhz(2000));
  EXPECT_EQ(l.step_down(mhz(200)), mhz(200));
  EXPECT_EQ(l.ceil_level(mhz(450)), mhz(600));
  EXPECT_EQ(l.ceil_level(mhz(5000)), mhz(2000));
}

TEST(Dvfs, GovernorPicksLowestFeasible) {
  TaskSet ts;
  ts.add("t", 1'000'000, milliseconds(4));  // needs >= 250 MHz roughly
  const auto f = governor_pick_frequency(ts, FrequencyLadder::typical());
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, mhz(400));  // 200 MHz gives 5ms > 4ms deadline
}

TEST(Dvfs, GovernorRejectsInfeasible) {
  TaskSet ts;
  ts.add("t", 3'000'000'000ULL, milliseconds(1));
  EXPECT_FALSE(
      governor_pick_frequency(ts, FrequencyLadder::typical()).has_value());
}

TEST(Dvfs, ReactiveGovernorHysteresis) {
  ReactiveGovernor gov(FrequencyLadder::typical(), 0.8, 0.3);
  EXPECT_EQ(gov.current(), mhz(200));
  EXPECT_EQ(gov.observe(0.95), mhz(400));  // busy: step up
  EXPECT_EQ(gov.observe(0.95), mhz(600));
  EXPECT_EQ(gov.observe(0.5), mhz(600));   // in band: hold
  EXPECT_EQ(gov.observe(0.1), mhz(400));   // idle: step down
  EXPECT_EQ(gov.transitions(), 3u);
}

TEST(Dvfs, ReactiveGovernorValidatesConfig) {
  EXPECT_THROW(ReactiveGovernor(FrequencyLadder{{}}, 0.8, 0.3),
               std::invalid_argument);
  EXPECT_THROW(ReactiveGovernor(FrequencyLadder::typical(), 0.3, 0.8),
               std::invalid_argument);
}

TEST(Dvfs, EnergyModelQuadratic) {
  EXPECT_DOUBLE_EQ(relative_energy_per_cycle(mhz(400), mhz(400)), 1.0);
  EXPECT_DOUBLE_EQ(relative_energy_per_cycle(mhz(800), mhz(400)), 4.0);
}

// ---------------------------------------------------------------- hybrid

TEST(Hybrid, AdmitsFeasibleRtSetPredictably) {
  HybridConfig cfg;
  cfg.time_shared_cores = 2;
  HybridScheduler sched(cfg);
  TaskSet ts;
  ts.add("ctrl", 100'000, milliseconds(4));
  const auto adm = sched.admit_rt(ts);
  EXPECT_TRUE(adm.admitted);
  EXPECT_EQ(adm.core, 0u);
  EXPECT_GE(adm.frequency, mhz(200));
}

TEST(Hybrid, SecondSetSpillsToSecondCore) {
  HybridConfig cfg;
  cfg.time_shared_cores = 2;
  HybridScheduler sched(cfg);
  TaskSet heavy;
  heavy.add("h", 7'000'000, milliseconds(4));  // ~1.75 GHz-ms per 4ms
  EXPECT_TRUE(sched.admit_rt(heavy).admitted);
  const auto second = sched.admit_rt(heavy);
  EXPECT_TRUE(second.admitted);
  EXPECT_EQ(second.core, 1u);
}

TEST(Hybrid, RejectsWhenAllCoresFull) {
  HybridConfig cfg;
  cfg.time_shared_cores = 1;
  HybridScheduler sched(cfg);
  TaskSet heavy;
  heavy.add("h", 7'500'000, milliseconds(4));
  EXPECT_TRUE(sched.admit_rt(heavy).admitted);
  const auto adm = sched.admit_rt(heavy);
  EXPECT_FALSE(adm.admitted);
  EXPECT_FALSE(adm.reason.empty());
}

TEST(Hybrid, AdmittedSetsRemainAnalyzable) {
  HybridScheduler sched(HybridConfig{});
  TaskSet a, b;
  a.add("a", 200'000, milliseconds(10));
  b.add("b", 300'000, milliseconds(15));
  sched.admit_rt(a);
  sched.admit_rt(b);
  for (std::size_t c = 0; c < sched.rt_cores().size(); ++c) {
    TaskSet merged = sched.rt_cores()[c];
    merged.frequency = sched.rt_frequencies()[c];
    EXPECT_TRUE(response_time_analysis(merged, 200).all_schedulable(merged));
  }
}

TEST(Hybrid, PoolRunsSingleApp) {
  HybridConfig cfg;
  cfg.pool_cores = 8;
  HybridScheduler sched(cfg);
  HybridResult r =
      sched.run_pool({{make_app("app", 8'000'000, 0.0), 0}});
  ASSERT_EQ(r.pool_apps.size(), 1u);
  EXPECT_GT(r.pool_apps[0].finish, 0u);
  // Alone in the pool: should hold ~all 8 cores during the parallel phase.
  EXPECT_NEAR(r.pool_apps[0].mean_cores, 8.0, 0.5);
}

TEST(Hybrid, EquipartitionSharesPool) {
  HybridConfig cfg;
  cfg.pool_cores = 8;
  HybridScheduler sched(cfg);
  const auto app = make_app("x", 16'000'000, 0.0);
  HybridResult r = sched.run_pool({{app, 0}, {app, 0}});
  // Two identical apps arriving together: equal shares, equal finishes.
  EXPECT_NEAR(r.pool_apps[0].mean_cores, r.pool_apps[1].mean_cores, 0.2);
  EXPECT_NEAR(static_cast<double>(r.pool_apps[0].finish),
              static_cast<double>(r.pool_apps[1].finish),
              static_cast<double>(r.pool_apps[0].finish) * 0.01);
}

TEST(Hybrid, ReactsToLateArrival) {
  HybridConfig cfg;
  cfg.pool_cores = 8;
  HybridScheduler sched(cfg);
  const auto big = make_app("big", 80'000'000, 0.0);
  const auto small = make_app("small", 4'000'000, 0.0);
  // Small app arrives mid-run of the big one; EQUI gives it half the pool
  // immediately, so its response is far better than FIFO would give.
  HybridResult r = sched.run_pool({{big, 0}, {small, milliseconds(10)}});
  const auto& s = r.pool_apps[1];
  EXPECT_LT(s.response(), milliseconds(10));  // finishes well before big
  EXPECT_GT(r.reallocations, 2u);
}

TEST(Hybrid, PoolNeverStarvesWhenOversubscribed) {
  HybridConfig cfg;
  cfg.pool_cores = 2;  // fewer cores than apps
  HybridScheduler sched(cfg);
  std::vector<HybridScheduler::GangArrival> arr;
  for (int i = 0; i < 6; ++i)
    arr.push_back({make_app("a" + std::to_string(i), 1'000'000, 0.1), 0});
  HybridResult r = sched.run_pool(arr);
  for (const auto& a : r.pool_apps) EXPECT_GT(a.finish, 0u);
  EXPECT_LE(r.pool_utilization, 1.0 + 1e-9);
  EXPECT_GT(r.pool_utilization, 0.5);
}

TEST(Hybrid, SerialPhaseLimitsToOneCore) {
  HybridConfig cfg;
  cfg.pool_cores = 16;
  cfg.serial_boost = 1.0;
  HybridScheduler sched(cfg);
  // Fully serial app: mean cores ~1 even with 16 available.
  HybridResult r = sched.run_pool({{make_app("seq", 4'000'000, 1.0), 0}});
  EXPECT_NEAR(r.pool_apps[0].mean_cores, 1.0, 0.1);
}

// ------------------------------------- static-contract gang admission

TEST(Gang, StaticallyInfeasibleRequestIsRejectedNotQueued) {
  GangConfig cfg;
  cfg.total_cores = 4;
  const auto app = make_app("a", 1'000'000, 0.0);

  GangRequest hopeless{app, 0};
  hopeless.deadline = microseconds(10);
  hopeless.makespan_bound = microseconds(20);  // bound alone blows the budget
  GangRequest fine{app, 0};
  fine.deadline = milliseconds(50);
  fine.makespan_bound = microseconds(20);
  GangRequest uncontracted{app, 0};  // no contract: always admitted

  const GangResult r =
      run_gang_schedule(cfg, {hopeless, fine, uncontracted});
  ASSERT_EQ(r.apps.size(), 3u);
  EXPECT_FALSE(r.apps[0].admitted);
  EXPECT_EQ(r.apps[0].cores, 0u);
  EXPECT_EQ(r.apps[0].finish, 0u);
  EXPECT_TRUE(r.apps[1].admitted);
  EXPECT_GT(r.apps[1].finish, 0u);
  EXPECT_TRUE(r.apps[2].admitted);
  EXPECT_EQ(r.rejected_infeasible, 1u);
  // Rejected apps do not drag the response-time statistics to zero.
  EXPECT_GT(r.mean_response_us(), 0.0);
  EXPECT_EQ(r.to_metrics().extra_or("rejected_infeasible", 0.0), 1.0);
}

TEST(Hybrid, RejectsZeroCoreConfig) {
  HybridConfig cfg;
  cfg.time_shared_cores = 0;
  cfg.pool_cores = 0;
  EXPECT_THROW(HybridScheduler{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace rw::sched
