#include <gtest/gtest.h>

#include "dataflow/throughput.hpp"

namespace rw::dataflow {
namespace {

Graph chain(Cycles a, Cycles b, Cycles c, std::size_t cores) {
  Graph g;
  const auto s = g.add_actor("src", 100, 0);
  const auto f1 = g.add_actor("f1", a, cores > 1 ? 1 : 0);
  const auto f2 = g.add_actor("f2", b, cores > 2 ? 2 : 0);
  const auto f3 = g.add_actor("f3", c, cores > 3 ? 3 : 0);
  const auto k = g.add_actor("snk", 100, 0);
  g.connect(s, f1, 1, 1);
  g.connect(f1, f2, 1, 1);
  g.connect(f2, f3, 1, 1);
  g.connect(f3, k, 1, 1);
  return g;
}

ExecConfig cfg_cores(std::size_t n) {
  ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = n;
  return cfg;
}

TEST(Throughput, BottleneckActorSetsThePeriod) {
  // Dedicated cores: the period is the slowest actor's execution time.
  const auto g = chain(8'000, 40'000, 12'000, 4);
  const auto rep = analyze_throughput(g, cfg_cores(4));
  // 40k cycles at 400 MHz = 100 us.
  EXPECT_NEAR(static_cast<double>(rep.min_period), 100e6, 2e6);
  EXPECT_EQ(rep.bottleneck_actor, "f2");
  EXPECT_GT(rep.bottleneck_core_load, 0.9);
}

TEST(Throughput, SharedCoreSumsLoads) {
  // All actors on one core: period >= sum of all WCETs.
  const auto g = chain(8'000, 10'000, 12'000, 1);
  const auto rep = analyze_throughput(g, cfg_cores(1));
  // 100+8k+10k+12k+100 = 30200 cycles = 75.5 us.
  EXPECT_GE(rep.min_period, static_cast<DurationPs>(75e6));
  EXPECT_LT(rep.min_period, static_cast<DurationPs>(85e6));
}

TEST(Throughput, MoreCoresNeverSlower) {
  const auto g1 = chain(10'000, 10'000, 10'000, 1);
  const auto g4 = chain(10'000, 10'000, 10'000, 4);
  const auto r1 = analyze_throughput(g1, cfg_cores(1));
  const auto r4 = analyze_throughput(g4, cfg_cores(4));
  EXPECT_LE(r4.min_period, r1.min_period);
  EXPECT_GT(r4.max_iterations_per_sec, r1.max_iterations_per_sec);
}

TEST(Throughput, MinPeriodAgreesWithScheduleFeasibility) {
  const auto g = chain(8'000, 25'000, 12'000, 4);
  auto cfg = cfg_cores(4);
  const DurationPs p = min_sustainable_period(g, cfg);
  ASSERT_GT(p, 0u);
  cfg.source_period = p;
  EXPECT_TRUE(compute_static_schedule(g, cfg).ok());
  cfg.source_period = p - std::max<DurationPs>(p / 100, 1);
  EXPECT_FALSE(compute_static_schedule(g, cfg).ok());
}

TEST(Throughput, HigherFrequencyRaisesThroughput) {
  const auto g = chain(10'000, 20'000, 10'000, 4);
  auto slow = cfg_cores(4);
  slow.frequency = mhz(200);
  auto fast = cfg_cores(4);
  fast.frequency = mhz(800);
  const auto rs = analyze_throughput(g, slow);
  const auto rf = analyze_throughput(g, fast);
  EXPECT_NEAR(rf.max_iterations_per_sec / rs.max_iterations_per_sec, 4.0,
              0.2);
}

}  // namespace
}  // namespace rw::dataflow
