#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rw {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, NextBelowInRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(5);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[r.next_below(8)];
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(r.next_int(5, 5), 5);
  EXPECT_EQ(r.next_int(5, 4), 5);  // degenerate range clamps to lo
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdges) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = r.next_exponential(5.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_normal(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

}  // namespace
}  // namespace rw
