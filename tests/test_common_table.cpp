#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace rw {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  // Every line has the same length when columns are aligned.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::percent(0.5), "50.0%");
  EXPECT_EQ(Table::percent(0.123, 2), "12.30%");
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, EmptyIsZero) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, Percentiles) {
  Stats s(/*keep_samples=*/true);
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

}  // namespace
}  // namespace rw
