// Static performance contracts (ISSUE 7): every bound the performance
// passes compute is checked against the very executor or platform it
// claims to bound, across the whole corpus. The contract under test:
//
//   * static makespan bound >= list-scheduler estimate AND >= the
//     contended virtual-platform replay (conservative upper bound),
//   * static buffer capacities run deadlock-free dynamically,
//   * guaranteed period >= the measured minimal sustainable period
//     (static throughput is a lower bound on measured throughput).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "dataflow/executor.hpp"
#include "dataflow/throughput.hpp"
#include "lint/corpus.hpp"
#include "lint/pass.hpp"
#include "lint/passes.hpp"
#include "lint/perf_contract.hpp"
#include "maps/mapping.hpp"
#include "maps/perf_bounds.hpp"

namespace rw::lint {
namespace {

std::uint64_t total_firings(const dataflow::Graph& g) {
  const auto rv = g.repetition_vector();
  if (!rv.ok()) return 0;
  std::uint64_t total = 0;
  for (const std::uint64_t f : rv.value().firings) total += f;
  return total;
}

// ------------------------------------------------------------- makespan

TEST(PerfContract, MakespanBoundDominatesEstimateAndPlatformReplay) {
  std::size_t checked = 0;
  for (const auto& p : build_corpus()) {
    if (!p.has_mapped || !p.has_platform || !p.tasks.is_acyclic()) continue;
    const auto pes = maps::pes_from_platform(p.platform);
    const auto comm = maps::comm_cost_from_platform(p.platform);
    const auto b =
        maps::static_makespan_bound(p.tasks, pes, comm, p.task_to_pe);
    EXPECT_GT(b.bound, 0u) << p.name;
    EXPECT_EQ(b.bound, b.work + b.comm) << p.name;
    // The contention-free critical path is the tightness floor, never
    // above the serialized bound.
    EXPECT_LE(b.critical_path, b.bound) << p.name;

    const TimePs estimate =
        maps::evaluate_mapping(p.tasks, pes, comm, p.task_to_pe);
    EXPECT_LE(estimate, b.bound)
        << p.name << ": list-scheduler estimate exceeds the static bound";

    sim::PlatformConfig cfg = p.platform;
    sim::Platform platform(std::move(cfg));
    const TimePs measured =
        maps::execute_on_platform(p.tasks, p.task_to_pe, platform);
    EXPECT_LE(measured, b.bound)
        << p.name << ": simulated makespan exceeds the static bound";
    ++checked;
  }
  EXPECT_GE(checked, 5u) << "corpus lost its mapped programs";
}

TEST(PerfContract, MakespanBoundCoversHeftsOwnAssignment) {
  for (const auto& p : build_corpus()) {
    if (!p.has_mapped || !p.has_platform || !p.tasks.is_acyclic()) continue;
    const auto pes = maps::pes_from_platform(p.platform);
    const auto comm = maps::comm_cost_from_platform(p.platform);
    const auto mr = maps::heft_map(p.tasks, pes, comm);
    const auto b =
        maps::static_makespan_bound(p.tasks, pes, comm, mr.task_to_pe);
    EXPECT_LE(mr.makespan, b.bound)
        << p.name << ": HEFT makespan exceeds the bound of its own mapping";
  }
}

TEST(PerfContract, AnyGangBoundDominatesEveryFixedAssignment) {
  // The gang-size-independent bound (used by ert admission before a gang
  // is even chosen) must dominate the fixed-assignment bound of every
  // homogeneous gang under a distance-independent comm cost.
  const maps::PeDesc pe{};
  const auto comm = maps::simple_comm_cost(nanoseconds(50), 0.01);
  for (const auto& p : build_corpus()) {
    if (!p.has_mapped || !p.tasks.is_acyclic()) continue;
    const auto any = maps::static_makespan_bound_any_gang(p.tasks, pe, comm);
    for (const std::size_t gang : {1u, 2u, 4u}) {
      const std::vector<maps::PeDesc> pes(gang, pe);
      std::vector<std::size_t> round_robin(p.tasks.tasks().size());
      for (std::size_t t = 0; t < round_robin.size(); ++t)
        round_robin[t] = t % gang;
      const auto fixed =
          maps::static_makespan_bound(p.tasks, pes, comm, round_robin);
      EXPECT_LE(fixed.bound, any.bound)
          << p.name << " gang=" << gang
          << ": fixed-assignment bound exceeds the any-gang bound";
    }
  }
}

TEST(PerfContract, VerifyMappingJudgesDeadlines) {
  for (const auto& p : build_corpus()) {
    if (!p.has_mapped || !p.has_platform || !p.tasks.is_acyclic()) continue;
    const auto v = maps::verify_mapping(p.tasks, p.platform, p.task_to_pe);
    EXPECT_EQ(v.has_deadline, p.tasks.annotation.deadline > 0) << p.name;
    if (p.name == "tight_deadline") {
      EXPECT_TRUE(v.has_deadline);
      EXPECT_FALSE(v.provable)
          << "the seeded 100ns deadline must be statically unprovable";
      EXPECT_GT(v.bound.bound, v.deadline);
    }
    if (!v.has_deadline) {
      EXPECT_FALSE(v.provable) << p.name;
    }
  }
}

// ----------------------------------------------------------- throughput

TEST(PerfContract, GuaranteedPeriodIsSustainable) {
  for (const auto& p : build_corpus()) {
    if (!p.has_graph) continue;
    const DurationPs w = guaranteed_period(p.graph, p.graph_cfg.frequency);
    if (p.name == "starved_csdf") {
      EXPECT_EQ(w, 0u) << "a deadlocked graph has no sustainable period";
      continue;
    }
    ASSERT_GT(w, 0u) << p.name;

    // The guarantee: the static scheduler accepts the graph at period W.
    dataflow::ExecConfig cfg = p.graph_cfg;
    cfg.source_period = w;
    EXPECT_TRUE(dataflow::compute_static_schedule(p.graph, cfg).ok())
        << p.name << ": period " << w << " ps is not schedulable";

    // Conservativeness: the measured minimal sustainable period never
    // exceeds W (static throughput lower bound <= measured throughput).
    const DurationPs measured =
        dataflow::min_sustainable_period(p.graph, p.graph_cfg);
    if (measured > 0) {
      EXPECT_LE(measured, w)
          << p.name << ": measured minimal period exceeds the static bound";
    }
  }
}

// -------------------------------------------------------------- buffers

TEST(PerfContract, StaticCapacitiesRunDeadlockFreeDynamically) {
  for (const auto& p : build_corpus()) {
    if (!p.has_graph) continue;
    const auto caps = deadlock_free_capacities(p.graph);
    if (p.name == "starved_csdf") {
      EXPECT_TRUE(caps.empty())
          << "no capacity assignment un-wedges a token-starved cycle";
      continue;
    }
    ASSERT_EQ(caps.size(), p.graph.edges().size()) << p.name;
    for (const std::size_t c : caps) EXPECT_GT(c, 0u) << p.name;

    const std::uint64_t iteration = total_firings(p.graph);
    ASSERT_GT(iteration, 0u) << p.name;

    dataflow::ExecConfig cfg = p.graph_cfg;
    cfg.buffer_capacities = caps;
    cfg.source_period = std::max(
        guaranteed_period(p.graph, cfg.frequency), cfg.source_period);
    cfg.iterations = 8;
    const auto res = dataflow::run_data_driven(p.graph, cfg);
    EXPECT_GE(res.firings, iteration)
        << p.name << ": the graph wedged under the static capacities";
    EXPECT_EQ(res.internal_corruptions(), 0u) << p.name;
    EXPECT_GT(res.sink_firings, 0u) << p.name;
  }
}

// ------------------------------------------------------ contract bundle

TEST(PerfContract, ComputeBundlesEveryApplicablePart) {
  for (const auto& p : build_corpus()) {
    const auto c = compute_perf_contract(p.target());
    if (p.name == "clean_pipeline") {
      EXPECT_TRUE(c.has_throughput);
      EXPECT_GT(c.period_bound, 0u);
      EXPECT_GT(c.min_throughput_hz, 0.0);
      EXPECT_TRUE(c.has_buffers);
      EXPECT_EQ(c.buffer_capacities.size(), p.graph.edges().size());
      EXPECT_TRUE(c.has_makespan);
      EXPECT_FALSE(c.makespan.has_deadline);
    } else if (p.name == "starved_csdf") {
      EXPECT_FALSE(c.has_throughput) << "deadlocked graph has no bound";
      EXPECT_FALSE(c.has_buffers);
      EXPECT_FALSE(c.has_makespan);
    } else if (p.name == "tight_deadline") {
      EXPECT_TRUE(c.has_makespan);
      EXPECT_TRUE(c.makespan.has_deadline);
      EXPECT_FALSE(c.makespan.provable);
    }
  }
}

TEST(PerfContract, ApplyBufferContractRaisesNeverShrinks) {
  const auto corpus = build_corpus();
  for (const auto& p : corpus) {
    if (p.name != "clean_pipeline") continue;
    const auto c = compute_perf_contract(p.target());
    ASSERT_TRUE(c.has_buffers);

    // Empty config adopts the contract wholesale.
    dataflow::ExecConfig fresh;
    apply_buffer_contract(c, fresh);
    EXPECT_EQ(fresh.buffer_capacities, c.buffer_capacities);

    // A designer-provided larger capacity is never shrunk; a smaller one
    // is raised to the deadlock-free floor.
    dataflow::ExecConfig sized;
    sized.buffer_capacities.assign(c.buffer_capacities.size(), 0);
    sized.buffer_capacities[0] = c.buffer_capacities[0] + 100;
    apply_buffer_contract(c, sized);
    EXPECT_EQ(sized.buffer_capacities[0], c.buffer_capacities[0] + 100);
    for (std::size_t e = 1; e < sized.buffer_capacities.size(); ++e)
      EXPECT_EQ(sized.buffer_capacities[e], c.buffer_capacities[e]);
  }
}

// ------------------------------------------------------ passes + dedupe

TEST(PerfPasses, ThroughputPassEmitsBoundNote) {
  for (const auto& p : build_corpus()) {
    if (p.name != "clean_pipeline") continue;
    auto pm = PassManager::with_default_passes();
    pm.enable_only({"static-throughput"});
    const auto res = pm.run(p.target());
    bool found = false;
    for (const auto& d : res.diagnostics)
      if (d.kind == "throughput-bound") {
        found = true;
        EXPECT_EQ(d.severity, Severity::kNote);
        EXPECT_EQ(d.pass, "static-throughput");
      }
    EXPECT_TRUE(found) << "clean_pipeline should carry a throughput bound";
  }
}

TEST(PerfPasses, MakespanPassFlagsOnlyTheTightDeadline) {
  const auto pm = PassManager::with_default_passes();
  for (const auto& p : build_corpus()) {
    const auto res = pm.run(p.target());
    bool unprovable = false;
    for (const auto& d : res.diagnostics)
      if (d.kind == "deadline-unprovable") unprovable = true;
    EXPECT_EQ(unprovable, p.name == "tight_deadline") << p.name;
  }
}

TEST(PerfPasses, DedupeIsRegistrationOrderIndependent) {
  // static-buffer-size re-emits the deadlock report on a wedged graph;
  // whatever order the two producing passes register in, the JSON is
  // byte-identical and each finding appears exactly once.
  for (const auto& p : build_corpus()) {
    if (p.name != "starved_csdf") continue;

    PassManager forward;
    forward.add(make_deadlock_pass()).add(make_buffer_size_pass());
    PassManager reversed;
    reversed.add(make_buffer_size_pass()).add(make_deadlock_pass());

    const auto a = forward.run(p.target());
    const auto b = reversed.run(p.target());
    EXPECT_EQ(a.to_json(), b.to_json())
        << "dedupe output depends on pass registration order";

    // No two surviving diagnostics share the dedupe identity.
    std::set<std::string> keys;
    for (const auto& d : a.diagnostics) {
      std::string key = d.kind + "|" + d.location.unit + "|" +
                        d.location.entity;
      for (const auto& [k, v] : d.evidence) key += "|" + k + "=" + v;
      EXPECT_TRUE(keys.insert(key).second)
          << "duplicate survived dedupe: " << key;
    }
    EXPECT_FALSE(a.diagnostics.empty());
  }
}

TEST(PerfPasses, DefaultRunWholeCorpusHasNoDuplicateFindings) {
  const auto pm = PassManager::with_default_passes();
  for (const auto& p : build_corpus()) {
    const auto res = pm.run(p.target());
    std::set<std::string> keys;
    for (const auto& d : res.diagnostics) {
      std::string key = d.kind + "|" + d.location.unit + "|" +
                        d.location.entity;
      for (const auto& [k, v] : d.evidence) key += "|" + k + "=" + v;
      EXPECT_TRUE(keys.insert(key).second)
          << p.name << ": duplicate finding " << key;
    }
  }
}

}  // namespace
}  // namespace rw::lint
