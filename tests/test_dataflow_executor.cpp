#include "dataflow/executor.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/buffers.hpp"

namespace rw::dataflow {
namespace {

/// Car-radio-like filter chain: src -> fir -> iir -> snk, rate 1.
Graph radio_chain(Cycles fir = 20'000, Cycles iir = 15'000) {
  Graph g;
  const auto s = g.add_actor("src", 1'000, 0);
  const auto f = g.add_actor("fir", fir, 1);
  const auto i = g.add_actor("iir", iir, 2);
  const auto k = g.add_actor("snk", 1'000, 3);
  g.connect(s, f, 1, 1);
  g.connect(f, i, 1, 1);
  g.connect(i, k, 1, 1);
  return g;
}

ExecConfig radio_cfg(std::uint64_t iters = 50) {
  ExecConfig cfg;
  cfg.frequency = mhz(400);
  cfg.num_cores = 4;
  cfg.source_period = microseconds(100);  // 40k cycles at 400 MHz
  cfg.iterations = iters;
  return cfg;
}

TEST(StaticSchedule, ChainOffsetsFollowPrecedence) {
  const auto g = radio_chain();
  const auto s = compute_static_schedule(g, radio_cfg());
  ASSERT_TRUE(s.ok()) << s.error().to_string();
  // 4 actors, 1 firing each.
  ASSERT_EQ(s.value().slots.size(), 4u);
  // Offsets must be ordered src <= fir <= iir <= snk along the chain.
  DurationPs off[4];
  for (const auto& slot : s.value().slots)
    off[slot.actor.index()] = slot.offset;
  EXPECT_LE(off[0], off[1]);
  EXPECT_LT(off[1], off[2]);
  EXPECT_LT(off[2], off[3]);
  EXPECT_GT(s.value().makespan, 0u);
}

TEST(StaticSchedule, RejectsUnsustainablePeriod) {
  const auto g = radio_chain(/*fir=*/200'000);  // 500us of work per sample
  auto cfg = radio_cfg();
  cfg.source_period = microseconds(100);
  const auto s = compute_static_schedule(g, cfg);
  EXPECT_FALSE(s.ok());
}

TEST(StaticSchedule, RejectsMultiFiringSource) {
  Graph g;
  const auto a = g.add_actor("src", 1);
  const auto b = g.add_actor("b", 1);
  g.connect(a, b, 1, 2);  // source must fire twice per iteration
  EXPECT_FALSE(compute_static_schedule(g, radio_cfg()).ok());
}

TEST(DataDriven, CleanRunDeliversEverySample) {
  const auto g = radio_chain();
  const auto r = run_data_driven(g, radio_cfg());
  EXPECT_EQ(r.source_drops, 0u);
  EXPECT_EQ(r.sink_underruns, 0u);
  EXPECT_EQ(r.internal_corruptions(), 0u);
  EXPECT_EQ(r.sink_firings, 50u);
}

TEST(TimeTriggered, CleanRunWithHonestWcets) {
  const auto g = radio_chain();
  const auto r = run_time_triggered(g, radio_cfg());
  EXPECT_EQ(r.internal_corruptions(), 0u);
  EXPECT_EQ(r.sink_firings, 50u);
}

TEST(TimeTriggered, SameThroughputAsDataDrivenWhenClean) {
  const auto g = radio_chain();
  const auto dd = run_data_driven(g, radio_cfg());
  const auto tt = run_time_triggered(g, radio_cfg());
  EXPECT_EQ(dd.sink_firings, tt.sink_firings);
}

/// Overrun injector: firing takes `factor`x WCET with probability p.
ActorAcet overrun_injector(double p, double factor, std::uint64_t seed) {
  auto rng = std::make_shared<Rng>(seed);
  return [rng, p, factor](const Actor& a, std::uint64_t, Cycles wcet) {
    if (a.name == "src" || a.name == "snk") return wcet;
    return rng->next_bool(p)
               ? static_cast<Cycles>(static_cast<double>(wcet) * factor)
               : wcet;
  };
}

TEST(TimeTriggered, WcetOverrunsCorruptData) {
  // The central Sec. III claim, time-triggered half: overruns beyond the
  // "unreliable worst-case execution time estimate" corrupt buffers.
  const auto g = radio_chain();
  auto cfg = radio_cfg(200);
  cfg.acet = overrun_injector(0.3, 3.0, 42);
  const auto r = run_time_triggered(g, cfg);
  EXPECT_GT(r.internal_corruptions(), 0u);
}

TEST(DataDriven, WcetOverrunsDoNotCorrupt) {
  // ...and the data-driven half: the same overruns cause no corruption,
  // only boundary effects (drops/underruns).
  const auto g = radio_chain();
  auto cfg = radio_cfg(200);
  cfg.acet = overrun_injector(0.3, 3.0, 42);
  const auto r = run_data_driven(g, cfg);
  EXPECT_EQ(r.internal_corruptions(), 0u);
  EXPECT_EQ(r.stale_reads, 0u);
  EXPECT_EQ(r.overwrites, 0u);
}

TEST(DataDriven, SevereOverloadSurfacesAtBoundariesOnly) {
  const auto g = radio_chain();
  auto cfg = radio_cfg(200);
  cfg.acet = overrun_injector(0.8, 5.0, 7);  // brutal overload
  const auto r = run_data_driven(g, cfg);
  EXPECT_EQ(r.internal_corruptions(), 0u);
  EXPECT_GT(r.source_drops + r.sink_underruns, 0u);
}

TEST(DataDriven, BackPressureBoundsBufferLevels) {
  const auto g = radio_chain();
  auto cfg = radio_cfg(100);
  cfg.buffer_capacities = {2, 2, 2};
  cfg.acet = overrun_injector(0.5, 4.0, 3);
  const auto r = run_data_driven(g, cfg);
  // No overwrite can ever happen with back-pressure.
  EXPECT_EQ(r.overwrites, 0u);
}

TEST(DataDriven, AperiodicExecutionStillMeetsSinkTicks) {
  // Jittery (but not overrunning) execution: tasks run aperiodically,
  // sinks still see data on every tick — Sec. III's "data-driven systems
  // can execute tasks aperiodically, while satisfying timing constraints".
  const auto g = radio_chain();
  auto cfg = radio_cfg(200);
  auto rng = std::make_shared<Rng>(11);
  cfg.acet = [rng](const Actor&, std::uint64_t, Cycles wcet) {
    // Anywhere from 10% to 100% of WCET.
    return std::max<Cycles>(1, wcet / 10 + rng->next_below(wcet * 9 / 10));
  };
  const auto r = run_data_driven(g, cfg);
  EXPECT_EQ(r.sink_underruns, 0u);
  EXPECT_EQ(r.sink_firings, 200u);
}

TEST(Executors, DeterministicAcrossRuns) {
  const auto g = radio_chain();
  auto cfg = radio_cfg(100);
  cfg.acet = overrun_injector(0.3, 2.5, 99);
  const auto a = run_time_triggered(g, cfg);
  cfg.acet = overrun_injector(0.3, 2.5, 99);  // fresh RNG, same seed
  const auto b = run_time_triggered(g, cfg);
  EXPECT_EQ(a.stale_reads, b.stale_reads);
  EXPECT_EQ(a.overwrites, b.overwrites);
  EXPECT_EQ(a.finish, b.finish);
}

TEST(Executors, MultiRateGraphRuns) {
  // src -(1:1)-> dec(1:4 in) ... use downsampler: src fires 4x per dec.
  Graph g;
  const auto s = g.add_actor("src", 1'000, 0);
  const auto d = g.add_actor("dec", 30'000, 1);
  const auto k = g.add_actor("snk", 1'000, 2);
  g.connect(s, d, 1, 1);
  g.connect(d, k, 1, 1);
  ExecConfig cfg = radio_cfg(40);
  const auto r = run_data_driven(g, cfg);
  EXPECT_EQ(r.sink_underruns, 0u);
}

TEST(Buffers, LowerBoundsRespectRatesAndTokens) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.connect(a, b, 3, 2, /*initial=*/1);
  const auto lb = capacity_lower_bounds(g);
  ASSERT_EQ(lb.size(), 1u);
  EXPECT_EQ(lb[0], 4u);  // max(3,2) + 1 initial
}

TEST(Buffers, ComputedCapacitiesAreWaitFree) {
  const auto g = radio_chain();
  const auto sizing = compute_buffer_capacities(g, radio_cfg());
  ASSERT_TRUE(sizing.wait_free);
  // Verify the contract by running with exactly those capacities.
  auto cfg = radio_cfg(300);
  cfg.buffer_capacities = sizing.capacities;
  const auto r = run_data_driven(g, cfg);
  EXPECT_EQ(r.source_drops, 0u);
  EXPECT_EQ(r.sink_underruns, 0u);
}

TEST(Buffers, MinimalityOneLess) {
  // Dropping any computed capacity below its lower bound must break
  // wait-freedom or be impossible; check that shrinking the whole vector
  // by one where possible causes drops/underruns.
  const auto g = radio_chain();
  const auto sizing = compute_buffer_capacities(g, radio_cfg());
  ASSERT_TRUE(sizing.wait_free);
  auto cfg = radio_cfg(300);
  cfg.buffer_capacities = sizing.capacities;
  bool any_shrinkable = false;
  for (auto& c : cfg.buffer_capacities) {
    if (c > 1) {
      --c;
      any_shrinkable = true;
    }
  }
  if (!any_shrinkable) GTEST_SKIP();
  const auto r = run_data_driven(g, cfg);
  EXPECT_GT(r.source_drops + r.sink_underruns, 0u);
}

TEST(Buffers, InfeasiblePeriodReported) {
  const auto g = radio_chain(/*fir=*/200'000);  // can't keep up
  const auto sizing = compute_buffer_capacities(g, radio_cfg());
  EXPECT_FALSE(sizing.wait_free);
}

TEST(Buffers, TighterPeriodNeedsMoreBuffering) {
  // Multi-core chain with imbalance: shorter periods require deeper
  // decoupling buffers (classic back-pressure result).
  Graph g;
  const auto s = g.add_actor("src", 500, 0);
  const auto a = g.add_actor("slowA", 35'000, 1);
  const auto b = g.add_actor("fastB", 5'000, 2);
  const auto k = g.add_actor("snk", 500, 3);
  g.connect(s, a, 1, 1);
  g.connect(a, b, 1, 1);
  g.connect(b, k, 1, 1);

  auto loose = radio_cfg();
  loose.source_period = microseconds(200);
  auto tight = radio_cfg();
  tight.source_period = microseconds(95);

  const auto sl = compute_buffer_capacities(g, loose);
  const auto st = compute_buffer_capacities(g, tight);
  ASSERT_TRUE(sl.wait_free);
  ASSERT_TRUE(st.wait_free);
  EXPECT_GE(st.capacity_sum(), sl.capacity_sum());
}

}  // namespace
}  // namespace rw::dataflow
