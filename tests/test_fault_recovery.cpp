// rw::fault policy layer: retry budgets, seed-reproducible plans, the
// E14 scenario under directed and random faults, and degradation-aware
// remapping in maps/sched.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "fault/scenario.hpp"
#include "maps/mapping.hpp"
#include "sched/partitioned.hpp"

namespace rw::fault {
namespace {

TEST(RetryPolicy, ExponentialBackoffAndBudget) {
  RetryPolicy r;
  r.max_attempts = 4;
  r.initial_delay = nanoseconds(500);
  r.multiplier = 2;
  EXPECT_EQ(r.delay_for(0), nanoseconds(500));
  EXPECT_EQ(r.delay_for(1), nanoseconds(1000));
  EXPECT_EQ(r.delay_for(3), nanoseconds(4000));
  EXPECT_EQ(r.total_budget(), nanoseconds(500 + 1000 + 2000 + 4000));
}

RandomSpec busy_spec() {
  RandomSpec spec;
  spec.rate_per_ms = 200.0;
  spec.window_start = microseconds(10);
  spec.window_end = microseconds(400);
  spec.num_cores = 4;
  spec.num_links = 8;
  spec.mem_base = 0x1000;
  spec.mem_size = 0x800;
  return spec;
}

TEST(FaultPlanRandom, SameSeedSamePlanDifferentSeedDifferentPlan) {
  const RandomSpec spec = busy_spec();
  const FaultPlan a = FaultPlan::random(13, spec);
  const FaultPlan b = FaultPlan::random(13, spec);
  const FaultPlan c = FaultPlan::random(14, spec);
  ASSERT_GT(a.size(), 10u);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json(), c.to_json());
}

TEST(FaultPlanRandom, EventsLandInsideTheWindowSorted) {
  const RandomSpec spec = busy_spec();
  const auto events = FaultPlan::random(7, spec).events();
  ASSERT_FALSE(events.empty());
  TimePs prev = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.time, spec.window_start);
    EXPECT_LT(e.time, spec.window_end);
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(FaultPlanRandom, CrashOnlyWeightsRestrictKinds) {
  RandomSpec spec = busy_spec();
  spec.weight_stall = spec.weight_degrade = spec.weight_drop = 0;
  spec.weight_bitflip = spec.weight_dma_abort = 0;
  spec.weight_irq_drop = spec.weight_irq_spurious = 0;
  spec.weight_crash = 1;
  const auto events = FaultPlan::random(21, spec).events();
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_EQ(e.kind, FaultKind::kCoreCrash);
    EXPECT_LT(e.target, spec.num_cores);
  }
}

ScenarioConfig small_cfg(RecoveryPolicy policy) {
  ScenarioConfig cfg;
  cfg.cores = 4;
  cfg.seed = 1;
  cfg.items = 16;
  cfg.policy = policy;
  return cfg;
}

TEST(Scenario, FaultFreeRunsDeliverEverythingUnderEveryPolicy) {
  for (RecoveryPolicy policy :
       {RecoveryPolicy::kNone, RecoveryPolicy::kWatchdogRestart,
        RecoveryPolicy::kWatchdogRemap}) {
    const ScenarioOutcome out = run_fault_scenario(small_cfg(policy));
    EXPECT_EQ(out.items_done, out.items_target) << recovery_policy_name(policy);
    EXPECT_DOUBLE_EQ(out.goodput, 1.0);
    EXPECT_FALSE(out.deadlocked);
    EXPECT_EQ(out.faults_injected, 0u);
    EXPECT_EQ(out.crashes, 0u);
    // healthy_makespan is the sink's completion time; the drained kernel
    // time only exceeds it by the watchdog's final no-op tail (if any).
    EXPECT_EQ(out.finish_time, out.healthy_makespan);
    EXPECT_GE(out.makespan, out.healthy_makespan);
  }
}

TEST(Scenario, DirectedCrashDeadlocksWithoutRecoveryAndHealsWithIt) {
  FaultPlan crash;
  crash.crash_core(microseconds(20), 1);

  ScenarioConfig none = small_cfg(RecoveryPolicy::kNone);
  none.explicit_plan = &crash;
  const ScenarioOutcome dead = run_fault_scenario(none);
  EXPECT_TRUE(dead.deadlocked);
  EXPECT_LT(dead.goodput, 1.0);
  EXPECT_EQ(dead.recoveries, 0u);

  for (RecoveryPolicy policy :
       {RecoveryPolicy::kWatchdogRestart, RecoveryPolicy::kWatchdogRemap}) {
    ScenarioConfig cfg = small_cfg(policy);
    cfg.explicit_plan = &crash;
    const ScenarioOutcome out = run_fault_scenario(cfg);
    EXPECT_DOUBLE_EQ(out.goodput, 1.0) << recovery_policy_name(policy);
    EXPECT_FALSE(out.deadlocked);
    EXPECT_EQ(out.crashes, 1u);
    EXPECT_GE(out.recoveries, 1u);
    // Detection is watchdog-bounded: the supervisor cannot take longer
    // than a few watchdog periods to notice and act.
    EXPECT_GT(out.max_recovery_latency, 0u);
    EXPECT_LE(out.max_recovery_latency, 3 * cfg.watchdog_timeout);
    EXPECT_GE(out.timeline.count_prefix("recovery."), 1u);
  }
}

TEST(Scenario, RecoveryPoliciesBeatNoneUnderACrashStorm) {
  auto goodput = [](RecoveryPolicy policy) {
    ScenarioConfig cfg = small_cfg(policy);
    cfg.items = 24;
    cfg.fault_rate_per_ms = 40.0;
    cfg.crashes_only = true;
    return run_fault_scenario(cfg).goodput;
  };
  const double none = goodput(RecoveryPolicy::kNone);
  const double restart = goodput(RecoveryPolicy::kWatchdogRestart);
  const double remap = goodput(RecoveryPolicy::kWatchdogRemap);
  EXPECT_LT(none, 1.0);  // the storm actually hurts the unprotected run
  EXPECT_GE(restart, none);
  EXPECT_GE(remap, none);
  EXPECT_GT(restart, 0.9);  // restart keeps the pipeline essentially alive
}

TEST(Scenario, EqualConfigsProduceByteIdenticalTimelines) {
  ScenarioConfig cfg = small_cfg(RecoveryPolicy::kWatchdogRestart);
  cfg.fault_rate_per_ms = 60.0;
  const ScenarioOutcome a = run_fault_scenario(cfg);
  const ScenarioOutcome b = run_fault_scenario(cfg);
  ASSERT_GT(a.faults_injected, 0u);
  EXPECT_EQ(a.timeline.to_json(), b.timeline.to_json());
  EXPECT_EQ(a.items_done, b.items_done);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.to_metrics().sim_equal(b.to_metrics()), true);
}

TEST(Scenario, MetricsCarryTheFaultExtras) {
  ScenarioConfig cfg = small_cfg(RecoveryPolicy::kWatchdogRestart);
  cfg.fault_rate_per_ms = 20.0;
  const RunMetrics m = run_fault_scenario(cfg).to_metrics();
  EXPECT_GE(m.extra_or("fault.goodput", -1.0), 0.0);
  EXPECT_GE(m.extra_or("fault.injected", -1.0), 1.0);
  EXPECT_GE(m.extra_or("fault.healthy_makespan_ps", -1.0), 1.0);
}

}  // namespace
}  // namespace rw::fault

namespace rw::maps {
namespace {

std::vector<PeDesc> homogeneous_pes(std::size_t n) {
  return std::vector<PeDesc>(n, PeDesc{sim::PeClass::kRisc, mhz(400)});
}

TaskGraph fork_join_graph(int width) {
  TaskGraph g;
  const auto src = g.add_task("src", 500);
  const auto join = g.add_task("join", 500);
  for (int i = 0; i < width; ++i) {
    const auto t = g.add_task("mid" + std::to_string(i), 20'000);
    g.add_edge(src, t, 256);
    g.add_edge(t, join, 256);
  }
  return g;
}

TEST(Degradation, RemapEvictsEveryTaskFromTheDeadPe) {
  const TaskGraph g = fork_join_graph(6);
  const auto pes = homogeneous_pes(4);
  const CommCost comm = simple_comm_cost(nanoseconds(100), 0.004);
  const MappingResult healthy = heft_map(g, pes, comm);

  const std::size_t dead = healthy.task_to_pe[2];  // a PE that has work
  std::size_t originally_on_dead = 0;
  for (std::size_t pe : healthy.task_to_pe)
    if (pe == dead) ++originally_on_dead;
  ASSERT_GT(originally_on_dead, 0u);

  const DegradationReport rep =
      remap_on_failure(g, pes, comm, healthy.task_to_pe, dead);
  EXPECT_EQ(rep.dead_pe, dead);
  EXPECT_EQ(rep.moved_tasks, originally_on_dead);
  EXPECT_EQ(rep.healthy_makespan, healthy.makespan);
  for (std::size_t pe : rep.remap_task_to_pe) EXPECT_NE(pe, dead);
  for (std::size_t pe : rep.oracle_task_to_pe) EXPECT_NE(pe, dead);

  // Losing a loaded PE cannot speed things up, and the greedy online
  // remap cannot beat the hindsight oracle.
  EXPECT_GE(rep.remap_makespan, rep.healthy_makespan);
  EXPECT_GE(rep.remap_makespan, rep.oracle_makespan);
  EXPECT_GE(rep.remap_vs_oracle(), 1.0);
  EXPECT_GE(rep.degradation_vs_healthy(), 1.0);
}

TEST(Degradation, OracleReplanNeverUsesTheDeadPe) {
  const TaskGraph g = fork_join_graph(5);
  const auto pes = homogeneous_pes(3);
  const MappingResult replan =
      replan_survivors(g, pes, simple_comm_cost(nanoseconds(100), 0.004), 1);
  ASSERT_EQ(replan.task_to_pe.size(), g.tasks().size());
  std::set<std::size_t> used(replan.task_to_pe.begin(),
                             replan.task_to_pe.end());
  EXPECT_FALSE(used.contains(1));
  EXPECT_GT(replan.makespan, 0u);
}

}  // namespace
}  // namespace rw::maps

namespace rw::sched {
namespace {

RtTask util_task(const std::string& name, double u,
                 DurationPs period = milliseconds(10)) {
  RtTask t;
  t.name = name;
  t.wcet = static_cast<Cycles>(u * static_cast<double>(period) / 1e12 *
                               mhz(100));
  t.period = period;
  return t;
}

std::vector<RtTask> uniform_tasks(int n, double u) {
  std::vector<RtTask> out;
  for (int i = 0; i < n; ++i)
    out.push_back(util_task("t" + std::to_string(i), u));
  return out;
}

TEST(Repartition, SurvivorsAbsorbTheDeadCoresTasks) {
  const auto tasks = uniform_tasks(6, 0.3);  // 1.8 total over 3 cores
  const auto before = partition_tasks(tasks, 3, mhz(100),
                                      PackingHeuristic::kFirstFit);
  ASSERT_TRUE(before.feasible);

  const auto r = repartition_on_failure(tasks, before, 0, mhz(100));
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.moved, 0u);
  EXPECT_TRUE(r.unplaced.empty());
  EXPECT_TRUE(r.after.per_core[0].tasks.empty());  // dead core stays empty
  std::size_t placed = 0;
  for (const auto& core : r.after.per_core) placed += core.tasks.size();
  EXPECT_EQ(placed, tasks.size());
}

TEST(Repartition, OverloadedSurvivorsReportUnplacedTasks) {
  const auto tasks = uniform_tasks(6, 0.45);  // 2.7 total: fits 3, not 2
  const auto before = partition_tasks(tasks, 3, mhz(100),
                                      PackingHeuristic::kFirstFit);
  ASSERT_TRUE(before.feasible);

  const auto r = repartition_on_failure(tasks, before, 0, mhz(100));
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.unplaced.empty());
  EXPECT_TRUE(r.after.per_core[0].tasks.empty());
}

}  // namespace
}  // namespace rw::sched
