#include "sim/interconnect.hpp"

#include <gtest/gtest.h>

namespace rw::sim {
namespace {

TEST(SharedBus, TransferTimeScalesWithSize) {
  Kernel k;
  SharedBus bus(k, SharedBus::Config{mhz(100), 4, 0});
  // 100 MHz, 4 bytes/beat -> 16 bytes = 4 beats = 40 ns.
  auto [s, f] = bus.reserve_transfer(CoreId{0}, CoreId{1}, 16, 0);
  EXPECT_EQ(s, 0u);
  EXPECT_EQ(f, nanoseconds(40));
}

TEST(SharedBus, ArbitrationOverheadAdds) {
  Kernel k;
  SharedBus bus(k, SharedBus::Config{mhz(100), 4, 2});
  auto [s, f] = bus.reserve_transfer(CoreId{0}, CoreId{1}, 4, 0);
  EXPECT_EQ(f - s, nanoseconds(30));  // 1 beat + 2 arbitration cycles
}

TEST(SharedBus, SerializesConcurrentTransfers) {
  Kernel k;
  SharedBus bus(k, SharedBus::Config{mhz(100), 4, 0});
  auto [s1, f1] = bus.reserve_transfer(CoreId{0}, CoreId{1}, 4, 0);
  auto [s2, f2] = bus.reserve_transfer(CoreId{2}, CoreId{3}, 4, 0);
  EXPECT_EQ(s2, f1);  // second transfer waits: the centralized bottleneck
  EXPECT_GT(bus.total_contention(), 0u);
  EXPECT_EQ(bus.transfer_count(), 2u);
}

TEST(SharedBus, PartialBeatRoundsUp) {
  Kernel k;
  SharedBus bus(k, SharedBus::Config{mhz(100), 8, 0});
  auto [s, f] = bus.reserve_transfer(CoreId{0}, CoreId{1}, 9, 0);
  EXPECT_EQ(f - s, nanoseconds(20));  // 2 beats
}

TEST(MeshNoc, HopCountIsManhattanDistance) {
  Kernel k;
  MeshNoc noc(k, MeshNoc::Config{4, 4, nanoseconds(5), mhz(500), 4});
  // Core ids map row-major onto the mesh: core 0 at (0,0), core 5 at (1,1).
  EXPECT_EQ(noc.hop_count(CoreId{0}, CoreId{0}), 0u);
  EXPECT_EQ(noc.hop_count(CoreId{0}, CoreId{1}), 1u);
  EXPECT_EQ(noc.hop_count(CoreId{0}, CoreId{5}), 2u);
  EXPECT_EQ(noc.hop_count(CoreId{0}, CoreId{15}), 6u);
}

TEST(MeshNoc, LocalTransferIsFree) {
  Kernel k;
  MeshNoc noc(k, MeshNoc::Config{4, 4, nanoseconds(5), mhz(500), 4});
  auto [s, f] = noc.reserve_transfer(CoreId{3}, CoreId{3}, 1024, 0);
  EXPECT_EQ(s, f);
}

TEST(MeshNoc, LatencyGrowsWithDistance) {
  Kernel k;
  MeshNoc noc(k, MeshNoc::Config{8, 8, nanoseconds(5), mhz(500), 4});
  const auto near = noc.nominal_latency(CoreId{0}, CoreId{1}, 64);
  const auto far = noc.nominal_latency(CoreId{0}, CoreId{63}, 64);
  EXPECT_GT(far, near);
  EXPECT_EQ(far, 14u * near);  // 14 hops vs 1 hop, linear in distance
}

TEST(MeshNoc, DisjointRoutesDoNotContend) {
  Kernel k;
  MeshNoc noc(k, MeshNoc::Config{4, 4, nanoseconds(5), mhz(500), 4});
  // (0,0)->(1,0) and (2,2)->(3,2): no shared links.
  auto [s1, f1] = noc.reserve_transfer(CoreId{0}, CoreId{1}, 64, 0);
  auto [s2, f2] = noc.reserve_transfer(CoreId{10}, CoreId{11}, 64, 0);
  EXPECT_EQ(s1, s2);  // both start immediately — distributed fabric
  EXPECT_EQ(noc.total_contention(), 0u);
}

TEST(MeshNoc, SharedLinkSerializes) {
  Kernel k;
  MeshNoc noc(k, MeshNoc::Config{4, 4, nanoseconds(5), mhz(500), 4});
  // Both transfers use link (0,0)->(1,0) first.
  auto [s1, f1] = noc.reserve_transfer(CoreId{0}, CoreId{1}, 64, 0);
  auto [s2, f2] = noc.reserve_transfer(CoreId{0}, CoreId{2}, 64, 0);
  EXPECT_GE(s2, f1);
  EXPECT_GT(noc.total_contention(), 0u);
}

TEST(MeshNoc, EarliestRespected) {
  Kernel k;
  MeshNoc noc(k, MeshNoc::Config{4, 4, nanoseconds(5), mhz(500), 4});
  auto [s, f] = noc.reserve_transfer(CoreId{0}, CoreId{1}, 4, 12345);
  EXPECT_GE(s, 12345u);
}

TEST(MeshNoc, RejectsZeroDimensions) {
  Kernel k;
  EXPECT_THROW(MeshNoc(k, MeshNoc::Config{0, 4}), std::invalid_argument);
}

TEST(Interconnect, Describe) {
  Kernel k;
  SharedBus bus(k, {});
  MeshNoc noc(k, {});
  EXPECT_NE(bus.describe().find("shared-bus"), std::string::npos);
  EXPECT_NE(noc.describe().find("mesh-noc"), std::string::npos);
}

}  // namespace
}  // namespace rw::sim
