// rw::ert — the multi-tenant job service and its adapters.
//
// The load-bearing properties:
//   * sched::SpaceAllocator accounting (available()/in_use(), the
//     admission controller's view);
//   * a single-tenant single-job Session reproduces run_jobspec_direct()
//     exactly (the service adds zero residue to execution metrics);
//   * determinism: results are a pure function of the submitted
//     (tenant, seq, spec) set — concurrent submitters, submission
//     interleaving and neighbor load change nothing they shouldn't;
//   * tenant isolation: reserved tenants' completion fingerprints are
//     invariant under any other tenant's behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "ert/adapters.hpp"
#include "ert/driver.hpp"
#include "ert/service.hpp"
#include "ert/templates.hpp"
#include "harness/harness.hpp"
#include "maps/workloads.hpp"
#include "sched/spacealloc.hpp"
#include "tools/cli_common.hpp"

namespace rw::ert {
namespace {

// ----------------------------------------------------------- SpaceAllocator

TEST(SpaceAllocator, AccountingAndLowestFirstAllocation) {
  sched::SpaceAllocator alloc(4);
  EXPECT_EQ(alloc.capacity(), 4u);
  EXPECT_EQ(alloc.available(), 4u);
  EXPECT_EQ(alloc.in_use(), 0u);

  const auto a = alloc.allocate(2, 2);
  ASSERT_EQ(a, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(alloc.available(), 2u);
  EXPECT_EQ(alloc.in_use(), 2u);

  // Moldable: take as many as available up to max.
  const auto b = alloc.allocate(1, 3);
  ASSERT_EQ(b, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(alloc.available(), 0u);

  // min > available: nothing allocated, state untouched.
  EXPECT_TRUE(alloc.allocate(1, 1).empty());
  EXPECT_EQ(alloc.in_use(), 4u);

  alloc.release(a);
  EXPECT_EQ(alloc.available(), 2u);
  // Freed indices are reused lowest-first.
  EXPECT_EQ(alloc.allocate(1, 1), (std::vector<std::size_t>{0}));
}

TEST(SpaceAllocator, BaseOffsetShiftsIndices) {
  sched::SpaceAllocator alloc(3, /*base=*/8);
  EXPECT_EQ(alloc.base(), 8u);
  const auto a = alloc.allocate(2, 2);
  EXPECT_EQ(a, (std::vector<std::size_t>{8, 9}));
  alloc.release(a);
  EXPECT_EQ(alloc.available(), 3u);
}

// ------------------------------------------------------------ direct path

TEST(ErtService, SingleJobReproducesDirectPathExactly) {
  for (const std::string& name : template_names()) {
    const JobSpec spec = make_template(name);
    ServiceConfig cfg;
    const auto direct = run_jobspec_direct(spec, cfg);
    ASSERT_TRUE(direct.ok()) << name;

    Service service(cfg);
    auto session = service.open_session(TenantConfig{.name = "solo"});
    ASSERT_TRUE(session.ok());
    const JobHandle handle = session.value().submit(spec);
    const auto& outcome = handle.result();
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();

    // Execution metrics are bit-identical; queueing lives only in the
    // JobResult timestamps.
    EXPECT_TRUE(outcome.value().metrics.sim_equal(direct.value())) << name;
    EXPECT_EQ(outcome.value().cores,
              std::min(spec.max_cores, cfg.total_cores));
    EXPECT_EQ(outcome.value().started, cfg.arbitration_latency);
    EXPECT_EQ(outcome.value().finished,
              cfg.arbitration_latency + direct.value().makespan);
  }
}

TEST(ErtService, HandleStatesAndRepeatedResultCalls) {
  JobHandle empty;
  EXPECT_FALSE(empty.valid());

  Service service(ServiceConfig{});
  auto session = service.open_session(TenantConfig{.name = "t"});
  ASSERT_TRUE(session.ok());
  const JobHandle h = session.value().submit(make_template("diamond"));
  EXPECT_TRUE(h.valid());
  EXPECT_FALSE(h.ready());  // nothing drained yet
  ASSERT_TRUE(h.result().ok());
  EXPECT_TRUE(h.ready());
  // result() is idempotent.
  EXPECT_EQ(h.result().value().finished, h.result().value().finished);
}

// --------------------------------------------------------------- admission

TEST(ErtService, ValidationRejectionsSurfaceAsErrors) {
  Service service(ServiceConfig{.total_cores = 4});
  auto session = service.open_session(TenantConfig{.name = "t"});
  ASSERT_TRUE(session.ok());

  JobSpec empty;
  empty.name = "empty";
  const JobHandle h1 = session.value().submit(empty);
  ASSERT_FALSE(h1.result().ok());
  EXPECT_NE(h1.result().error().to_string().find("empty task graph"),
            std::string::npos);

  JobSpec cyclic = make_template("pipeline");
  cyclic.graph.add_edge(cyclic.graph.tasks().back().id,
                        cyclic.graph.tasks().front().id, 64);
  EXPECT_FALSE(session.value().submit(cyclic).result().ok());

  JobSpec wide = make_template("pipeline");
  wide.min_cores = 5;  // pool only has 4
  wide.max_cores = 8;
  EXPECT_FALSE(session.value().submit(wide).result().ok());

  JobSpec inverted = make_template("pipeline");
  inverted.min_cores = 2;
  inverted.max_cores = 1;
  EXPECT_FALSE(session.value().submit(inverted).result().ok());

  JobSpec rt = make_template("pipeline");
  rt.qos = QosClass::kRealtime;  // no deadline
  EXPECT_FALSE(session.value().submit(rt).result().ok());

  const TenantStats stats = service.tenant_stats(0);
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.rejected, 5u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ErtService, MaxPendingCapsAdmission) {
  Service service(ServiceConfig{});
  auto session = service.open_session(
      TenantConfig{.name = "t", .max_pending = 2});
  ASSERT_TRUE(session.ok());
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i)
    handles.push_back(session.value().submit(make_template("diamond")));
  // All four enter one ingest batch: two admitted, two rejected.
  EXPECT_TRUE(handles[0].result().ok());
  EXPECT_TRUE(handles[1].result().ok());
  ASSERT_FALSE(handles[2].result().ok());
  EXPECT_NE(handles[2].result().error().to_string().find("admission"),
            std::string::npos);
  EXPECT_FALSE(handles[3].result().ok());
  const TenantStats stats = service.tenant_stats(0);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 2u);

  // The cap tracks in-flight work, not lifetime totals: after completion
  // the tenant can submit again.
  EXPECT_TRUE(session.value().submit(make_template("diamond")).result().ok());
}

TEST(ErtService, OpenSessionRejectsBadTenantConfigs) {
  Service service(ServiceConfig{.total_cores = 4});
  EXPECT_FALSE(service.open_session(TenantConfig{.name = ""}).ok());
  ASSERT_TRUE(service.open_session(TenantConfig{.name = "a"}).ok());
  EXPECT_FALSE(service.open_session(TenantConfig{.name = "a"}).ok());
  EXPECT_FALSE(
      service.open_session(TenantConfig{.name = "b", .share = 0.0}).ok());
  EXPECT_FALSE(
      service.open_session(TenantConfig{.name = "c", .share = 1.5}).ok());
  // Reservation rounding to zero cores is an error, not a silent grant.
  EXPECT_FALSE(service
                   .open_session(TenantConfig{
                       .name = "d", .share = 0.1, .reserved = true})
                   .ok());
  // A reservation larger than the free pool is refused.
  ASSERT_TRUE(service
                  .open_session(TenantConfig{
                      .name = "e", .share = 0.75, .reserved = true})
                  .ok());
  EXPECT_EQ(service.shared_available(), 1u);
  EXPECT_FALSE(service
                   .open_session(TenantConfig{
                       .name = "f", .share = 0.5, .reserved = true})
                   .ok());
}

// -------------------------------------------------------------- QoS order

TEST(ErtService, RealtimeOutranksStandardOutranksBatch) {
  // One core: three same-instant arrivals must start in QoS order.
  ServiceConfig cfg;
  cfg.total_cores = 1;
  Service service(cfg);
  auto session = service.open_session(TenantConfig{.name = "t"});
  ASSERT_TRUE(session.ok());

  JobSpec batch = make_template("cic_chain");
  batch.qos = QosClass::kBatch;
  batch.deadline = 0;
  JobSpec standard = make_template("cic_chain");
  standard.qos = QosClass::kStandard;
  standard.deadline = 0;
  JobSpec realtime = make_template("cic_chain");
  realtime.qos = QosClass::kRealtime;
  realtime.deadline = milliseconds(10);

  // Submit in inverted priority order; grants must not follow it.
  const JobHandle hb = session.value().submit(batch);
  const JobHandle hs = session.value().submit(standard);
  const JobHandle hr = session.value().submit(realtime);
  ASSERT_TRUE(hb.result().ok());
  ASSERT_TRUE(hs.result().ok());
  ASSERT_TRUE(hr.result().ok());
  EXPECT_LT(hr.result().value().started, hs.result().value().started);
  EXPECT_LT(hs.result().value().started, hb.result().value().started);
}

TEST(ErtService, FairShareCapsSplitContendedPool) {
  // Two equal-share tenants flooding 8 cores with machine-wide gangs:
  // under contention each is capped at half the pool, so every granted
  // gang is exactly 4 wide and the two tenants' records are identical.
  ServiceConfig cfg;
  Service service(cfg);
  auto a = service.open_session(TenantConfig{.name = "a", .share = 0.5});
  auto b = service.open_session(TenantConfig{.name = "b", .share = 0.5});
  ASSERT_TRUE(a.ok() && b.ok());

  std::vector<JobHandle> handles;
  for (int j = 0; j < 4; ++j) {
    handles.push_back(a.value().submit(make_template("forkjoin")));
    handles.push_back(b.value().submit(make_template("forkjoin")));
  }
  for (const JobHandle& h : handles) {
    ASSERT_TRUE(h.result().ok());
    EXPECT_LE(h.result().value().cores, 4u);
  }
  const TenantStats sa = service.tenant_stats(0);
  const TenantStats sb = service.tenant_stats(1);
  EXPECT_EQ(sa.fingerprint, sb.fingerprint);
  EXPECT_EQ(sa.peak_cores, 4u);
  EXPECT_EQ(sb.peak_cores, 4u);
}

TEST(ErtService, SharedAdmissionAccountsForReservedCarveouts) {
  // 8 cores, half reserved: the shared pool can only ever grant 4, so a
  // min_cores=5 shared job must be rejected at admission instead of
  // sitting ready forever (its handle would spin drain() for a grant
  // that can never come).
  Service service(ServiceConfig{});
  auto res = service.open_session(
      TenantConfig{.name = "res", .share = 0.5, .reserved = true});
  auto shr = service.open_session(TenantConfig{.name = "shr"});
  ASSERT_TRUE(res.ok() && shr.ok());
  ASSERT_EQ(service.shared_available(), 4u);

  JobSpec wide = make_template("forkjoin");
  wide.min_cores = 5;
  wide.max_cores = 8;
  const JobHandle rejected = shr.value().submit(wide);
  ASSERT_FALSE(rejected.result().ok());
  EXPECT_NE(rejected.result().error().to_string().find("pool has 4"),
            std::string::npos);

  JobSpec fits = make_template("forkjoin");
  fits.min_cores = 4;
  fits.max_cores = 8;
  const JobHandle granted = shr.value().submit(fits);
  ASSERT_TRUE(granted.result().ok());
  EXPECT_EQ(granted.result().value().cores, 4u);
}

TEST(ErtService, ShareCapLiftsWhenPoolWouldOtherwiseIdle) {
  // Two equal tenants, 8 cores, each wanting an exact 5-wide gang: the
  // contention cap (4) can serve neither, and with nothing running there
  // is no completion event to wait for. The work-conserving fallback
  // must grant one gang past the cap and serialize the other behind it
  // instead of livelocking both result() calls.
  Service service(ServiceConfig{});
  auto a = service.open_session(TenantConfig{.name = "a", .share = 0.5});
  auto b = service.open_session(TenantConfig{.name = "b", .share = 0.5});
  ASSERT_TRUE(a.ok() && b.ok());

  JobSpec gang = make_template("forkjoin");
  gang.min_cores = 5;
  gang.max_cores = 5;
  const JobHandle ha = a.value().submit(gang);
  const JobHandle hb = b.value().submit(gang);
  ASSERT_TRUE(ha.result().ok());
  ASSERT_TRUE(hb.result().ok());
  EXPECT_EQ(ha.result().value().cores, 5u);
  EXPECT_EQ(hb.result().value().cores, 5u);
  // Serialized behind the fallback grant, not starved and not parallel.
  EXPECT_GE(hb.result().value().started, ha.result().value().finished);
}

TEST(ErtService, ContentionCapUsesEffectivePoolNotRawCapacity) {
  // 8 cores with half reserved: two equal shared tenants contending must
  // be capped at ceil(0.5 x 4) = 2 cores each — the reserved carve-out
  // must not inflate their caps to ceil(0.5 x 8) = 4.
  Service service(ServiceConfig{});
  auto res = service.open_session(
      TenantConfig{.name = "res", .share = 0.5, .reserved = true});
  auto a = service.open_session(TenantConfig{.name = "a", .share = 0.5});
  auto b = service.open_session(TenantConfig{.name = "b", .share = 0.5});
  ASSERT_TRUE(res.ok() && a.ok() && b.ok());

  JobSpec moldable = make_template("forkjoin");
  moldable.min_cores = 1;
  moldable.max_cores = 8;
  const JobHandle ha = a.value().submit(moldable);
  const JobHandle hb = b.value().submit(moldable);
  ASSERT_TRUE(ha.result().ok());
  ASSERT_TRUE(hb.result().ok());
  EXPECT_EQ(ha.result().value().cores, 2u);
  EXPECT_EQ(hb.result().value().cores, 2u);
}

TEST(ErtService, JobIdsPackTenantAndSequenceWithoutCollision) {
  // 64-bit ids: tenant in the high word, per-tenant sequence in the low
  // word — distinct (tenant, seq) pairs can never alias.
  Service service(ServiceConfig{});
  auto a = service.open_session(TenantConfig{.name = "a", .share = 0.5});
  auto b = service.open_session(TenantConfig{.name = "b", .share = 0.5});
  ASSERT_TRUE(a.ok() && b.ok());
  const JobHandle a0 = a.value().submit(make_template("diamond"));
  const JobHandle a1 = a.value().submit(make_template("diamond"));
  const JobHandle b0 = b.value().submit(make_template("diamond"));
  ASSERT_TRUE(a0.result().ok() && a1.result().ok() && b0.result().ok());
  EXPECT_EQ(a0.result().value().id.value(), 0u);
  EXPECT_EQ(a1.result().value().id.value(), 1u);
  EXPECT_EQ(b0.result().value().id.value(), 1ULL << 32);
}

// -------------------------------------------------------------- isolation

/// The victim's fixed submission stream, identical across scenarios.
std::vector<JobHandle> submit_victim(Session& s) {
  std::vector<JobHandle> handles;
  for (int j = 0; j < 6; ++j) {
    JobSpec spec = make_template(j % 2 == 0 ? "pipeline" : "diamond");
    spec.arrival = static_cast<TimePs>(j) * microseconds(40);
    handles.push_back(s.submit(spec));
  }
  return handles;
}

std::uint64_t victim_fingerprint(std::uint64_t neighbor_jobs,
                                 bool neighbor_first) {
  ServiceConfig cfg;
  Service service(cfg);
  auto victim = service.open_session(TenantConfig{
      .name = "victim", .share = 0.25, .reserved = true});
  auto neighbor =
      service.open_session(TenantConfig{.name = "neighbor", .share = 0.75});
  EXPECT_TRUE(victim.ok() && neighbor.ok());

  auto flood = [&] {
    for (std::uint64_t j = 0; j < neighbor_jobs; ++j) {
      JobSpec spec = make_template("forkjoin");
      spec.arrival = static_cast<TimePs>(j) * microseconds(3);
      (void)neighbor.value().submit(std::move(spec));
    }
  };
  if (neighbor_first) flood();
  auto handles = submit_victim(victim.value());
  if (!neighbor_first) flood();
  service.drain();
  return service.tenant_stats(0).fingerprint;
}

TEST(ErtIsolation, ReservedTenantFingerprintInvariantUnderNeighborLoad) {
  const std::uint64_t quiet = victim_fingerprint(0, false);
  EXPECT_EQ(victim_fingerprint(4, false), quiet);
  EXPECT_EQ(victim_fingerprint(64, false), quiet);
  // Submission interleaving is equally invisible.
  EXPECT_EQ(victim_fingerprint(64, true), quiet);
}

TEST(ErtIsolation, IdenticalSpecsOnDisjointSharesFingerprintEqually) {
  // The satellite property: two tenants with identical specs on disjoint
  // (reserved) shares produce identical per-tenant fingerprints no
  // matter what a third tenant does or in which order anyone submitted.
  for (const std::uint64_t third_load : {0ULL, 24ULL}) {
    for (const bool reversed : {false, true}) {
      ServiceConfig cfg;
      Service service(cfg);
      auto a = service.open_session(
          TenantConfig{.name = "a", .share = 0.25, .reserved = true});
      auto b = service.open_session(
          TenantConfig{.name = "b", .share = 0.25, .reserved = true});
      auto c = service.open_session(TenantConfig{.name = "c"});
      ASSERT_TRUE(a.ok() && b.ok() && c.ok());

      for (std::uint64_t j = 0; j < third_load; ++j)
        (void)c.value().submit(make_template("forkjoin"));
      if (reversed) {
        submit_victim(b.value());
        submit_victim(a.value());
      } else {
        submit_victim(a.value());
        submit_victim(b.value());
      }
      service.drain();
      const std::uint64_t fa = service.tenant_stats(0).fingerprint;
      const std::uint64_t fb = service.tenant_stats(1).fingerprint;
      EXPECT_EQ(fa, fb) << "third_load=" << third_load
                        << " reversed=" << reversed;
    }
  }
}

// ------------------------------------------------------------ determinism

std::vector<std::uint64_t> run_tenants_and_fingerprint(bool threaded) {
  ServiceConfig cfg;
  Service service(cfg);
  constexpr std::size_t kTenants = 4;
  std::vector<Session> sessions;
  for (std::size_t t = 0; t < kTenants; ++t) {
    auto s = service.open_session(TenantConfig{
        .name = "t" + std::to_string(t),
        .share = 1.0 / static_cast<double>(kTenants)});
    EXPECT_TRUE(s.ok());
    sessions.push_back(s.value());
  }
  auto submit_all = [&](std::size_t t) {
    const auto names = template_names();
    for (int j = 0; j < 10; ++j) {
      JobSpec spec = make_template(names[(t + j) % names.size()]);
      spec.arrival = static_cast<TimePs>(j) * microseconds(15);
      (void)sessions[t].submit(std::move(spec));
    }
  };
  if (threaded) {
    // One submitter thread per tenant, racing against each other AND
    // against a drainer — the engine must serialize them all.
    std::vector<std::thread> pool;
    pool.emplace_back([&] { service.drain(); });
    for (std::size_t t = 0; t < kTenants; ++t)
      pool.emplace_back([&, t] { submit_all(t); });
    for (auto& th : pool) th.join();
  } else {
    for (std::size_t t = 0; t < kTenants; ++t) submit_all(t);
  }
  service.drain();
  std::vector<std::uint64_t> fps;
  for (const TenantStats& s : service.all_tenant_stats())
    fps.push_back(s.fingerprint);
  return fps;
}

TEST(ErtDeterminism, ConcurrentSubmittersMatchSerialSubmission) {
  const auto serial = run_tenants_and_fingerprint(false);
  for (int repeat = 0; repeat < 3; ++repeat)
    EXPECT_EQ(run_tenants_and_fingerprint(true), serial);
}

// -------------------------------------------------------------- adapters

TEST(ErtAdapters, TaskgraphJobspecRoundTrip) {
  maps::TaskGraph g = maps::pipeline_taskgraph(
      "radio", 160'000, milliseconds(1), sched::Criticality::kHard);
  const JobSpec spec = jobspec_from_taskgraph(g);
  EXPECT_EQ(spec.name, "radio");
  EXPECT_EQ(spec.qos, QosClass::kRealtime);
  EXPECT_EQ(spec.period, milliseconds(1));
  EXPECT_EQ(spec.deadline, milliseconds(1));  // multiapp convention

  const maps::TaskGraph back = taskgraph_from_jobspec(spec);
  EXPECT_EQ(back.name, g.name);
  EXPECT_EQ(back.annotation.criticality, g.annotation.criticality);
  EXPECT_EQ(back.annotation.period, g.annotation.period);
  EXPECT_EQ(back.tasks().size(), g.tasks().size());
  EXPECT_EQ(back.edges().size(), g.edges().size());
  // Round-tripping again is the identity on the modeled fields.
  const JobSpec again = jobspec_from_taskgraph(back);
  EXPECT_EQ(again.qos, spec.qos);
  EXPECT_EQ(again.deadline, spec.deadline);
}

TEST(ErtAdapters, CicProgramBecomesScaledJobspec) {
  cic::CicProgram prog("app");
  const auto src = prog.add_task("src", 5'000, {}, {"o"});
  const auto dst = prog.add_task("dst", 7'000, {"i"}, {});
  prog.set_period(src, microseconds(20));
  prog.set_deadline(dst, microseconds(50));
  ASSERT_TRUE(prog.connect(src, "o", dst, "i", 128).ok());

  const JobSpec spec = jobspec_from_cic(prog, /*iterations=*/3);
  ASSERT_EQ(spec.graph.tasks().size(), 2u);
  EXPECT_EQ(spec.graph.tasks()[0].ref_cycles, 15'000u);
  EXPECT_EQ(spec.graph.tasks()[1].ref_cycles, 21'000u);
  ASSERT_EQ(spec.graph.edges().size(), 1u);
  EXPECT_EQ(spec.graph.edges()[0].bytes, 128u * 3u);
  // Periodic source + deadline annotation => realtime job.
  EXPECT_EQ(spec.qos, QosClass::kRealtime);
  EXPECT_EQ(spec.deadline, microseconds(50) * 3);
}

TEST(ErtAdapters, ScenarioFromJobspecsRunsThroughSessions) {
  ServiceConfig cfg;
  std::vector<JobSpec> specs = {make_template("pipeline"),
                                make_template("diamond")};
  harness::Scenario scenario =
      scenario_from_jobspecs("ert_adapter", specs, cfg);
  ASSERT_EQ(scenario.run_count(), 2u);
  const harness::ScenarioResult result = harness::Runner().run(scenario);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const harness::RunRecord& rec = result.runs[i];
    ASSERT_TRUE(rec.ok) << rec.error;
    const auto direct = run_jobspec_direct(specs[i], cfg);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(rec.metrics.makespan, direct.value().makespan);
    EXPECT_GT(rec.metrics.extra_or("ert.latency_us"), 0.0);
  }
}

// ------------------------------------------------------------ CLI surface

TEST(ErtDriver, ParsesCommonAndToolFlags) {
  const auto opts = parse_ert_args({"--json", "--no-files", "--seed", "9",
                                    "--tenants", "3", "--reserved", "1",
                                    "--out-dir", "/tmp/x", "pipeline"});
  ASSERT_TRUE(opts.ok());
  EXPECT_TRUE(opts.value().json_stdout);
  EXPECT_FALSE(opts.value().legacy_json);
  EXPECT_FALSE(opts.value().write_files);
  EXPECT_EQ(opts.value().seed, 9u);
  EXPECT_EQ(opts.value().tenants, 3u);
  EXPECT_EQ(opts.value().reserved, 1u);
  EXPECT_EQ(opts.value().out_dir, "/tmp/x");
  ASSERT_EQ(opts.value().templates.size(), 1u);

  EXPECT_FALSE(parse_ert_args({"--bogus"}).ok());
  EXPECT_FALSE(parse_ert_args({"not_a_template"}).ok());
  EXPECT_FALSE(parse_ert_args({"--reserved", "3", "--tenants", "2"}).ok());
  EXPECT_FALSE(parse_ert_args({"--help"}).ok());
}

TEST(ErtDriver, JsonEnvelopeWrapsLegacyDocDeterministically) {
  ErtOptions opts;
  opts.json_stdout = true;
  opts.write_files = false;
  opts.jobs = 3;
  std::ostringstream a, b;
  EXPECT_EQ(run_ert(opts, a).exit_code, 0);
  EXPECT_EQ(run_ert(opts, b).exit_code, 0);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"schema\": \"rw-tool-1\""), std::string::npos);
  EXPECT_NE(a.str().find("\"tool\": \"rwert\""), std::string::npos);
  EXPECT_NE(a.str().find("\"schema\": \"rw-ert-run-1\""), std::string::npos);

  opts.legacy_json = true;
  std::ostringstream c;
  EXPECT_EQ(run_ert(opts, c).exit_code, 0);
  EXPECT_EQ(c.str().find("rw-tool-1"), std::string::npos);
  EXPECT_EQ(c.str().rfind("{", 0), 0u);  // bare legacy document
}

TEST(ErtDriver, ListPrintsTemplateRegistry) {
  ErtOptions opts;
  opts.list = true;
  std::ostringstream out;
  EXPECT_EQ(run_ert(opts, out).exit_code, 0);
  for (const std::string& name : template_names())
    EXPECT_NE(out.str().find(name), std::string::npos) << name;
}

// ------------------------------------------- static admission (ISSUE 7)

JobSpec realtime_chain(Cycles task_cycles) {
  JobSpec spec;
  spec.name = "rt_chain";
  const auto a = spec.graph.add_task("a", task_cycles);
  const auto b = spec.graph.add_task("b", task_cycles);
  spec.graph.add_edge(a, b, 256);
  spec.qos = QosClass::kRealtime;
  return spec;
}

TEST(ErtStaticAdmission, InfeasibleRealtimeJobRejectedAtSubmit) {
  ServiceConfig cfg;
  cfg.static_admission = true;
  Service service(cfg);
  auto session = service.open_session(TenantConfig{.name = "rt"});
  ASSERT_TRUE(session.ok());

  // Price the job through the same primitive the service uses.
  JobSpec spec = realtime_chain(4'000);
  const DurationPs bound = static_makespan_bound_ps(spec, cfg);
  ASSERT_GT(bound, 0u);

  // Deadline one tick under the guarantee: provably hopeless, rejected
  // at submit with the typed reason — it never reaches the queue.
  JobSpec doomed = spec;
  doomed.deadline = bound + cfg.arbitration_latency - 1;
  const JobHandle hd = session.value().submit(doomed);
  ASSERT_FALSE(hd.result().ok());
  EXPECT_NE(hd.result().error().to_string().find("static-infeasible"),
            std::string::npos)
      << hd.result().error().to_string();

  // The identical job with an honest deadline is admitted, completes,
  // and — because the bound is conservative — meets that deadline.
  JobSpec honest = spec;
  honest.deadline = bound + cfg.arbitration_latency;
  const JobHandle ho = session.value().submit(honest);
  ASSERT_TRUE(ho.result().ok()) << ho.result().error().to_string();
  EXPECT_TRUE(ho.result().value().deadline_met);
  EXPECT_LE(ho.result().value().finished, honest.deadline);

  const TenantStats stats = service.tenant_stats(0);
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ErtStaticAdmission, PrecheckIsOffByDefault) {
  // Same doomed spec, default config: the precheck never fires and the
  // job runs (it may or may not miss its deadline — that is the dynamic
  // outcome the static gate exists to predict, not to forbid).
  ServiceConfig cfg;
  ASSERT_FALSE(cfg.static_admission);
  Service service(cfg);
  auto session = service.open_session(TenantConfig{.name = "rt"});
  ASSERT_TRUE(session.ok());

  JobSpec doomed = realtime_chain(4'000);
  doomed.deadline =
      static_makespan_bound_ps(doomed, cfg) + cfg.arbitration_latency - 1;
  const JobHandle h = session.value().submit(doomed);
  EXPECT_TRUE(h.result().ok()) << h.result().error().to_string();
  EXPECT_EQ(service.tenant_stats(0).rejected, 0u);
}

TEST(ErtStaticAdmission, OnlyRealtimeJobsArePrechecked) {
  // Batch/standard jobs carry no guarantee; the gate ignores them even
  // when enabled and their deadline looks hopeless.
  ServiceConfig cfg;
  cfg.static_admission = true;
  Service service(cfg);
  auto session = service.open_session(TenantConfig{.name = "be"});
  ASSERT_TRUE(session.ok());

  JobSpec batch = realtime_chain(4'000);
  batch.qos = QosClass::kBatch;
  batch.deadline = 1;  // absurd, but batch jobs are best-effort
  EXPECT_TRUE(session.value().submit(batch).result().ok());
}

TEST(CliCommon, EnvelopeSplicesPayloadVerbatim) {
  const std::string doc = cli::envelope("demo", 7, "{\n  \"x\": 1\n}\n");
  EXPECT_NE(doc.find("\"schema\": \"rw-tool-1\""), std::string::npos);
  EXPECT_NE(doc.find("\"tool\": \"demo\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(doc.find("\"x\": 1"), std::string::npos);
}

}  // namespace
}  // namespace rw::ert
