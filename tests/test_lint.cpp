// rw::lint framework: diagnostics, passes over the three program
// representations, the adapters off the legacy report structs, and the
// rwlint driver (table output, LINT_<name>.json, exit codes).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "dataflow/deadlock.hpp"
#include "lint/adapters.hpp"
#include "lint/corpus.hpp"
#include "lint/driver.hpp"
#include "lint/pass.hpp"
#include "lint/passes.hpp"
#include "recoder/parser.hpp"
#include "recoder/shared_report.hpp"

namespace rw::lint {
namespace {

std::set<std::string> kinds_of(const std::vector<Diagnostic>& diags,
                               Severity at_least = Severity::kWarning) {
  std::set<std::string> out;
  for (const auto& d : diags)
    if (static_cast<int>(d.severity) >= static_cast<int>(at_least))
      out.insert(d.kind);
  return out;
}

const CorpusProgram& corpus_entry(const std::vector<CorpusProgram>& c,
                                  const std::string& name) {
  for (const auto& p : c)
    if (p.name == name) return p;
  throw std::runtime_error("no corpus program " + name);
}

// ------------------------------------------------------------- diagnostics

TEST(LintDiagnostic, KeyAndRendering) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.subsystem = "maps";
  d.pass = "static-race";
  d.kind = "race";
  d.location = {"prog", "counter"};
  d.message = "boom";
  d.with_evidence("task_a", "inc0");
  EXPECT_EQ(d.key(), "race:prog:counter");
  const auto s = d.to_string();
  EXPECT_NE(s.find("[error]"), std::string::npos);
  EXPECT_NE(s.find("task_a=inc0"), std::string::npos);
}

TEST(LintDiagnostic, SortErrorsFirstThenLexicographic) {
  Diagnostic note{Severity::kNote, "a", "p", "k", {"u", "e"}, "m", {}};
  Diagnostic warn{Severity::kWarning, "a", "p", "k", {"u", "e"}, "m", {}};
  Diagnostic err_b{Severity::kError, "b", "p", "k", {"u", "e"}, "m", {}};
  Diagnostic err_a{Severity::kError, "a", "p", "k", {"u", "e"}, "m", {}};
  std::vector<Diagnostic> v{note, warn, err_b, err_a};
  sort_diagnostics(v);
  EXPECT_EQ(v[0].subsystem, "a");
  EXPECT_EQ(v[0].severity, Severity::kError);
  EXPECT_EQ(v[1].subsystem, "b");
  EXPECT_EQ(v[2].severity, Severity::kWarning);
  EXPECT_EQ(v[3].severity, Severity::kNote);
}

TEST(LintDiagnostic, JsonSchemaAndDeterminism) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.subsystem = "recoder";
  d.pass = "uninit-dataflow";
  d.kind = "dead-store";
  d.location = {"u", "tmp"};
  d.message = "overwritten";
  const auto j1 = diagnostics_to_json("u", {d});
  const auto j2 = diagnostics_to_json("u", {d});
  EXPECT_EQ(j1, j2);
  EXPECT_NE(j1.find("\"schema\": \"rw-lint-1\""), std::string::npos);
  EXPECT_NE(j1.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(j1.find("\"kind\": \"dead-store\""), std::string::npos);
}

// ------------------------------------------------------------ pass manager

TEST(LintPassManager, DefaultPassSetAndRestriction) {
  auto pm = PassManager::with_default_passes();
  EXPECT_EQ(pm.passes().size(), 8u);
  EXPECT_NE(pm.find("static-race"), nullptr);
  EXPECT_NE(pm.find("static-deadlock"), nullptr);
  EXPECT_NE(pm.find("uninit-dataflow"), nullptr);
  EXPECT_NE(pm.find("buffer-bounds"), nullptr);
  EXPECT_NE(pm.find("shared-access"), nullptr);
  EXPECT_NE(pm.find("static-throughput"), nullptr);
  EXPECT_NE(pm.find("static-buffer-size"), nullptr);
  EXPECT_NE(pm.find("static-makespan"), nullptr);
  EXPECT_EQ(pm.find("nope"), nullptr);

  pm.enable_only({"static-race"});
  EXPECT_EQ(pm.passes().size(), 1u);
  EXPECT_EQ(pm.passes()[0]->name(), "static-race");
}

TEST(LintPassManager, InapplicablePassesAreRecordedNotRun) {
  // A bare dataflow-only target: AST and mapped passes must not run.
  const auto corpus = build_corpus();
  const auto& p = corpus_entry(corpus, "starved_csdf");
  const auto result = PassManager::with_default_passes().run(p.target());
  for (const auto& s : result.stats) {
    if (s.pass == "static-race" || s.pass == "uninit-dataflow" ||
        s.pass == "shared-access") {
      EXPECT_FALSE(s.ran) << s.pass;
    }
    if (s.pass == "static-deadlock") {
      EXPECT_TRUE(s.ran);
    }
  }
}

// -------------------------------------------------- corpus: seeded defects

TEST(LintCorpus, EveryInjectedDefectIsFlagged) {
  for (const auto& p : build_corpus()) {
    const auto result = PassManager::with_default_passes().run(p.target());
    const auto found = kinds_of(result.diagnostics);
    for (const auto& kind : p.expected_kinds)
      EXPECT_TRUE(found.count(kind))
          << p.name << ": expected kind '" << kind << "' not found";
    if (p.expected_kinds.empty())
      EXPECT_TRUE(result.clean()) << p.name << " should lint clean";
    else
      EXPECT_GT(result.errors(), 0u)
          << p.name << " must carry at least one error-severity finding";
  }
}

TEST(LintCorpus, CleanProgramHasNoWarningsEither) {
  const auto corpus = build_corpus();
  const auto& p = corpus_entry(corpus, "clean_pipeline");
  const auto result = PassManager::with_default_passes().run(p.target());
  EXPECT_EQ(result.errors(), 0u);
  EXPECT_EQ(result.warnings(), 0u);
}

TEST(LintCorpus, RaceEvidenceNamesBothTasks) {
  const auto corpus = build_corpus();
  const auto& p = corpus_entry(corpus, "racy_counter");
  const auto result = PassManager::with_default_passes().run(p.target());
  bool saw = false;
  for (const auto& d : result.diagnostics) {
    if (d.kind != "race") continue;
    saw = true;
    std::string ev;
    for (const auto& [k, v] : d.evidence) ev += k + "=" + v + ";";
    EXPECT_NE(ev.find("task_a="), std::string::npos);
    EXPECT_NE(ev.find("task_b="), std::string::npos);
  }
  EXPECT_TRUE(saw);
}

TEST(LintCorpus, LockAnnotationSuppressesRace) {
  // clean_pipeline's stats counter is accessed from two partitions but
  // sits in locked_vars: the race pass must degrade it to a note.
  const auto corpus = build_corpus();
  const auto& p = corpus_entry(corpus, "clean_pipeline");
  const auto result = PassManager::with_default_passes().run(p.target());
  bool note_seen = false;
  for (const auto& d : result.diagnostics) {
    if (d.location.entity == "stats") {
      EXPECT_EQ(d.severity, Severity::kNote);
      EXPECT_EQ(d.kind, "lock-protected");
      note_seen = true;
    }
  }
  EXPECT_TRUE(note_seen);
}

TEST(LintCorpus, OrderInversionNeedsTheMapping) {
  // The task graph is acyclic; only the per-PE run-to-completion order
  // closes the cycle. Drop the core order and the deadlock disappears.
  const auto corpus = build_corpus();
  const auto& p = corpus_entry(corpus, "order_inversion");
  auto t = p.target();
  const auto with = PassManager::with_default_passes().run(t);
  EXPECT_TRUE(kinds_of(with.diagnostics).count("deadlock"));

  t.core_order.clear();  // derived order = task index order = prod first
  t.task_to_pe.clear();
  const auto without = PassManager::with_default_passes().run(t);
  EXPECT_FALSE(kinds_of(without.diagnostics).count("deadlock"));
}

TEST(LintCorpus, UninitFindingsPointAtVariables) {
  const auto corpus = build_corpus();
  const auto& p = corpus_entry(corpus, "uninit_filter");
  const auto result = PassManager::with_default_passes().run(p.target());
  std::set<std::string> entities;
  for (const auto& d : result.diagnostics)
    if (d.subsystem == "recoder" && d.pass == "uninit-dataflow")
      entities.insert(d.location.entity);
  EXPECT_TRUE(entities.count("acc"));
  EXPECT_TRUE(entities.count("tmp"));
}

// ---------------------------------------------------------------- adapters

TEST(LintAdapters, RaceReportBecomesDynamicErrorDiagnostic) {
  vpdebug::RaceReport r;
  r.addr = 0x8000'0010;
  r.first_core = sim::CoreId{0};
  r.second_core = sim::CoreId{1};
  r.first_is_write = true;
  r.second_is_write = false;
  const auto d = from_race_report(r, "prog", "frame");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.kind, "race");
  EXPECT_EQ(d.pass, "dynamic");
  EXPECT_EQ(d.key(), "race:prog:frame");
}

TEST(LintAdapters, DeadlockReportFansOutPerBlockedActor) {
  dataflow::Graph g;
  const auto a = g.add_actor("alpha", 10);
  const auto b = g.add_actor("beta", 10);
  g.connect(a, b, 1, 1);
  g.connect(b, a, 1, 1);
  const auto rep = dataflow::detect_deadlock(g);
  ASSERT_TRUE(rep.deadlocked);
  const auto diags = from_deadlock_report(rep, "g");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].key(), "deadlock:g:alpha");
  EXPECT_EQ(diags[1].key(), "deadlock:g:beta");

  dataflow::Graph ok;
  const auto c = ok.add_actor("c", 10);
  const auto d = ok.add_actor("d", 10);
  ok.connect(c, d, 1, 1);
  EXPECT_TRUE(
      from_deadlock_report(dataflow::detect_deadlock(ok), "ok").empty());
}

TEST(LintAdapters, SharedReportSeverityTracksRecommendation) {
  auto p = recoder::parse_program(R"(
    int buf[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) { buf[i] = i; }
      for (int i = 0; i < 8; i = i + 1) { buf[i] = buf[i] + 1; }
      for (int i = 0; i < 8; i = i + 1) { buf[i] = buf[i] * 2; }
      return 0;
    })");
  ASSERT_TRUE(p.ok());
  const auto reps = recoder::analyze_shared_accesses(
      p.value(), *p.value().find_function("main"));
  const auto diags = from_shared_report(reps, "u", "main");
  ASSERT_EQ(diags.size(), 1u);
  // kKeepShared -> warning (real synchronization needed on an MPSoC).
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].kind, "shared-access");
}

// -------------------------------------------------- legacy JSON satellites

TEST(LintAdapters, LegacyReportsExportJson) {
  vpdebug::RaceReport r;
  r.addr = 0xabc;
  json::Writer w;
  r.to_json(w);
  EXPECT_NE(w.str().find("\"addr\""), std::string::npos);

  dataflow::Graph g;
  const auto a = g.add_actor("a", 10);
  const auto b = g.add_actor("b", 10);
  g.connect(a, b, 1, 1);
  g.connect(b, a, 1, 1);
  const auto js = dataflow::detect_deadlock(g).to_json_string();
  EXPECT_NE(js.find("\"deadlocked\": true"), std::string::npos);
  EXPECT_NE(js.find("\"blocked\""), std::string::npos);
}

// ------------------------------------------------------------------ driver

TEST(LintDriver, ArgParsing) {
  auto opts = parse_driver_args(
      {"--json", "--no-files", "--passes=static-race,buffer-bounds",
       "--out=/tmp/x", "racy_counter"});
  ASSERT_TRUE(opts.ok());
  EXPECT_TRUE(opts.value().json_stdout);
  EXPECT_FALSE(opts.value().write_files);
  EXPECT_EQ(opts.value().passes.size(), 2u);
  EXPECT_EQ(opts.value().out_dir, "/tmp/x");
  ASSERT_EQ(opts.value().programs.size(), 1u);

  EXPECT_FALSE(parse_driver_args({"--bogus"}).ok());
  EXPECT_FALSE(parse_driver_args({"--help"}).ok());
}

TEST(LintDriver, PassesAcceptSpaceSeparatedLists) {
  // The shell-friendly quoted form: `--passes "a b"` is the same
  // selection as `--passes a,b`.
  auto spaced = parse_driver_args(
      {"--passes", "static-throughput static-makespan"});
  ASSERT_TRUE(spaced.ok());
  auto comma = parse_driver_args({"--passes=static-throughput,static-makespan"});
  ASSERT_TRUE(comma.ok());
  EXPECT_EQ(spaced.value().passes, comma.value().passes);
  EXPECT_EQ(spaced.value().passes.size(), 2u);
  EXPECT_TRUE(spaced.value().passes.count("static-makespan") == 1);
}

TEST(LintDriver, ExitCodesMatchFindings) {
  std::ostringstream sink;
  DriverOptions opts;
  opts.write_files = false;

  opts.programs = {"clean_pipeline"};
  EXPECT_EQ(run_driver(opts, sink).exit_code, 0);

  opts.programs = {"racy_counter"};
  EXPECT_EQ(run_driver(opts, sink).exit_code, 1);

  opts.programs = {"no_such_program"};
  EXPECT_EQ(run_driver(opts, sink).exit_code, 2);

  opts.programs = {"clean_pipeline"};
  opts.passes = {"not-a-pass"};
  EXPECT_EQ(run_driver(opts, sink).exit_code, 2);
}

TEST(LintDriver, WritesPerProgramJsonFile) {
  std::ostringstream sink;
  DriverOptions opts;
  opts.programs = {"token_cycle"};
  opts.out_dir = ::testing::TempDir();
  const auto report = run_driver(opts, sink);
  ASSERT_EQ(report.outcomes.size(), 1u);
  ASSERT_FALSE(report.outcomes[0].json_path.empty());
  std::ifstream f(report.outcomes[0].json_path);
  ASSERT_TRUE(f.good());
  std::stringstream content;
  content << f.rdbuf();
  EXPECT_EQ(content.str(),
            report.outcomes[0].result.to_json() + "\n");
  EXPECT_NE(content.str().find("\"program\": \"token_cycle\""),
            std::string::npos);
}

TEST(LintDriver, JsonOutputByteIdenticalAcrossRuns) {
  DriverOptions opts;
  opts.json_stdout = true;
  opts.write_files = false;
  std::ostringstream a;
  std::ostringstream b;
  run_driver(opts, a);
  run_driver(opts, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"schema\": \"rw-lint-run-1\""),
            std::string::npos);
}

TEST(LintDriver, ListShowsTheWholeCorpus) {
  std::ostringstream out;
  DriverOptions opts;
  opts.list = true;
  EXPECT_EQ(run_driver(opts, out).exit_code, 0);
  for (const auto& name : corpus_names())
    EXPECT_NE(out.str().find(name), std::string::npos) << name;
}

}  // namespace
}  // namespace rw::lint
